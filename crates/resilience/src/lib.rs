//! Resilience plane for the simulated Sunway runtime.
//!
//! The paper's asynchronous scheduler (§V) assumes every CPE offload
//! completes and every MPI message arrives. At the 128-CG scale it
//! evaluates — and at the production scale the ROADMAP targets — slot
//! failures, dropped or late messages, and stragglers are the norm. This
//! crate is the *fault plane* the rest of the stack consults, plus the
//! recovery bookkeeping and the checkpoint container:
//!
//! * [`plan`] — a seeded, **schedule-independent** [`FaultPlan`]: every
//!   decision is a pure function of `(seed, stable entity id)`, never of
//!   call order, so the same plan reproduces the same faults across all
//!   five scheduler variants and across repeated runs;
//! * [`stats`] — shared atomic counters every layer increments as it
//!   injects, detects, and recovers faults (rendered into
//!   `results/FAULTS.json` by `repro faults`);
//! * [`ckpt`] — a self-contained binary checkpoint container (warehouse
//!   fields as exact f64 bit patterns + controller step state) with a
//!   byte-stable on-disk format.
//!
//! The crate is a dependency **leaf** (like `sw-telemetry`): `sw-sim`,
//! `sw-mpi`, `sw-athread`, and `uintah-core` all sit above it, each
//! consulting the plan at its own shim boundary — DMA errors in the
//! machine, slot death and stragglers in the athread layer, message
//! drop/duplication/delay in the MPI layer.

#![warn(missing_docs)]
pub mod ckpt;
pub mod plan;
pub mod stats;

pub use ckpt::{AmrLevelRecord, AmrSection, Checkpoint, PatchRecord};
pub use plan::{fold, splitmix64, FaultConfig, FaultPlan, MsgFault, MsgKey, OffloadKey, SlotFault};
pub use stats::{FaultCounts, FaultStats};
