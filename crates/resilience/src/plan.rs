//! Seeded, schedule-independent fault plans.
//!
//! Every decision in a [`FaultPlan`] is a **pure function** of
//! `(seed, stable entity key)` — never of call order, wall clock, or which
//! scheduler variant happens to ask first. Two consequences the rest of the
//! stack relies on:
//!
//! 1. the same `(seed, config)` reproduces the *same* faults across all
//!    five scheduler variants and across repeated runs, so fault sweeps are
//!    comparable and regressions are replayable from a single integer;
//! 2. asking twice is free and safe — layers may consult the plan
//!    speculatively (e.g. the MPE probing an offload it then decides to run
//!    serially) without perturbing any other decision.
//!
//! Probabilities are expressed in **ppm** (parts per million) and factors in
//! **milli** (thousandths) so [`FaultConfig`] stays all-integer: it is
//! embedded in `SchedulerOptions`, which derives `Eq`/`Hash`, and `f64`
//! would poison those derives.

use crate::stats::FaultStats;

/// One million — the denominator for all `_ppm` probability fields.
pub const PPM: u64 = 1_000_000;

/// Deterministic fault-injection configuration.
///
/// All-integer on purpose (see module docs). A zeroed config injects
/// nothing; [`FaultConfig::standard`] is the preset used by `repro faults`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultConfig {
    /// Master seed; every decision hashes this with the entity key.
    pub seed: u64,
    /// Probability (ppm) that a CPE slot dies for one offload attempt.
    pub slot_death_ppm: u32,
    /// Probability (ppm) that an offload straggles (runs slower).
    pub straggler_ppm: u32,
    /// Straggler slowdown factor in milli (e.g. `4000` = 4x slower).
    pub straggler_factor_milli: u32,
    /// Probability (ppm) that an offload's DMA transfer errors out.
    pub dma_error_ppm: u32,
    /// Probability (ppm) that a message payload is dropped on the wire.
    pub msg_drop_ppm: u32,
    /// Probability (ppm) that a message payload is duplicated on the wire.
    pub msg_dup_ppm: u32,
    /// Probability (ppm) that a message payload is delayed on the wire.
    pub msg_delay_ppm: u32,
    /// Delay applied to delayed messages, in picoseconds.
    pub delay_ps: u64,
    /// Probability (ppm) that a rank's sends see constant extra jitter.
    pub rank_jitter_ppm: u32,
    /// Extra latency for jittered ranks, in picoseconds.
    pub jitter_ps: u64,
    /// Maximum attempts (first try + retries) per offload or message.
    pub max_attempts: u32,
    /// Base of the exponential retry backoff, in picoseconds.
    pub backoff_base_ps: u64,
    /// Offload deadline factor in milli over the expected duration
    /// (e.g. `3000` = declare lost after 3x the expected runtime).
    pub timeout_factor_milli: u32,
    /// Constant slack added to every offload deadline, in picoseconds.
    pub timeout_slack_ps: u64,
    /// Ack timeout for reliable messages, in picoseconds.
    pub msg_timeout_ps: u64,
    /// When `true`, drop/death faults are suppressed on the final attempt
    /// so bounded retries always succeed — the "recoverable" regime the
    /// byte-identity proptests assert over.
    pub guarantee_recovery: bool,
}

impl FaultConfig {
    /// A config that injects nothing (but still runs the recovery
    /// machinery, ack layer, and deadline bookkeeping).
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            seed,
            slot_death_ppm: 0,
            straggler_ppm: 0,
            straggler_factor_milli: 1000,
            dma_error_ppm: 0,
            msg_drop_ppm: 0,
            msg_dup_ppm: 0,
            msg_delay_ppm: 0,
            delay_ps: 0,
            rank_jitter_ppm: 0,
            jitter_ps: 0,
            max_attempts: 4,
            backoff_base_ps: 200_000, // 200 ns
            timeout_factor_milli: 3000,
            timeout_slack_ps: 2_000_000, // 2 us
            msg_timeout_ps: 30_000_000,  // 30 us
            guarantee_recovery: true,
        }
    }

    /// The standard recoverable-fault preset used by `repro faults`:
    /// a few percent of everything, recovery guaranteed within
    /// `max_attempts`.
    pub fn standard(seed: u64) -> Self {
        FaultConfig {
            slot_death_ppm: 30_000, // 3 %
            straggler_ppm: 30_000,  // 3 %
            straggler_factor_milli: 5000,
            dma_error_ppm: 15_000,    // 1.5 %
            msg_drop_ppm: 30_000,     // 3 %
            msg_dup_ppm: 20_000,      // 2 %
            msg_delay_ppm: 50_000,    // 5 %
            delay_ps: 5_000_000,      // 5 us
            rank_jitter_ppm: 250_000, // 25 % of ranks
            jitter_ps: 500_000,       // 0.5 us
            ..FaultConfig::none(seed)
        }
    }

    /// A hostile preset with `guarantee_recovery` off: some faults exhaust
    /// their retry budget and must degrade gracefully instead.
    pub fn harsh(seed: u64) -> Self {
        FaultConfig {
            slot_death_ppm: 120_000,
            dma_error_ppm: 60_000,
            msg_drop_ppm: 120_000,
            max_attempts: 2,
            guarantee_recovery: false,
            ..FaultConfig::standard(seed)
        }
    }

    /// Whether any injection probability is non-zero.
    pub fn injects_anything(&self) -> bool {
        self.slot_death_ppm != 0
            || self.straggler_ppm != 0
            || self.dma_error_ppm != 0
            || self.msg_drop_ppm != 0
            || self.msg_dup_ppm != 0
            || self.msg_delay_ppm != 0
            || self.rank_jitter_ppm != 0
    }
}

/// Stable identity of one offload **attempt**: the fault decision is per
/// attempt, so a retry of the same task rolls fresh dice (and, under
/// [`FaultConfig::guarantee_recovery`], is forced clean on the last try).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OffloadKey {
    /// Owning rank.
    pub rank: u32,
    /// Patch id the kernel runs over.
    pub patch: u64,
    /// Stage index within the step.
    pub stage: u32,
    /// Timestep number.
    pub step: u32,
    /// Attempt number, starting at 0.
    pub attempt: u32,
}

/// Stable identity of one message transmission attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MsgKey {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// MPI tag.
    pub tag: u64,
    /// Transmission attempt, starting at 0.
    pub attempt: u32,
}

/// Fault verdict for a CPE slot executing one offload attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotFault {
    /// The slot dies silently: the kernel never completes and no
    /// completion flag is ever set. Detected only by deadline.
    Death,
    /// The slot straggles: the kernel completes, but slower by
    /// `factor_milli / 1000`.
    Straggler {
        /// Slowdown factor in milli (`5000` = 5x).
        factor_milli: u32,
    },
}

/// Fault verdict for one message transmission attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgFault {
    /// The payload is lost on the wire; only the sender's resend timer
    /// can recover it.
    Drop,
    /// The payload is delivered twice; the receiver must suppress the
    /// second copy.
    Duplicate,
    /// The payload arrives late by the given number of picoseconds.
    Delay {
        /// Extra wire latency in picoseconds.
        extra_ps: u64,
    },
}

/// SplitMix64 finalizer — the same mixer `sw-sim`'s `KernelNoise` uses.
/// Copied (10 lines) rather than imported: this crate is a dependency leaf.
/// Public so downstream harnesses (e.g. the bench torture campaign) reuse
/// the exact keying discipline instead of growing a second mixer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fold a sequence of words into one well-mixed u64 (domain-separated
/// stateless keying: callers hash a distinct discriminant word first).
#[inline]
pub fn fold(words: &[u64]) -> u64 {
    let mut acc = 0u64;
    for &w in words {
        acc = splitmix64(acc ^ splitmix64(w));
    }
    acc
}

// Domain-separation discriminants: each decision family hashes a distinct
// constant so e.g. the drop and duplicate dice for the same MsgKey are
// independent.
const D_SLOT_DEATH: u64 = 0x51;
const D_STRAGGLER: u64 = 0x52;
const D_DMA: u64 = 0x53;
const D_MSG_DROP: u64 = 0x61;
const D_MSG_DUP: u64 = 0x62;
const D_MSG_DELAY: u64 = 0x63;
const D_JITTER: u64 = 0x71;

/// A seeded fault plan plus the shared [`FaultStats`] every layer
/// increments. Cheap to share behind an `Arc`; all methods take `&self`.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    /// Shared atomic fault counters (injected / detected / recovered).
    pub stats: FaultStats,
}

impl FaultPlan {
    /// Build a plan from a config.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            stats: FaultStats::new(),
        }
    }

    /// The config this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    #[inline]
    fn roll(&self, domain: u64, words: &[u64], ppm: u32) -> bool {
        if ppm == 0 {
            return false;
        }
        let mut all = Vec::with_capacity(words.len() + 2);
        all.push(self.cfg.seed);
        all.push(domain);
        all.extend_from_slice(words);
        fold(&all) % PPM < u64::from(ppm)
    }

    /// Is this the last allowed attempt (where `guarantee_recovery`
    /// forces a clean roll for otherwise-fatal faults)?
    #[inline]
    fn last_attempt(&self, attempt: u32) -> bool {
        self.cfg.guarantee_recovery && attempt + 1 >= self.cfg.max_attempts
    }

    /// Fault verdict for one offload attempt on a CPE slot.
    ///
    /// Death is suppressed on the final attempt under
    /// [`FaultConfig::guarantee_recovery`]; stragglers are never fatal so
    /// they are allowed on any attempt.
    pub fn slot_fault(&self, k: &OffloadKey) -> Option<SlotFault> {
        let words = [
            u64::from(k.rank),
            k.patch,
            u64::from(k.stage),
            u64::from(k.step),
            u64::from(k.attempt),
        ];
        if !self.last_attempt(k.attempt) && self.roll(D_SLOT_DEATH, &words, self.cfg.slot_death_ppm)
        {
            return Some(SlotFault::Death);
        }
        if self.roll(D_STRAGGLER, &words, self.cfg.straggler_ppm) {
            return Some(SlotFault::Straggler {
                factor_milli: self.cfg.straggler_factor_milli.max(1000),
            });
        }
        None
    }

    /// Whether the DMA transfer for this offload attempt errors out
    /// (kernel never runs; detected by deadline like a slot death).
    pub fn dma_fault(&self, k: &OffloadKey) -> bool {
        if self.last_attempt(k.attempt) {
            return false;
        }
        let words = [
            u64::from(k.rank),
            k.patch,
            u64::from(k.stage),
            u64::from(k.step),
            u64::from(k.attempt),
        ];
        self.roll(D_DMA, &words, self.cfg.dma_error_ppm)
    }

    /// Fault verdict for one message transmission attempt. Drop wins over
    /// duplicate wins over delay when several dice come up.
    pub fn msg_fault(&self, k: &MsgKey) -> Option<MsgFault> {
        let words = [
            u64::from(k.src),
            u64::from(k.dst),
            k.tag,
            u64::from(k.attempt),
        ];
        if !self.last_attempt(k.attempt) && self.roll(D_MSG_DROP, &words, self.cfg.msg_drop_ppm) {
            return Some(MsgFault::Drop);
        }
        if self.roll(D_MSG_DUP, &words, self.cfg.msg_dup_ppm) {
            return Some(MsgFault::Duplicate);
        }
        if self.roll(D_MSG_DELAY, &words, self.cfg.msg_delay_ppm) {
            return Some(MsgFault::Delay {
                extra_ps: self.cfg.delay_ps,
            });
        }
        None
    }

    /// Constant extra send latency for a jittered rank (`None` for healthy
    /// ranks). Rank-level, not per-message: models a slow NIC / hot node.
    pub fn jitter_ps(&self, rank: u32) -> Option<u64> {
        if self.roll(D_JITTER, &[u64::from(rank)], self.cfg.rank_jitter_ppm) {
            Some(self.cfg.jitter_ps)
        } else {
            None
        }
    }

    /// Deadline (absolute ps) by which an offload started at `start_ps`
    /// with expected duration `expected_ps` must have completed before the
    /// MPE declares it lost.
    pub fn offload_deadline(&self, start_ps: u64, expected_ps: u64) -> u64 {
        let scaled =
            expected_ps.saturating_mul(u64::from(self.cfg.timeout_factor_milli.max(1000))) / 1000;
        start_ps
            .saturating_add(scaled)
            .saturating_add(self.cfg.timeout_slack_ps)
    }

    /// Exponential retry backoff before attempt `attempt` (attempt 1 waits
    /// one base, attempt 2 two bases, attempt 3 four, ...).
    pub fn backoff_ps(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(16);
        self.cfg.backoff_base_ps.saturating_mul(1u64 << shift)
    }

    /// Maximum attempts per offload / message from the config.
    pub fn max_attempts(&self) -> u32 {
        self.cfg.max_attempts.max(1)
    }

    /// Ack timeout for reliable messages from the config.
    pub fn msg_timeout_ps(&self) -> u64 {
        self.cfg.msg_timeout_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_order_free() {
        let p = FaultPlan::new(FaultConfig::standard(42));
        let q = FaultPlan::new(FaultConfig::standard(42));
        let keys: Vec<OffloadKey> = (0..200)
            .map(|i| OffloadKey {
                rank: i % 4,
                patch: u64::from(i / 4),
                stage: i % 3,
                step: i % 7,
                attempt: 0,
            })
            .collect();
        // Same answers regardless of query order.
        let fwd: Vec<_> = keys.iter().map(|k| p.slot_fault(k)).collect();
        let rev: Vec<_> = keys.iter().rev().map(|k| q.slot_fault(k)).collect();
        let rev_fixed: Vec<_> = rev.into_iter().rev().collect();
        assert_eq!(fwd, rev_fixed);
        // Asking twice agrees with asking once.
        for k in &keys {
            assert_eq!(p.slot_fault(k), p.slot_fault(k));
            assert_eq!(p.dma_fault(k), p.dma_fault(k));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(FaultConfig::standard(1));
        let b = FaultPlan::new(FaultConfig::standard(2));
        let mut differs = false;
        for i in 0..2000u64 {
            let k = MsgKey {
                src: (i % 8) as u32,
                dst: ((i + 1) % 8) as u32,
                tag: i,
                attempt: 0,
            };
            if a.msg_fault(&k) != b.msg_fault(&k) {
                differs = true;
                break;
            }
        }
        assert!(differs, "seeds 1 and 2 produced identical fault streams");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let p = FaultPlan::new(FaultConfig {
            msg_drop_ppm: 100_000, // 10 %
            ..FaultConfig::none(7)
        });
        let n = 20_000u64;
        let dropped = (0..n)
            .filter(|&i| {
                matches!(
                    p.msg_fault(&MsgKey {
                        src: 0,
                        dst: 1,
                        tag: i,
                        attempt: 0,
                    }),
                    Some(MsgFault::Drop)
                )
            })
            .count() as f64;
        let rate = dropped / n as f64;
        assert!((0.08..0.12).contains(&rate), "drop rate {rate} out of band");
    }

    #[test]
    fn guarantee_recovery_caps_fatal_faults() {
        let cfg = FaultConfig {
            slot_death_ppm: 999_999,
            dma_error_ppm: 999_999,
            msg_drop_ppm: 999_999,
            max_attempts: 3,
            guarantee_recovery: true,
            ..FaultConfig::none(9)
        };
        let p = FaultPlan::new(cfg);
        for i in 0..100u64 {
            let k = OffloadKey {
                rank: 0,
                patch: i,
                stage: 0,
                step: 0,
                attempt: 2, // last allowed attempt
            };
            assert_ne!(p.slot_fault(&k), Some(SlotFault::Death));
            assert!(!p.dma_fault(&k));
            let m = MsgKey {
                src: 0,
                dst: 1,
                tag: i,
                attempt: 2,
            };
            assert_ne!(p.msg_fault(&m), Some(MsgFault::Drop));
        }
    }

    #[test]
    fn no_guarantee_allows_fatal_on_last_attempt() {
        let cfg = FaultConfig {
            slot_death_ppm: 999_999,
            guarantee_recovery: false,
            max_attempts: 2,
            ..FaultConfig::none(9)
        };
        let p = FaultPlan::new(cfg);
        let fatal = (0..100u64).any(|i| {
            p.slot_fault(&OffloadKey {
                rank: 0,
                patch: i,
                stage: 0,
                step: 0,
                attempt: 1,
            }) == Some(SlotFault::Death)
        });
        assert!(fatal);
    }

    #[test]
    fn deadline_and_backoff_math() {
        let p = FaultPlan::new(FaultConfig::none(0));
        // 3x expected + 2 us slack.
        assert_eq!(
            p.offload_deadline(1_000, 10_000),
            1_000 + 30_000 + 2_000_000
        );
        assert_eq!(p.backoff_ps(1), 200_000);
        assert_eq!(p.backoff_ps(2), 400_000);
        assert_eq!(p.backoff_ps(3), 800_000);
    }

    #[test]
    fn zero_config_injects_nothing() {
        let p = FaultPlan::new(FaultConfig::none(123));
        assert!(!p.config().injects_anything());
        for i in 0..500u64 {
            let k = OffloadKey {
                rank: (i % 4) as u32,
                patch: i,
                stage: 0,
                step: 0,
                attempt: 0,
            };
            assert_eq!(p.slot_fault(&k), None);
            assert!(!p.dma_fault(&k));
            assert_eq!(
                p.msg_fault(&MsgKey {
                    src: 0,
                    dst: 1,
                    tag: i,
                    attempt: 0,
                }),
                None
            );
        }
        assert_eq!(p.jitter_ps(3), None);
    }
}
