//! Shared atomic fault counters.
//!
//! Every layer that injects, detects, or recovers a fault increments the
//! same [`FaultStats`] instance (reached through the `Arc<FaultPlan>`).
//! Counters are plain relaxed atomics: they are bookkeeping, never control
//! flow, so ordering does not matter. [`FaultStats::snapshot`] freezes them
//! into a plain [`FaultCounts`] for reports and `results/FAULTS.json`.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$m:meta])* $name:ident),+ $(,)?) => {
        /// Live atomic fault counters (see module docs).
        #[derive(Debug, Default)]
        pub struct FaultStats {
            $($(#[$m])* pub $name: AtomicU64,)+
        }

        /// A frozen snapshot of [`FaultStats`] — plain `u64`s, cheap to
        /// copy, compare, and render to JSON.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct FaultCounts {
            $($(#[$m])* pub $name: u64,)+
        }

        impl FaultStats {
            /// Freeze the current counter values.
            pub fn snapshot(&self) -> FaultCounts {
                FaultCounts {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }
        }

        impl FaultCounts {
            /// Counter names and values, in declaration order — the single
            /// source of truth for JSON rendering.
            pub fn entries(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($name), self.$name),)+]
            }
        }
    };
}

counters! {
    /// CPE slot deaths injected (kernel silently never completes).
    injected_slot_death,
    /// Straggler slowdowns injected.
    injected_straggler,
    /// DMA transfer errors injected.
    injected_dma_error,
    /// Message payloads dropped on the wire.
    injected_msg_drop,
    /// Message payloads duplicated on the wire.
    injected_msg_dup,
    /// Message payloads delayed on the wire.
    injected_msg_delay,
    /// Lost/straggling offloads detected by MPE deadline.
    detected_offload,
    /// Lost messages detected by ack timeout.
    detected_msg,
    /// Offload re-execution attempts.
    retries_offload,
    /// Message resend attempts.
    resends_msg,
    /// Offloads that ultimately completed after retry.
    recovered_offload,
    /// Messages that ultimately delivered after resend.
    recovered_msg,
    /// Faults that exhausted their retry budget (run degraded, not
    /// crashed).
    unrecovered,
    /// Duplicate deliveries suppressed at the receiver.
    duplicates_suppressed,
    /// CPE slots blacklisted after a death.
    slots_blacklisted,
    /// Offloads degraded to serial MPE execution.
    serial_degradations,
    /// Checkpoints written.
    checkpoints_written,
    /// Checkpoints restored.
    checkpoints_restored,
    // ---- campaign worker pool (sw-campaign; host workers, not CPE
    // slots — the same detect/retry/blacklist discipline one level up) ----
    /// Campaign worker crashes injected (the worker panics mid-job).
    injected_worker_death,
    /// Campaign worker straggles injected (the job runs slower).
    injected_worker_straggle,
    /// Worker crashes detected by the campaign coordinator.
    detected_worker,
    /// Campaign job re-dispatch attempts after a worker crash.
    retries_job,
    /// Campaign jobs that completed after at least one retry.
    recovered_job,
    /// Campaign workers blacklisted after repeated crashes.
    workers_blacklisted,
}

impl FaultStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        FaultStats::default()
    }

    /// Relaxed increment helper (`bump(&stats.retries_offload)` reads
    /// better than the raw atomic call at call sites).
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed add helper.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

impl FaultCounts {
    /// Total faults injected across all kinds.
    pub fn total_injected(&self) -> u64 {
        self.injected_slot_death
            + self.injected_straggler
            + self.injected_dma_error
            + self.injected_msg_drop
            + self.injected_msg_dup
            + self.injected_msg_delay
    }

    /// Render as a JSON object (sorted by declaration order, stable).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        for (i, (k, v)) in self.entries().into_iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{k}\": {v}"));
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_freezes_counts() {
        let s = FaultStats::new();
        FaultStats::bump(&s.injected_msg_drop);
        FaultStats::bump(&s.injected_msg_drop);
        FaultStats::add(&s.retries_offload, 3);
        let c = s.snapshot();
        assert_eq!(c.injected_msg_drop, 2);
        assert_eq!(c.retries_offload, 3);
        assert_eq!(c.unrecovered, 0);
        assert_eq!(c.total_injected(), 2);
        // Snapshot is decoupled from further bumps.
        FaultStats::bump(&s.injected_msg_drop);
        assert_eq!(c.injected_msg_drop, 2);
    }

    #[test]
    fn json_contains_every_counter() {
        let c = FaultStats::new().snapshot();
        let j = c.to_json();
        for (k, _) in c.entries() {
            assert!(j.contains(&format!("\"{k}\"")), "missing {k} in {j}");
        }
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
