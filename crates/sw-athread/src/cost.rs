//! Analytic timing of an offloaded kernel.
//!
//! The CPE tile scheduler (paper §V-D) runs, per CPE, a serial loop over its
//! assigned tiles: synchronous `athread_get` of the ghosted tile into LDM,
//! compute, synchronous `athread_put` back — the paper explicitly does *not*
//! overlap memory-LDM transfer with compute ("these issues will be addressed
//! in the future"). Kernel completion is therefore the maximum over CPEs of
//! the serial sum of their tile times, which this module computes in closed
//! form so the large evaluation sweeps need one event per kernel rather than
//! one per tile. The functional executor in [`crate::exec`] walks the same
//! schedule tile-by-tile; a cross-validation test asserts both agree.

use sw_sim::{MachineConfig, SimDur};

use crate::tile::{Dims3, TileDesc};

/// Per-tile cost description a kernel exposes to the scheduler.
pub trait TileCostModel {
    /// Ghost layers the kernel reads.
    fn ghost(&self) -> usize;
    /// Total flops to compute a tile of `dims` (hardware-counter accounting).
    fn flops(&self, dims: Dims3) -> u64;
    /// Of [`TileCostModel::flops`], how many are software-exponential flops.
    fn exp_flops(&self, dims: Dims3) -> u64;
    /// Software-exponential calls in a tile (for per-call stall modeling).
    fn exp_calls(&self, dims: Dims3) -> u64;
    /// Bytes DMA'd into LDM for a tile (default: one ghosted f64 field).
    fn bytes_in(&self, dims: Dims3) -> u64 {
        let g = self.ghost();
        ((dims.0 + 2 * g) as u64) * ((dims.1 + 2 * g) as u64) * ((dims.2 + 2 * g) as u64) * 8
    }
    /// Bytes DMA'd out of LDM for a tile (default: one interior f64 field).
    fn bytes_out(&self, dims: Dims3) -> u64 {
        dims.0 as u64 * dims.1 as u64 * dims.2 as u64 * 8
    }
}

/// Timing and accounting of one kernel offload.
#[derive(Clone, Debug)]
pub struct KernelTiming {
    /// Wall (virtual) duration from offload start to last CPE's `faaw`.
    pub duration: SimDur,
    /// Total flops executed on the cluster.
    pub flops: u64,
    /// Of which, exponential flops.
    pub exp_flops: u64,
    /// Total bytes moved by DMA (in + out).
    pub dma_bytes: u64,
    /// Number of tiles processed.
    pub tiles: u64,
    /// Per-CPE busy durations (index = CPE id).
    pub per_cpe: Vec<SimDur>,
}

/// How tile data moves between main memory and the LDM.
///
/// The paper's implementation is [`TransferMode::Synchronous`] ("does not
/// make use of the fact that the memory-LDM transfer can be asynchronous",
/// §V-D); the alternatives implement the future work of §IX and are
/// evaluated by the ablation benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransferMode {
    /// `athread_get` / compute / `athread_put`, strictly serial per tile.
    #[default]
    Synchronous,
    /// Double-buffered DMA: while a tile computes, the next tile streams in
    /// and the previous streams out; per-tile time is `max(compute, DMA)`
    /// after a pipeline fill ("schedule memory-LDM transfer together with
    /// computing kernels to further hide data moving", §IX).
    DoubleBuffered,
}

/// Execution-rate parameters for one offload.
#[derive(Clone, Copy, Debug)]
pub struct KernelRate {
    /// Effective compute throughput per CPE, Gflop/s (scalar or SIMD rate
    /// from [`MachineConfig`]).
    pub gflops_per_cpe: f64,
    /// Extra stall per software-exp call (zero for the fast library).
    pub per_exp_stall: SimDur,
    /// Memory-LDM transfer scheduling.
    pub transfer: TransferMode,
    /// Pack a tile's input and output into one DMA descriptor pair with a
    /// contiguous staging layout: one start-up latency per tile instead of
    /// two, and ~20% better effective bandwidth from longer bursts ("pack
    /// the tiles to improve data transfer performance", §IX).
    pub packed_tiles: bool,
}

impl KernelRate {
    /// Rate for the scalar (non-vectorized) kernel with the fast exp library
    /// and the paper's synchronous transfers.
    pub fn scalar(cfg: &MachineConfig) -> Self {
        KernelRate {
            gflops_per_cpe: cfg.cpe_scalar_gflops,
            per_exp_stall: SimDur::ZERO,
            transfer: TransferMode::Synchronous,
            packed_tiles: false,
        }
    }

    /// Rate for the SIMD-vectorized kernel with the fast exp library and the
    /// paper's synchronous transfers.
    pub fn simd(cfg: &MachineConfig) -> Self {
        KernelRate {
            gflops_per_cpe: cfg.cpe_simd_gflops,
            per_exp_stall: SimDur::ZERO,
            transfer: TransferMode::Synchronous,
            packed_tiles: false,
        }
    }

    /// Add the accurate (IEEE) exp library's per-call stall (paper §VI-C).
    pub fn with_accurate_exp(mut self, cfg: &MachineConfig) -> Self {
        self.per_exp_stall = cfg.accurate_exp_stall;
        self
    }

    /// Enable double-buffered memory-LDM transfers (§IX future work).
    pub fn with_double_buffer(mut self) -> Self {
        self.transfer = TransferMode::DoubleBuffered;
        self
    }

    /// Enable packed tile transfers (§IX future work).
    pub fn with_packed_tiles(mut self) -> Self {
        self.packed_tiles = true;
        self
    }
}

/// Compute the timing of one kernel offload given the per-CPE tile
/// assignment. DMA bandwidth is shared among the CPEs that have work
/// (constant contention over the kernel: the same model the functional
/// executor uses, so the two agree exactly).
pub fn kernel_timing(
    cfg: &MachineConfig,
    assignment: &[Vec<TileDesc>],
    model: &dyn TileCostModel,
    rate: KernelRate,
) -> KernelTiming {
    let active = assignment.iter().filter(|a| !a.is_empty()).count().max(1);
    let mut per_cpe = Vec::with_capacity(assignment.len());
    let mut flops = 0u64;
    let mut exp_flops = 0u64;
    let mut dma_bytes = 0u64;
    let mut tiles = 0u64;
    let mut duration = SimDur::ZERO;
    for cpe_tiles in assignment {
        let busy = match rate.transfer {
            TransferMode::Synchronous => {
                let mut busy = SimDur::ZERO;
                for t in cpe_tiles {
                    busy += tile_time(cfg, t, model, rate, active);
                }
                busy
            }
            TransferMode::DoubleBuffered => {
                // Pipeline: the first tile's DMA-in fills the pipe; while
                // tile i computes, the engine drains tile i-1's output and
                // prefetches tile i+1's input; the last tile's DMA-out
                // drains the pipe. A single tile degenerates to the
                // synchronous time — there is nothing to overlap with.
                let n = cpe_tiles.len();
                let mut busy = SimDur::ZERO;
                if let Some(first) = cpe_tiles.first() {
                    busy += dma_in_time(cfg, first, model, rate, active);
                }
                for (i, t) in cpe_tiles.iter().enumerate() {
                    let compute = compute_tile_time(t, model, rate);
                    let mut overlap = SimDur::ZERO;
                    if i > 0 {
                        overlap += dma_out_time(cfg, &cpe_tiles[i - 1], model, rate, active);
                    }
                    if i + 1 < n {
                        overlap += dma_in_time(cfg, &cpe_tiles[i + 1], model, rate, active);
                    }
                    busy += compute.max(overlap);
                }
                if let Some(last) = cpe_tiles.last() {
                    busy += dma_out_time(cfg, last, model, rate, active);
                }
                busy
            }
        };
        for t in cpe_tiles {
            flops += model.flops(t.dims);
            exp_flops += model.exp_flops(t.dims);
            dma_bytes += model.bytes_in(t.dims) + model.bytes_out(t.dims);
            tiles += 1;
        }
        duration = duration.max(busy);
        per_cpe.push(busy);
    }
    KernelTiming {
        duration,
        flops,
        exp_flops,
        dma_bytes,
        tiles,
        per_cpe,
    }
}

/// Time one CPE spends on one tile under synchronous transfers:
/// DMA-in + compute + DMA-out, serial.
pub fn tile_time(
    cfg: &MachineConfig,
    tile: &TileDesc,
    model: &dyn TileCostModel,
    rate: KernelRate,
    active_cpes: usize,
) -> SimDur {
    dma_in_time(cfg, tile, model, rate, active_cpes)
        + compute_tile_time(tile, model, rate)
        + dma_out_time(cfg, tile, model, rate, active_cpes)
}

/// Effective per-CPE DMA bandwidth, including the packed-tile burst bonus.
fn dma_bw(cfg: &MachineConfig, rate: KernelRate, active: usize) -> f64 {
    let base = cfg.dma_bw_per_cpe(active);
    if rate.packed_tiles {
        base * 1.2
    } else {
        base
    }
}

/// Duration of a DMA of `bytes` with `latencies` start-up latencies.
fn dma_raw(
    cfg: &MachineConfig,
    rate: KernelRate,
    bytes: u64,
    active: usize,
    latencies: u64,
) -> SimDur {
    cfg.dma_latency * latencies
        + SimDur::from_secs_f64(bytes as f64 / (dma_bw(cfg, rate, active) * 1e9))
}

/// DMA-in time of one tile (carries the tile's single descriptor latency
/// when tiles are packed).
pub fn dma_in_time(
    cfg: &MachineConfig,
    tile: &TileDesc,
    model: &dyn TileCostModel,
    rate: KernelRate,
    active: usize,
) -> SimDur {
    dma_raw(cfg, rate, model.bytes_in(tile.dims), active, 1)
}

/// DMA-out time of one tile (latency-free when packed: the combined
/// descriptor pair was charged on the way in).
pub fn dma_out_time(
    cfg: &MachineConfig,
    tile: &TileDesc,
    model: &dyn TileCostModel,
    rate: KernelRate,
    active: usize,
) -> SimDur {
    let lat = if rate.packed_tiles { 0 } else { 1 };
    dma_raw(cfg, rate, model.bytes_out(tile.dims), active, lat)
}

/// Pure compute time of one tile.
pub fn compute_tile_time(tile: &TileDesc, model: &dyn TileCostModel, rate: KernelRate) -> SimDur {
    MachineConfig::compute_time(model.flops(tile.dims), rate.gflops_per_cpe)
        + rate.per_exp_stall * model.exp_calls(tile.dims)
}

/// Apply the synchronous-mode spin penalty: while the MPE busy-waits on the
/// main-memory completion flag it interferes with CPE traffic at the memory
/// controller, slowing the kernel by the calibrated factor (DESIGN.md §5).
pub fn with_spin_penalty(cfg: &MachineConfig, d: SimDur) -> SimDur {
    d.scale(1.0 + cfg.sync_spin_slowdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::{assign_tiles, tiles_of};

    /// A simple fixed-rate cost model for tests: `f` flops per cell, of
    /// which `e` are exponential flops from `c` calls.
    struct PerCell {
        f: u64,
        e: u64,
        c: u64,
        g: usize,
    }

    impl TileCostModel for PerCell {
        fn ghost(&self) -> usize {
            self.g
        }
        fn flops(&self, d: Dims3) -> u64 {
            self.f * crate::tile::cells(d)
        }
        fn exp_flops(&self, d: Dims3) -> u64 {
            self.e * crate::tile::cells(d)
        }
        fn exp_calls(&self, d: Dims3) -> u64 {
            self.c * crate::tile::cells(d)
        }
    }

    fn model() -> PerCell {
        PerCell {
            f: 300,
            e: 200,
            c: 6,
            g: 1,
        }
    }

    #[test]
    fn duration_is_max_over_cpes() {
        let cfg = MachineConfig::sw26010();
        let tiles = tiles_of((16, 16, 24), (16, 16, 8)); // 3 tiles
        let assignment = assign_tiles(&tiles, 2); // 2 + 1
        let t = kernel_timing(&cfg, &assignment, &model(), KernelRate::scalar(&cfg));
        assert_eq!(t.tiles, 3);
        assert_eq!(t.per_cpe.len(), 2);
        assert_eq!(t.duration, t.per_cpe[0].max(t.per_cpe[1]));
        assert!(t.per_cpe[0] > t.per_cpe[1], "first CPE got 2 tiles");
        assert_eq!(t.flops, 300 * 16 * 16 * 24);
        assert_eq!(t.exp_flops, 200 * 16 * 16 * 24);
    }

    #[test]
    fn balanced_assignment_scales_down_with_cpes() {
        let cfg = MachineConfig::sw26010();
        let tiles = tiles_of((16, 16, 512), (16, 16, 8)); // 64 tiles
        let t64 = kernel_timing(
            &cfg,
            &assign_tiles(&tiles, 64),
            &model(),
            KernelRate::scalar(&cfg),
        );
        let t1 = kernel_timing(
            &cfg,
            &assign_tiles(&tiles, 1),
            &model(),
            KernelRate::scalar(&cfg),
        );
        // One CPE alone gets better DMA bandwidth but 64x the tiles:
        // compute dominates, so speedup is close to (but under) 64.
        let speedup = t1.duration.as_secs_f64() / t64.duration.as_secs_f64();
        assert!(speedup > 50.0 && speedup <= 64.0, "speedup {speedup}");
    }

    #[test]
    fn simd_rate_halves_compute() {
        let cfg = MachineConfig::sw26010();
        let tiles = tiles_of((16, 16, 512), (16, 16, 8));
        let assignment = assign_tiles(&tiles, 64);
        let ts = kernel_timing(&cfg, &assignment, &model(), KernelRate::scalar(&cfg));
        let tv = kernel_timing(&cfg, &assignment, &model(), KernelRate::simd(&cfg));
        let ratio = ts.duration.as_secs_f64() / tv.duration.as_secs_f64();
        // DMA is a small additive part, so the ratio is just under 2.
        assert!(ratio > 1.8 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn accurate_exp_adds_stalls() {
        let cfg = MachineConfig::sw26010();
        let tiles = tiles_of((16, 16, 8), (16, 16, 8));
        let assignment = assign_tiles(&tiles, 1);
        let fast = kernel_timing(&cfg, &assignment, &model(), KernelRate::scalar(&cfg));
        let slow = kernel_timing(
            &cfg,
            &assignment,
            &model(),
            KernelRate::scalar(&cfg).with_accurate_exp(&cfg),
        );
        let extra = slow.duration - fast.duration;
        let expect = cfg.accurate_exp_stall * (6 * 2048);
        assert_eq!(extra, expect);
    }

    #[test]
    fn double_buffering_hides_dma() {
        let cfg = MachineConfig::sw26010();
        let tiles = tiles_of((16, 16, 512), (16, 16, 8));
        // 8 tiles per CPE: a real pipeline with interior tiles to overlap.
        let assignment = assign_tiles(&tiles, 8);
        let m = model();
        let sync = kernel_timing(&cfg, &assignment, &m, KernelRate::scalar(&cfg));
        let dbuf = kernel_timing(
            &cfg,
            &assignment,
            &m,
            KernelRate::scalar(&cfg).with_double_buffer(),
        );
        assert!(
            dbuf.duration < sync.duration,
            "{} !< {}",
            dbuf.duration,
            sync.duration
        );
        // Compute-bound kernel: the pipelined time approaches pure compute
        // plus the fill/drain DMAs.
        let compute: f64 = assignment[0]
            .iter()
            .map(|t| compute_tile_time(t, &m, KernelRate::scalar(&cfg)).as_secs_f64())
            .sum();
        assert!(dbuf.duration.as_secs_f64() < compute * 1.1);
        // Same flops either way.
        assert_eq!(sync.flops, dbuf.flops);
        // One tile per CPE degenerates to the synchronous time: nothing to
        // overlap.
        let one_each = assign_tiles(&tiles, 64);
        let s1 = kernel_timing(&cfg, &one_each, &m, KernelRate::scalar(&cfg));
        let d1 = kernel_timing(
            &cfg,
            &one_each,
            &m,
            KernelRate::scalar(&cfg).with_double_buffer(),
        );
        assert_eq!(s1.duration, d1.duration);
    }

    #[test]
    fn packed_tiles_cut_latency_and_boost_bandwidth() {
        let cfg = MachineConfig::sw26010();
        let tiles = tiles_of((16, 16, 8), (16, 16, 8));
        let assignment = assign_tiles(&tiles, 1);
        let m = model();
        let plain = kernel_timing(&cfg, &assignment, &m, KernelRate::scalar(&cfg));
        let packed = kernel_timing(
            &cfg,
            &assignment,
            &m,
            KernelRate::scalar(&cfg).with_packed_tiles(),
        );
        assert!(packed.duration < plain.duration);
        // Exactly one DMA latency saved (the combined descriptor) plus 20%
        // faster transfer of the tile's bytes.
        let bytes = (m.bytes_in((16, 16, 8)) + m.bytes_out((16, 16, 8))) as f64;
        let bw = cfg.dma_bw_per_cpe(1) * 1e9;
        let expect_saving = cfg.dma_latency.as_secs_f64() + bytes / bw - bytes / (bw * 1.2);
        let saving = plain.duration.as_secs_f64() - packed.duration.as_secs_f64();
        assert!(
            (saving - expect_saving).abs() < 1e-9,
            "{saving} vs {expect_saving}"
        );
    }

    #[test]
    fn spin_penalty_scales() {
        let cfg = MachineConfig::sw26010();
        let d = SimDur::from_us(100.0);
        let p = with_spin_penalty(&cfg, d);
        assert_eq!(p, d.scale(1.0 + cfg.sync_spin_slowdown));
        assert!(p > d);
    }

    #[test]
    fn default_byte_model_counts_ghosted_in_interior_out() {
        let m = model();
        assert_eq!(m.bytes_in((16, 16, 8)), 18 * 18 * 10 * 8);
        assert_eq!(m.bytes_out((16, 16, 8)), 16 * 16 * 8 * 8);
    }
}
