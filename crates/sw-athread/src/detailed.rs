//! Detailed per-tile timing simulation.
//!
//! The closed-form [`crate::cost::kernel_timing`] assumes *constant* DMA
//! contention: every active CPE shares the memory controller for the whole
//! kernel. This module walks the same tile schedule event by event with a
//! *time-varying* contention model — as CPEs finish their tile lists, the
//! survivors get a larger bandwidth share, so transfers late in the kernel
//! run faster.
//!
//! The detailed result therefore lower-bounds the closed form; with a
//! balanced assignment (the paper's z-slab partition gives every CPE the
//! same work) the two agree exactly, which the cross-validation tests
//! assert. The evaluation sweeps use the closed form (one event per
//! kernel); this simulation exists to justify that choice.

use sw_sim::{MachineConfig, SimDur, SimTime};

use crate::cost::{compute_tile_time, KernelRate, TileCostModel, TransferMode};
use crate::tile::TileDesc;

/// Phase a CPE is in while processing its tile list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// DMA-in of tile `i` (bytes remaining tracked separately).
    DmaIn,
    /// Computing tile `i`.
    Compute,
    /// DMA-out of tile `i`.
    DmaOut,
    /// All tiles done.
    Done,
}

struct CpeState<'a> {
    tiles: &'a [TileDesc],
    idx: usize,
    phase: Phase,
    /// Bytes left in the current DMA transfer.
    bytes_left: f64,
    /// Remaining latency or compute time in the current phase.
    time_left: SimDur,
    finish: SimTime,
}

/// Simulate one kernel offload tile-by-tile with fair-share bandwidth that
/// re-divides among CPEs currently transferring. Returns the kernel duration
/// (max CPE finish time). Only the synchronous transfer mode is simulated
/// (the paper's implementation).
pub fn detailed_kernel_duration(
    cfg: &MachineConfig,
    assignment: &[Vec<TileDesc>],
    model: &dyn TileCostModel,
    rate: KernelRate,
) -> SimDur {
    assert_eq!(
        rate.transfer,
        TransferMode::Synchronous,
        "detailed simulation covers the paper's synchronous transfers"
    );
    let mut cpes: Vec<CpeState<'_>> = assignment
        .iter()
        .map(|tiles| CpeState {
            tiles,
            idx: 0,
            phase: if tiles.is_empty() {
                Phase::Done
            } else {
                Phase::DmaIn
            },
            bytes_left: 0.0,
            time_left: SimDur::ZERO,
            finish: SimTime::ZERO,
        })
        .collect();
    // Initialize first DMA-in.
    for c in &mut cpes {
        if c.phase == Phase::DmaIn {
            c.time_left = cfg.dma_latency;
            c.bytes_left = model.bytes_in(c.tiles[0].dims) as f64;
        }
    }
    let mut now = SimTime::ZERO;
    loop {
        let transferring = cpes
            .iter()
            .filter(|c| {
                matches!(c.phase, Phase::DmaIn | Phase::DmaOut)
                    && (c.bytes_left > 0.0 || c.time_left > SimDur::ZERO)
            })
            .count();
        if cpes.iter().all(|c| c.phase == Phase::Done) {
            break;
        }
        // Fair share of the memory controller among transferring CPEs,
        // capped by the per-CPE engine peak.
        let bw = if transferring > 0 {
            cfg.dma_cpe_peak_gbs
                .min(cfg.mem_bw_gbs / transferring as f64)
                * 1e9
        } else {
            1.0 // unused
        };
        // Time until each busy CPE's next phase boundary.
        let mut dt = SimDur(u64::MAX);
        for c in &cpes {
            let remain = match c.phase {
                Phase::Done => continue,
                Phase::Compute => c.time_left,
                Phase::DmaIn | Phase::DmaOut => {
                    c.time_left + SimDur::from_secs_f64(c.bytes_left / bw)
                }
            };
            dt = dt.min(remain);
        }
        debug_assert!(dt > SimDur::ZERO, "no progress at {now}");
        now += dt;
        // Advance every CPE by dt.
        for c in &mut cpes {
            match c.phase {
                Phase::Done => {}
                Phase::Compute => {
                    c.time_left -= dt;
                    if c.time_left == SimDur::ZERO {
                        c.phase = Phase::DmaOut;
                        c.time_left = cfg.dma_latency;
                        c.bytes_left = model.bytes_out(c.tiles[c.idx].dims) as f64;
                    }
                }
                Phase::DmaIn | Phase::DmaOut => {
                    // Latency drains first, then bytes at the shared rate.
                    let mut left = dt;
                    if c.time_left > SimDur::ZERO {
                        let lat = c.time_left.min(left);
                        c.time_left -= lat;
                        left -= lat;
                    }
                    if left > SimDur::ZERO {
                        c.bytes_left -= left.as_secs_f64() * bw;
                        // Virtual time is integer picoseconds: one rounding
                        // step leaves at most bw * 0.5ps ~ 0.002 bytes of
                        // residue, far below a meaningful transfer.
                        if c.bytes_left < 0.01 {
                            c.bytes_left = 0.0;
                        }
                    }
                    if c.time_left == SimDur::ZERO && c.bytes_left == 0.0 {
                        match c.phase {
                            Phase::DmaIn => {
                                c.phase = Phase::Compute;
                                c.time_left = compute_tile_time(&c.tiles[c.idx], model, rate);
                            }
                            Phase::DmaOut => {
                                c.idx += 1;
                                if c.idx == c.tiles.len() {
                                    c.phase = Phase::Done;
                                    c.finish = now;
                                } else {
                                    c.phase = Phase::DmaIn;
                                    c.time_left = cfg.dma_latency;
                                    c.bytes_left = model.bytes_in(c.tiles[c.idx].dims) as f64;
                                }
                            }
                            _ => unreachable!(),
                        }
                    }
                }
            }
        }
    }
    cpes.iter()
        .map(|c| c.finish)
        .max()
        .unwrap_or(SimTime::ZERO)
        .since(SimTime::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::kernel_timing;
    use crate::tile::{assign_tiles, cells, tiles_of, Dims3};

    struct M;
    impl TileCostModel for M {
        fn ghost(&self) -> usize {
            1
        }
        fn flops(&self, d: Dims3) -> u64 {
            305 * cells(d)
        }
        fn exp_flops(&self, d: Dims3) -> u64 {
            204 * cells(d)
        }
        fn exp_calls(&self, d: Dims3) -> u64 {
            6 * cells(d)
        }
    }

    #[test]
    fn balanced_assignment_matches_closed_form_exactly() {
        // The paper's geometry: identical tile lists per CPE. Contention is
        // constant (all CPEs transfer in lockstep), so the closed form is
        // exact.
        let cfg = MachineConfig::sw26010();
        let tiles = tiles_of((16, 16, 512), (16, 16, 8));
        let assignment = assign_tiles(&tiles, 64);
        let rate = KernelRate::scalar(&cfg);
        let analytic = kernel_timing(&cfg, &assignment, &M, rate).duration;
        let detailed = detailed_kernel_duration(&cfg, &assignment, &M, rate);
        let rel = (analytic.as_secs_f64() - detailed.as_secs_f64()).abs() / analytic.as_secs_f64();
        assert!(rel < 1e-9, "analytic {analytic} vs detailed {detailed}");
    }

    #[test]
    fn detailed_never_exceeds_closed_form() {
        // Unbalanced lists: stragglers enjoy more bandwidth once others
        // finish, so the detailed duration can only be shorter.
        let cfg = MachineConfig::sw26010();
        let tiles = tiles_of((16, 16, 120), (16, 16, 8)); // 15 tiles
        for cpes in [2usize, 4, 7] {
            let assignment = assign_tiles(&tiles, cpes);
            let rate = KernelRate::scalar(&cfg);
            let analytic = kernel_timing(&cfg, &assignment, &M, rate).duration;
            let detailed = detailed_kernel_duration(&cfg, &assignment, &M, rate);
            assert!(
                detailed <= analytic,
                "cpes={cpes}: detailed {detailed} > analytic {analytic}"
            );
            // And never absurdly shorter (compute dominates this kernel).
            assert!(detailed.as_secs_f64() > 0.9 * analytic.as_secs_f64());
        }
    }

    #[test]
    fn single_cpe_single_tile_is_exact_arithmetic() {
        let cfg = MachineConfig::sw26010();
        let tiles = tiles_of((16, 16, 8), (16, 16, 8));
        let assignment = assign_tiles(&tiles, 1);
        let rate = KernelRate::scalar(&cfg);
        let detailed = detailed_kernel_duration(&cfg, &assignment, &M, rate);
        let expect = crate::cost::tile_time(&cfg, &tiles[0], &M, rate, 1);
        let diff = (detailed.as_secs_f64() - expect.as_secs_f64()).abs();
        assert!(diff < 1e-9, "{detailed} vs {expect}");
    }

    #[test]
    fn empty_assignment_is_zero() {
        let cfg = MachineConfig::sw26010();
        let assignment: Vec<Vec<TileDesc>> = vec![vec![]; 4];
        let d = detailed_kernel_duration(&cfg, &assignment, &M, KernelRate::scalar(&cfg));
        assert_eq!(d, SimDur::ZERO);
    }
}
