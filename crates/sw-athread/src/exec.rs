//! Functional execution of an offloaded kernel, tile-by-tile through the LDM.
//!
//! This is the CPE tile scheduler of paper §V-D run for real: for each CPE's
//! assigned tiles, (a) `athread_get` the ghosted input tile into LDM,
//! (b) apply the numerical kernel entirely on LDM-resident data,
//! (c) `athread_put` the modified tile back to main memory. The LDM
//! allocator enforces the 64 KB budget, so a kernel whose working set does
//! not fit fails exactly where it would on hardware.
//!
//! # Worker pool
//!
//! On the real SW26010 the 64 CPE tile loops run concurrently. The engine
//! reproduces that with an [`ExecPolicy`]: under
//! [`ExecPolicy::Parallel`] the per-CPE tile lists are claimed by a pool of
//! host worker threads (one `rayon` task per worker), each owning its own
//! [`TilePool`] — a private [`LdmAlloc`] plus staging buffers, exactly one
//! simulated scratchpad per worker. Tiles write disjoint interior cells
//! (validated before any parallel write), so the parallel result is
//! bit-identical to [`ExecPolicy::Serial`], which runs CPE 0's tiles, then
//! CPE 1's, ... on the calling thread.
//!
//! # Zero-allocation steady state
//!
//! Both policies stage tiles through pooled buffers sized once to the
//! largest (ghosted) tile of the assignment; the per-tile loop performs no
//! heap allocation. The budget discipline is unchanged: every tile still
//! resets its worker's allocator and reserves its input + output working
//! set, so an oversized tile fails with the same [`LdmOverflow`] the
//! per-tile allocator raised.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use sw_sim::{LdmAlloc, LdmOverflow};

use crate::tile::{Dims3, TileDesc};

/// Times a parallel-policy offload was demoted to serial because its tile
/// assignment was not an exact partition of the output (see
/// [`run_patch_functional_with`]). Monotonic over the process lifetime;
/// read it with [`serial_fallback_count`].
static SERIAL_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// Whether the one-shot fallback warning has been printed already.
static FALLBACK_LOGGED: AtomicBool = AtomicBool::new(false);

/// Process-wide count of parallel offloads that silently degraded to the
/// serial engine because the tile assignment failed the exact-partition
/// check. A nonzero value means some offloads ran without CPE-level
/// parallelism — sweep reports surface it so the degradation is never
/// silent.
pub fn serial_fallback_count() -> u64 {
    SERIAL_FALLBACKS.load(Ordering::Relaxed)
}

/// Record one parallel->serial demotion; warns on stderr the first time.
fn note_serial_fallback(dims: Dims3, tiles: usize) {
    SERIAL_FALLBACKS.fetch_add(1, Ordering::Relaxed);
    if !FALLBACK_LOGGED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "sw-athread: parallel offload demoted to serial — {tiles}-tile \
             assignment is not an exact partition of the {dims:?} output \
             (further demotions counted silently; see serial_fallback_count())"
        );
    }
}

/// Flat index into an x-fastest 3-D array.
#[inline(always)]
pub fn idx3(dims: Dims3, x: usize, y: usize, z: usize) -> usize {
    debug_assert!(
        x < dims.0 && y < dims.1 && z < dims.2,
        "index ({x},{y},{z}) outside extent {dims:?} — negative offsets wrap \
         to huge values when cast to usize before this call"
    );
    x + dims.0 * (y + dims.1 * z)
}

/// How the functional engine maps simulated CPE tile lists onto host
/// threads.
///
/// The numerical result is policy-independent: tile outputs are disjoint
/// (validated before any parallel write), every worker runs the same tile
/// code against its own scratchpad, and no kernel reads another tile's
/// output. `Parallel` therefore changes wall-clock time only — the
/// workspace's property tests assert bit-identical outputs across policies
/// and thread counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecPolicy {
    /// Run every CPE's tile list on the calling thread, in CPE order.
    #[default]
    Serial,
    /// Fan the CPE tile lists out over a pool of host worker threads.
    Parallel {
        /// Worker threads; `0` means one per available hardware thread.
        threads: usize,
    },
}

impl ExecPolicy {
    /// Parallel execution with one worker per available hardware thread.
    pub const AUTO: ExecPolicy = ExecPolicy::Parallel { threads: 0 };

    /// Number of pool workers this policy yields for `lists` CPE tile
    /// lists: never more workers than lists, never fewer than one.
    pub fn workers_for(&self, lists: usize) -> usize {
        match *self {
            ExecPolicy::Serial => 1,
            ExecPolicy::Parallel { threads } => {
                let t = if threads == 0 {
                    rayon::current_num_threads()
                } else {
                    threads
                };
                t.clamp(1, lists.max(1))
            }
        }
    }
}

/// Read-only main-memory view of a field covering a patch *plus its ghost
/// layers* (assembled by the data warehouse before the offload).
#[derive(Clone, Copy)]
pub struct Field3<'a> {
    /// Cell data, x-fastest.
    pub data: &'a [f64],
    /// Extent including ghosts: patch dims + 2*ghost per axis.
    pub dims: Dims3,
}

/// Mutable main-memory view of the output field covering the patch interior.
pub struct Field3Mut<'a> {
    /// Cell data, x-fastest.
    pub data: &'a mut [f64],
    /// Patch extent.
    pub dims: Dims3,
}

/// Everything a kernel sees while computing one tile in the LDM.
pub struct TileCtx<'a> {
    /// The tile being computed (origin relative to the patch interior).
    pub tile: TileDesc,
    /// Global cell index of the patch's (0,0,0) interior cell, for evaluating
    /// coordinate-dependent coefficients like phi(x, t).
    pub patch_cell_origin: (i64, i64, i64),
    /// LDM copy of the ghosted input tile, extent `tile.ghosted_dims(g)`.
    pub ldm_in: &'a [f64],
    /// LDM output buffer, extent `tile.dims`.
    pub ldm_out: &'a mut [f64],
    /// Ghost layers in `ldm_in`.
    pub ghost: usize,
    /// Per-offload scalar parameters (convention: `[t, dt, ...]`), passed by
    /// the MPE alongside the tile descriptors.
    pub params: &'a [f64],
}

impl TileCtx<'_> {
    /// Read the ghosted input at tile-local interior coordinates, offset by
    /// `(dx,dy,dz)` into the ghost margin.
    #[inline(always)]
    pub fn in_at(&self, x: usize, y: usize, z: usize, dx: i64, dy: i64, dz: i64) -> f64 {
        let g = self.ghost as i64;
        let gd = self.tile.ghosted_dims(self.ghost);
        let xi = x as i64 + g + dx;
        let yi = y as i64 + g + dy;
        let zi = z as i64 + g + dz;
        // Catch under-runs on the signed values: a negative index would
        // silently wrap to a huge usize in the cast below and be reported
        // (confusingly) as an out-of-bounds *high* index, or read the wrong
        // cell outright in release builds.
        debug_assert!(
            xi >= 0 && yi >= 0 && zi >= 0,
            "stencil offset ({dx},{dy},{dz}) at tile cell ({x},{y},{z}) \
             reaches before the ghosted tile (ghost = {})",
            self.ghost
        );
        self.ldm_in[idx3(gd, xi as usize, yi as usize, zi as usize)]
    }

    /// Write the output at tile-local coordinates.
    #[inline(always)]
    pub fn out_at(&mut self, x: usize, y: usize, z: usize, v: f64) {
        let d = self.tile.dims;
        self.ldm_out[idx3(d, x, y, z)] = v;
    }

    /// Global cell index of tile-local cell (x, y, z).
    #[inline(always)]
    pub fn global_cell(&self, x: usize, y: usize, z: usize) -> (i64, i64, i64) {
        (
            self.patch_cell_origin.0 + self.tile.origin.0 as i64 + x as i64,
            self.patch_cell_origin.1 + self.tile.origin.1 as i64 + y as i64,
            self.patch_cell_origin.2 + self.tile.origin.2 as i64 + z as i64,
        )
    }
}

/// A numerical kernel that computes one tile on LDM-resident data.
pub trait CpeTileKernel: Send + Sync {
    /// Ghost layers required in the input.
    fn ghost(&self) -> usize;
    /// Compute the tile: read `ctx.ldm_in`, write every cell of
    /// `ctx.ldm_out` (the staging buffers are reused between tiles, so an
    /// unwritten cell would hold the previous tile's data, not zero).
    fn compute(&self, ctx: &mut TileCtx<'_>);
}

/// Execute a kernel functionally over a whole patch, serially (CPE 0's
/// tiles, then CPE 1's, ...).
///
/// Convenience wrapper over [`run_patch_functional_with`] with
/// [`ExecPolicy::Serial`]; see there for the parameter contract.
pub fn run_patch_functional(
    kernel: &dyn CpeTileKernel,
    input: Field3<'_>,
    output: &mut Field3Mut<'_>,
    patch_cell_origin: (i64, i64, i64),
    assignment: &[Vec<TileDesc>],
    ldm_bytes: usize,
    params: &[f64],
) -> Result<u64, LdmOverflow> {
    run_patch_functional_with(
        ExecPolicy::Serial,
        kernel,
        input,
        output,
        patch_cell_origin,
        assignment,
        ldm_bytes,
        params,
    )
}

/// Execute a kernel functionally over a whole patch under `policy`.
///
/// * `input` covers the patch plus `kernel.ghost()` layers per side;
/// * `output` covers the patch interior;
/// * `assignment` is the per-CPE tile assignment from
///   [`crate::tile::assign_tiles`];
/// * `ldm_bytes` is the scratchpad budget enforced per tile (per worker
///   under [`ExecPolicy::Parallel`], one simulated LDM each).
///
/// Parallel execution requires the assignment to tile the output exactly
/// (every interior cell covered by exactly one tile — what `tiles_of`
/// produces); an assignment that is not an exact partition is executed
/// serially so overlapping tiles keep their deterministic last-write-wins
/// order — each such demotion increments [`serial_fallback_count`] and the
/// first one warns on stderr. On success the result is bit-identical across
/// policies and thread
/// counts. On [`LdmOverflow`], each CPE list stops at its first failing
/// tile and the error of the lowest-indexed failing list is returned;
/// partially written output is unspecified under both policies.
///
/// Returns the number of tiles executed.
#[allow(clippy::too_many_arguments)]
pub fn run_patch_functional_with(
    policy: ExecPolicy,
    kernel: &dyn CpeTileKernel,
    input: Field3<'_>,
    output: &mut Field3Mut<'_>,
    patch_cell_origin: (i64, i64, i64),
    assignment: &[Vec<TileDesc>],
    ldm_bytes: usize,
    params: &[f64],
) -> Result<u64, LdmOverflow> {
    let g = kernel.ghost();
    debug_assert_eq!(
        (
            output.dims.0 + 2 * g,
            output.dims.1 + 2 * g,
            output.dims.2 + 2 * g
        ),
        input.dims,
        "input must be the ghosted extent of output"
    );
    let (max_in, max_out) = staging_extents(assignment, g);
    let busy_lists = assignment.iter().filter(|l| !l.is_empty()).count();
    let workers = policy.workers_for(busy_lists);
    let exact = is_exact_partition(output.dims, assignment);
    if workers > 1 && !exact {
        // Overlapping or incomplete tile assignments must keep the serial
        // last-write-wins order; count the demotion so it is never silent.
        note_serial_fallback(
            output.dims,
            assignment.iter().map(|l| l.len()).sum::<usize>(),
        );
    }
    if workers > 1 && exact {
        run_parallel(RunArgs {
            kernel,
            input,
            output,
            patch_cell_origin,
            assignment,
            ldm_bytes,
            params,
            g,
            max_in,
            max_out,
            workers,
        })
    } else {
        run_serial(RunArgs {
            kernel,
            input,
            output,
            patch_cell_origin,
            assignment,
            ldm_bytes,
            params,
            g,
            max_in,
            max_out,
            workers: 1,
        })
    }
}

/// Bundled arguments for the two engine back-ends.
struct RunArgs<'r, 'a> {
    kernel: &'r dyn CpeTileKernel,
    input: Field3<'r>,
    output: &'r mut Field3Mut<'a>,
    patch_cell_origin: (i64, i64, i64),
    assignment: &'r [Vec<TileDesc>],
    ldm_bytes: usize,
    params: &'r [f64],
    g: usize,
    max_in: usize,
    max_out: usize,
    workers: usize,
}

/// Largest staging extents (ghosted-input cells, output cells) over every
/// tile of the assignment — the pooled-buffer sizes.
fn staging_extents(assignment: &[Vec<TileDesc>], g: usize) -> (usize, usize) {
    let mut max_in = 0;
    let mut max_out = 0;
    for t in assignment.iter().flatten() {
        let gd = t.ghosted_dims(g);
        max_in = max_in.max(gd.0 * gd.1 * gd.2);
        max_out = max_out.max(t.dims.0 * t.dims.1 * t.dims.2);
    }
    (max_in, max_out)
}

/// Whether `assignment` tiles a `dims` box exactly: all tiles in bounds,
/// every cell covered exactly once. This is the disjointness proof the
/// parallel writers rely on; `tiles_of` output always satisfies it.
fn is_exact_partition(dims: Dims3, assignment: &[Vec<TileDesc>]) -> bool {
    let total = dims.0 as u64 * dims.1 as u64 * dims.2 as u64;
    let mut covered: u64 = 0;
    for t in assignment.iter().flatten() {
        if t.dims.0 > dims.0
            || t.origin.0 > dims.0 - t.dims.0
            || t.dims.1 > dims.1
            || t.origin.1 > dims.1 - t.dims.1
            || t.dims.2 > dims.2
            || t.origin.2 > dims.2 - t.dims.2
            || t.dims.0 * t.dims.1 * t.dims.2 == 0
        {
            return false;
        }
        covered += t.cells();
    }
    if covered != total {
        return false;
    }
    // Equal cell count plus in-bounds still admits overlap; mark each cell.
    let mut seen = vec![false; dims.0 * dims.1 * dims.2];
    let plane = dims.0 * dims.1;
    for t in assignment.iter().flatten() {
        let row0 = t.origin.0 + dims.0 * t.origin.1 + plane * t.origin.2;
        for z in 0..t.dims.2 {
            let zbase = row0 + z * plane;
            for y in 0..t.dims.1 {
                let row = zbase + y * dims.0;
                for c in &mut seen[row..row + t.dims.0] {
                    if std::mem::replace(c, true) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Per-worker reusable execution state: one simulated LDM allocator plus
/// input/output staging buffers sized to the assignment's largest tile.
/// After construction the tile loop allocates nothing.
struct TilePool {
    ldm: LdmAlloc,
    buf_in: Vec<f64>,
    buf_out: Vec<f64>,
}

impl TilePool {
    fn new(ldm_bytes: usize, max_in: usize, max_out: usize) -> Self {
        TilePool {
            ldm: LdmAlloc::new(ldm_bytes),
            buf_in: vec![0.0; max_in],
            buf_out: vec![0.0; max_out],
        }
    }

    /// Stage, compute, and write back one tile, reusing the pool's buffers.
    ///
    /// The budget check reserves the tile's input then output working set
    /// against a freshly reset allocator — byte-for-byte the sequence the
    /// per-tile allocator performed, so overflow errors are unchanged.
    fn run_tile(
        &mut self,
        args: &RunArgs<'_, '_>,
        out: &SharedOut,
        t: &TileDesc,
    ) -> Result<(), LdmOverflow> {
        let g = args.g;
        let gd = t.ghosted_dims(g);
        let n_in = gd.0 * gd.1 * gd.2;
        let n_out = t.dims.0 * t.dims.1 * t.dims.2;
        self.ldm.reset();
        self.ldm.reserve(n_in * 8)?;
        self.ldm.reserve(n_out * 8)?;
        let ldm_in = &mut self.buf_in[..n_in];
        let ldm_out = &mut self.buf_out[..n_out];
        athread_get(&args.input, t, g, ldm_in);
        let mut ctx = TileCtx {
            tile: *t,
            patch_cell_origin: args.patch_cell_origin,
            ldm_in,
            ldm_out,
            ghost: g,
            params: args.params,
        };
        args.kernel.compute(&mut ctx);
        // SAFETY: `out` writes stay inside tile `t` (bounds asserted in
        // `put_tile`), and the caller guarantees no concurrent writer
        // overlaps `t` — single-threaded for the serial engine, exact
        // partition for the parallel one.
        unsafe { out.put_tile(ldm_out, t) };
        Ok(())
    }
}

/// Output-field pointer shared by the tile workers.
///
/// Writers only touch cells of their own tiles; the engine guarantees the
/// tiles written through one `SharedOut` concurrently are pairwise disjoint
/// (checked by [`is_exact_partition`] before parallel execution; trivially
/// true for the serial engine, which holds the only reference).
struct SharedOut {
    ptr: *mut f64,
    len: usize,
    dims: Dims3,
}

// SAFETY: the raw pointer refers to a `&mut [f64]` that outlives the scope
// the workers run in (see `run_parallel`); sending the wrapper moves only
// the pointer, never aliases the borrow.
unsafe impl Send for SharedOut {}
// SAFETY: see the struct docs — concurrent access through a shared
// `SharedOut` is restricted to non-overlapping writes of disjoint tiles,
// so no two threads ever touch the same cell.
unsafe impl Sync for SharedOut {}

impl SharedOut {
    fn of(out: &mut Field3Mut<'_>) -> Self {
        assert_eq!(
            out.data.len(),
            out.dims.0 * out.dims.1 * out.dims.2,
            "output slice does not match its declared extent"
        );
        SharedOut {
            ptr: out.data.as_mut_ptr(),
            len: out.data.len(),
            dims: out.dims,
        }
    }

    /// DMA a computed tile from LDM back to main memory (`athread_put`),
    /// row strides hoisted out of the copy loops.
    ///
    /// # Safety
    /// No concurrent `put_tile` may overlap tile `t`.
    unsafe fn put_tile(&self, ldm: &[f64], t: &TileDesc) {
        let d = t.dims;
        // Bounds: checked arithmetic-free because each coordinate is first
        // bounded by the extent itself.
        assert!(
            d.0 <= self.dims.0
                && t.origin.0 <= self.dims.0 - d.0
                && d.1 <= self.dims.1
                && t.origin.1 <= self.dims.1 - d.1
                && d.2 <= self.dims.2
                && t.origin.2 <= self.dims.2 - d.2,
            "tile {t:?} outside output extent {:?}",
            self.dims
        );
        assert!(
            ldm.len() >= d.0 * d.1 * d.2,
            "LDM staging buffer ({} cells) smaller than tile {t:?} ({} cells)",
            ldm.len(),
            d.0 * d.1 * d.2
        );
        let sx = self.dims.0;
        let plane = self.dims.0 * self.dims.1;
        let row0 = t.origin.0 + sx * t.origin.1 + plane * t.origin.2;
        let mut rows = ldm[..d.0 * d.1 * d.2].chunks_exact(d.0);
        for z in 0..d.2 {
            let zbase = row0 + z * plane;
            for y in 0..d.1 {
                let dst = zbase + y * sx;
                // Every copied row must land inside the output field *and*
                // inside the tile's declared interior: [dst, dst + d.0) is
                // row (y, z) of tile `t`, whose last cell is at flat index
                // row0 + (d.2-1)*plane + (d.1-1)*sx + d.0 - 1 < len by the
                // extent assertion above. Check both in debug builds so a
                // mis-specified tile fails loudly before the unsafe copy.
                debug_assert!(
                    dst + d.0 <= self.len,
                    "row (y={y}, z={z}) of tile {t:?} writes [{dst}, {}) past \
                     output len {}",
                    dst + d.0,
                    self.len
                );
                debug_assert!(
                    dst >= row0 && dst + d.0 <= row0 + (d.2 - 1) * plane + (d.1 - 1) * sx + d.0,
                    "row (y={y}, z={z}) of tile {t:?} escapes the tile's \
                     declared interior"
                );
                let row = rows.next().expect("LDM tile smaller than its extent");
                debug_assert_eq!(
                    row.len(),
                    d.0,
                    "LDM row length does not match tile x-extent for {t:?}"
                );
                // SAFETY: dst + d.0 <= len by the extent assertion above;
                // `row` borrows the LDM staging buffer, disjoint from the
                // output field.
                unsafe { std::ptr::copy_nonoverlapping(row.as_ptr(), self.ptr.add(dst), d.0) };
            }
        }
    }
}

/// DMA a ghosted tile window from main memory into LDM (`athread_get`),
/// row strides hoisted out of the copy loops.
fn athread_get(input: &Field3<'_>, t: &TileDesc, g: usize, ldm: &mut [f64]) {
    let gd = t.ghosted_dims(g);
    let sx = input.dims.0;
    let plane = input.dims.0 * input.dims.1;
    // The input field is already ghost-extended, so the ghosted window of a
    // tile at interior origin `o` starts at `o` in input coordinates.
    let row0 = t.origin.0 + sx * t.origin.1 + plane * t.origin.2;
    let mut rows = ldm[..gd.0 * gd.1 * gd.2].chunks_exact_mut(gd.0);
    for z in 0..gd.2 {
        let zbase = row0 + z * plane;
        for y in 0..gd.1 {
            let src = zbase + y * sx;
            rows.next()
                .expect("LDM tile smaller than its extent")
                .copy_from_slice(&input.data[src..src + gd.0]);
        }
    }
}

/// The serial engine: one pool, CPE lists in order, first error wins.
fn run_serial(args: RunArgs<'_, '_>) -> Result<u64, LdmOverflow> {
    let out = SharedOut::of(args.output);
    let mut pool = TilePool::new(args.ldm_bytes, args.max_in, args.max_out);
    let mut tiles_run = 0;
    for cpe_tiles in args.assignment {
        for t in cpe_tiles {
            pool.run_tile(&args, &out, t)?;
            tiles_run += 1;
        }
    }
    Ok(tiles_run)
}

/// The parallel engine: `workers` rayon tasks claim CPE tile lists from a
/// shared counter; each worker owns a private [`TilePool`] (its simulated
/// LDM). Requires `args.assignment` to be an exact partition of the output.
fn run_parallel(args: RunArgs<'_, '_>) -> Result<u64, LdmOverflow> {
    let out = SharedOut::of(args.output);
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let args_ref = &args;
    let results: Vec<(u64, Option<(usize, LdmOverflow)>)> = rayon::scope(|s| {
        let handles: Vec<_> = (0..args_ref.workers)
            .map(|_| {
                let (out, next, abort) = (&out, &next, &abort);
                s.spawn(move || {
                    let mut pool =
                        TilePool::new(args_ref.ldm_bytes, args_ref.max_in, args_ref.max_out);
                    let mut tiles_run = 0u64;
                    let mut first_err: Option<(usize, LdmOverflow)> = None;
                    while !abort.load(Ordering::Relaxed) {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(cpe_tiles) = args_ref.assignment.get(i) else {
                            break;
                        };
                        for t in cpe_tiles {
                            match pool.run_tile(args_ref, out, t) {
                                Ok(()) => tiles_run += 1,
                                Err(e) => {
                                    // Stop this CPE list at its first failing
                                    // tile, like the serial engine, and tell
                                    // the other workers to wind down.
                                    first_err = Some((i, e));
                                    abort.store(true, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                        if first_err.is_some() {
                            break;
                        }
                    }
                    (tiles_run, first_err)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("CPE worker panicked"))
            .collect()
    });
    let mut tiles = 0;
    let mut err: Option<(usize, LdmOverflow)> = None;
    for (n, e) in results {
        tiles += n;
        if let Some((i, e)) = e {
            // Deterministic selection among observed failures: lowest CPE
            // list index first, the order the serial engine scans in.
            if err.is_none_or(|(j, _)| i < j) {
                err = Some((i, e));
            }
        }
    }
    match err {
        Some((_, e)) => Err(e),
        None => Ok(tiles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::{assign_tiles, tiles_of};

    /// 7-point average kernel for testing the executor plumbing.
    struct Avg7;

    impl CpeTileKernel for Avg7 {
        fn ghost(&self) -> usize {
            1
        }
        fn compute(&self, ctx: &mut TileCtx<'_>) {
            let d = ctx.tile.dims;
            for z in 0..d.2 {
                for y in 0..d.1 {
                    for x in 0..d.0 {
                        let s = ctx.in_at(x, y, z, 0, 0, 0)
                            + ctx.in_at(x, y, z, -1, 0, 0)
                            + ctx.in_at(x, y, z, 1, 0, 0)
                            + ctx.in_at(x, y, z, 0, -1, 0)
                            + ctx.in_at(x, y, z, 0, 1, 0)
                            + ctx.in_at(x, y, z, 0, 0, -1)
                            + ctx.in_at(x, y, z, 0, 0, 1);
                        ctx.out_at(x, y, z, s / 7.0);
                    }
                }
            }
        }
    }

    fn reference_avg7(input: &[f64], patch: Dims3) -> Vec<f64> {
        let gdims = (patch.0 + 2, patch.1 + 2, patch.2 + 2);
        let mut out = vec![0.0; patch.0 * patch.1 * patch.2];
        for z in 0..patch.2 {
            for y in 0..patch.1 {
                for x in 0..patch.0 {
                    let at = |dx: i64, dy: i64, dz: i64| {
                        input[idx3(
                            gdims,
                            (x as i64 + 1 + dx) as usize,
                            (y as i64 + 1 + dy) as usize,
                            (z as i64 + 1 + dz) as usize,
                        )]
                    };
                    out[idx3(patch, x, y, z)] = (at(0, 0, 0)
                        + at(-1, 0, 0)
                        + at(1, 0, 0)
                        + at(0, -1, 0)
                        + at(0, 1, 0)
                        + at(0, 0, -1)
                        + at(0, 0, 1))
                        / 7.0;
                }
            }
        }
        out
    }

    fn filled_input(patch: Dims3) -> Vec<f64> {
        let gdims = (patch.0 + 2, patch.1 + 2, patch.2 + 2);
        (0..gdims.0 * gdims.1 * gdims.2)
            .map(|i| (i as f64 * 0.37).sin())
            .collect()
    }

    #[test]
    fn tiled_execution_matches_untiled_reference() {
        let patch = (12, 10, 16);
        let input_data = filled_input(patch);
        let want = reference_avg7(&input_data, patch);

        let tiles = tiles_of(patch, (4, 4, 4));
        for cpes in [1, 3, 7] {
            let assignment = assign_tiles(&tiles, cpes);
            let mut out_data = vec![0.0; patch.0 * patch.1 * patch.2];
            let n = run_patch_functional(
                &Avg7,
                Field3 {
                    data: &input_data,
                    dims: (patch.0 + 2, patch.1 + 2, patch.2 + 2),
                },
                &mut Field3Mut {
                    data: &mut out_data,
                    dims: patch,
                },
                (0, 0, 0),
                &assignment,
                64 * 1024,
                &[],
            )
            .unwrap();
            assert_eq!(n, tiles.len() as u64);
            assert_eq!(out_data, want, "cpes = {cpes}");
        }
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_serial() {
        let patch = (12, 10, 16);
        let input_data = filled_input(patch);
        let want = reference_avg7(&input_data, patch);
        let tiles = tiles_of(patch, (4, 4, 4));
        for cpes in [1, 3, 7, 64] {
            let assignment = assign_tiles(&tiles, cpes);
            for policy in [
                ExecPolicy::Parallel { threads: 2 },
                ExecPolicy::Parallel { threads: 4 },
                ExecPolicy::AUTO,
            ] {
                let mut out_data = vec![f64::NAN; patch.0 * patch.1 * patch.2];
                let n = run_patch_functional_with(
                    policy,
                    &Avg7,
                    Field3 {
                        data: &input_data,
                        dims: (patch.0 + 2, patch.1 + 2, patch.2 + 2),
                    },
                    &mut Field3Mut {
                        data: &mut out_data,
                        dims: patch,
                    },
                    (0, 0, 0),
                    &assignment,
                    64 * 1024,
                    &[],
                )
                .unwrap();
                assert_eq!(n, tiles.len() as u64);
                assert_eq!(out_data, want, "cpes = {cpes}, policy = {policy:?}");
            }
        }
    }

    #[test]
    fn ldm_budget_is_enforced() {
        let patch = (8, 8, 8);
        let input_data = filled_input(patch);
        let tiles = tiles_of(patch, (8, 8, 8)); // one big tile
        let assignment = assign_tiles(&tiles, 1);
        let mut out_data = vec![0.0; 512];
        // Working set: 10*10*10 + 8*8*8 doubles = 12096 B; give it less.
        let err = run_patch_functional(
            &Avg7,
            Field3 {
                data: &input_data,
                dims: (10, 10, 10),
            },
            &mut Field3Mut {
                data: &mut out_data,
                dims: patch,
            },
            (0, 0, 0),
            &assignment,
            8 * 1024,
            &[],
        )
        .unwrap_err();
        assert_eq!(err.capacity, 8 * 1024);
    }

    #[test]
    fn ldm_overflow_propagates_out_of_the_parallel_scope() {
        let patch = (8, 8, 16);
        let input_data = filled_input(patch);
        let tiles = tiles_of(patch, (8, 8, 8)); // two over-budget tiles
        let assignment = assign_tiles(&tiles, 2);
        let mut out_data = vec![0.0; patch.0 * patch.1 * patch.2];
        let serial_err = run_patch_functional(
            &Avg7,
            Field3 {
                data: &input_data,
                dims: (10, 10, 18),
            },
            &mut Field3Mut {
                data: &mut out_data,
                dims: patch,
            },
            (0, 0, 0),
            &assignment,
            8 * 1024,
            &[],
        )
        .unwrap_err();
        let par_err = run_patch_functional_with(
            ExecPolicy::Parallel { threads: 2 },
            &Avg7,
            Field3 {
                data: &input_data,
                dims: (10, 10, 18),
            },
            &mut Field3Mut {
                data: &mut out_data,
                dims: patch,
            },
            (0, 0, 0),
            &assignment,
            8 * 1024,
            &[],
        )
        .unwrap_err();
        // Same-shape tiles fail identically, so the errors must agree.
        assert_eq!(serial_err, par_err);
        assert_eq!(par_err.capacity, 8 * 1024);
    }

    #[test]
    fn overlapping_assignment_falls_back_to_serial_order() {
        // Two tiles covering the same cells: not a partition, so the
        // parallel policy must run them serially and keep last-write-wins.
        struct Stamp;
        impl CpeTileKernel for Stamp {
            fn ghost(&self) -> usize {
                0
            }
            fn compute(&self, ctx: &mut TileCtx<'_>) {
                let v = ctx.params[0] + ctx.tile.origin.2 as f64;
                let d = ctx.tile.dims;
                for i in 0..d.0 * d.1 * d.2 {
                    ctx.ldm_out[i] = v;
                }
            }
        }
        let patch = (4, 4, 2);
        let whole = TileDesc {
            origin: (0, 0, 0),
            dims: patch,
        };
        let assignment = vec![vec![whole], vec![whole]];
        let input = vec![0.0; 32];
        let mut out_serial = vec![0.0; 32];
        let mut out_par = vec![0.0; 32];
        let fallbacks_before = serial_fallback_count();
        for (policy, out) in [
            (ExecPolicy::Serial, &mut out_serial),
            (ExecPolicy::Parallel { threads: 2 }, &mut out_par),
        ] {
            run_patch_functional_with(
                policy,
                &Stamp,
                Field3 {
                    data: &input,
                    dims: patch,
                },
                &mut Field3Mut {
                    data: out,
                    dims: patch,
                },
                (0, 0, 0),
                &assignment,
                64 * 1024,
                &[7.0],
            )
            .unwrap();
        }
        assert_eq!(out_serial, out_par);
        // Exactly one demotion: the Serial run is not a fallback, only the
        // parallel-policy run of the overlapping assignment counts. (This is
        // the only test in the binary that increments the process-wide
        // counter, so the exact delta is race-free.)
        assert_eq!(serial_fallback_count(), fallbacks_before + 1);

        // Counter is untouched by an exact-partition parallel run.
        let patch = (12, 10, 16);
        let input_data = filled_input(patch);
        let tiles = tiles_of(patch, (4, 4, 4));
        let assignment = assign_tiles(&tiles, 4);
        let before = serial_fallback_count();
        let mut out_data = vec![0.0; patch.0 * patch.1 * patch.2];
        run_patch_functional_with(
            ExecPolicy::Parallel { threads: 2 },
            &Avg7,
            Field3 {
                data: &input_data,
                dims: (patch.0 + 2, patch.1 + 2, patch.2 + 2),
            },
            &mut Field3Mut {
                data: &mut out_data,
                dims: patch,
            },
            (0, 0, 0),
            &assignment,
            64 * 1024,
            &[],
        )
        .unwrap();
        assert_eq!(serial_fallback_count(), before);
    }

    #[test]
    fn exec_policy_worker_counts() {
        assert_eq!(ExecPolicy::Serial.workers_for(64), 1);
        assert_eq!(ExecPolicy::Parallel { threads: 4 }.workers_for(64), 4);
        // Never more workers than tile lists, never fewer than one.
        assert_eq!(ExecPolicy::Parallel { threads: 8 }.workers_for(3), 3);
        assert_eq!(ExecPolicy::Parallel { threads: 8 }.workers_for(0), 1);
        assert!(ExecPolicy::AUTO.workers_for(64) >= 1);
        assert_eq!(ExecPolicy::default(), ExecPolicy::Serial);
    }

    #[test]
    fn partition_checker_accepts_tiles_of_and_rejects_overlap() {
        let patch = (10, 10, 10);
        let tiles = tiles_of(patch, (4, 4, 4));
        let assignment = assign_tiles(&tiles, 5);
        assert!(is_exact_partition(patch, &assignment));
        // Drop a tile: under-coverage.
        let mut missing = assignment.clone();
        missing[0].pop();
        assert!(!is_exact_partition(patch, &missing));
        // Duplicate a tile: overlap (cell count catches it).
        let mut dup = assignment.clone();
        let t = dup[0][0];
        dup[0].push(t);
        assert!(!is_exact_partition(patch, &dup));
        // Same cell count, shifted tile: overlap (bitmap catches it).
        let mut shifted = assignment;
        shifted[1][0].origin = shifted[0][0].origin;
        assert!(!is_exact_partition(patch, &shifted));
        // Out-of-bounds tile.
        let oob = vec![vec![TileDesc {
            origin: (8, 0, 0),
            dims: (4, 10, 10),
        }]];
        assert!(!is_exact_partition(patch, &oob));
    }

    #[test]
    fn global_cell_indices_account_for_patch_and_tile_origin() {
        struct Probe;
        impl CpeTileKernel for Probe {
            fn ghost(&self) -> usize {
                0
            }
            fn compute(&self, ctx: &mut TileCtx<'_>) {
                let d = ctx.tile.dims;
                for z in 0..d.2 {
                    for y in 0..d.1 {
                        for x in 0..d.0 {
                            let (gx, gy, gz) = ctx.global_cell(x, y, z);
                            ctx.out_at(x, y, z, (gx * 10000 + gy * 100 + gz) as f64);
                        }
                    }
                }
            }
        }
        let patch = (4, 4, 4);
        let input_data = vec![0.0; 64];
        let tiles = tiles_of(patch, (2, 2, 2));
        let assignment = assign_tiles(&tiles, 2);
        let mut out_data = vec![0.0; 64];
        run_patch_functional(
            &Probe,
            Field3 {
                data: &input_data,
                dims: patch,
            },
            &mut Field3Mut {
                data: &mut out_data,
                dims: patch,
            },
            (100, 200, 300),
            &assignment,
            64 * 1024,
            &[],
        )
        .unwrap();
        // Cell (3,1,2) of the patch = global (103, 201, 302).
        assert_eq!(
            out_data[idx3(patch, 3, 1, 2)],
            (103 * 10000 + 201 * 100 + 302) as f64
        );
        assert_eq!(
            out_data[idx3(patch, 0, 0, 0)],
            (100 * 10000 + 200 * 100 + 300) as f64
        );
    }
}
