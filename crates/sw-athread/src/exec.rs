//! Functional execution of an offloaded kernel, tile-by-tile through the LDM.
//!
//! This is the CPE tile scheduler of paper §V-D run for real: for each CPE's
//! assigned tiles, (a) `athread_get` the ghosted input tile into LDM,
//! (b) apply the numerical kernel entirely on LDM-resident data,
//! (c) `athread_put` the modified tile back to main memory. The LDM
//! allocator enforces the 64 KB budget, so a kernel whose working set does
//! not fit fails exactly where it would on hardware.
//!
//! Execution order (CPE 0's tiles, then CPE 1's, ...) is deterministic; tile
//! outputs are disjoint, so the result equals a true parallel execution.

use sw_sim::{LdmAlloc, LdmOverflow};

use crate::tile::{Dims3, TileDesc};

/// Flat index into an x-fastest 3-D array.
#[inline(always)]
pub fn idx3(dims: Dims3, x: usize, y: usize, z: usize) -> usize {
    debug_assert!(x < dims.0 && y < dims.1 && z < dims.2);
    x + dims.0 * (y + dims.1 * z)
}

/// Read-only main-memory view of a field covering a patch *plus its ghost
/// layers* (assembled by the data warehouse before the offload).
#[derive(Clone, Copy)]
pub struct Field3<'a> {
    /// Cell data, x-fastest.
    pub data: &'a [f64],
    /// Extent including ghosts: patch dims + 2*ghost per axis.
    pub dims: Dims3,
}

/// Mutable main-memory view of the output field covering the patch interior.
pub struct Field3Mut<'a> {
    /// Cell data, x-fastest.
    pub data: &'a mut [f64],
    /// Patch extent.
    pub dims: Dims3,
}

/// Everything a kernel sees while computing one tile in the LDM.
pub struct TileCtx<'a> {
    /// The tile being computed (origin relative to the patch interior).
    pub tile: TileDesc,
    /// Global cell index of the patch's (0,0,0) interior cell, for evaluating
    /// coordinate-dependent coefficients like phi(x, t).
    pub patch_cell_origin: (i64, i64, i64),
    /// LDM copy of the ghosted input tile, extent `tile.ghosted_dims(g)`.
    pub ldm_in: &'a [f64],
    /// LDM output buffer, extent `tile.dims`.
    pub ldm_out: &'a mut [f64],
    /// Ghost layers in `ldm_in`.
    pub ghost: usize,
    /// Per-offload scalar parameters (convention: `[t, dt, ...]`), passed by
    /// the MPE alongside the tile descriptors.
    pub params: &'a [f64],
}

impl TileCtx<'_> {
    /// Read the ghosted input at tile-local interior coordinates, offset by
    /// `(dx,dy,dz)` into the ghost margin.
    #[inline(always)]
    pub fn in_at(&self, x: usize, y: usize, z: usize, dx: i64, dy: i64, dz: i64) -> f64 {
        let g = self.ghost as i64;
        let gd = self.tile.ghosted_dims(self.ghost);
        let xi = (x as i64 + g + dx) as usize;
        let yi = (y as i64 + g + dy) as usize;
        let zi = (z as i64 + g + dz) as usize;
        self.ldm_in[idx3(gd, xi, yi, zi)]
    }

    /// Write the output at tile-local coordinates.
    #[inline(always)]
    pub fn out_at(&mut self, x: usize, y: usize, z: usize, v: f64) {
        let d = self.tile.dims;
        self.ldm_out[idx3(d, x, y, z)] = v;
    }

    /// Global cell index of tile-local cell (x, y, z).
    #[inline(always)]
    pub fn global_cell(&self, x: usize, y: usize, z: usize) -> (i64, i64, i64) {
        (
            self.patch_cell_origin.0 + self.tile.origin.0 as i64 + x as i64,
            self.patch_cell_origin.1 + self.tile.origin.1 as i64 + y as i64,
            self.patch_cell_origin.2 + self.tile.origin.2 as i64 + z as i64,
        )
    }
}

/// A numerical kernel that computes one tile on LDM-resident data.
pub trait CpeTileKernel: Send + Sync {
    /// Ghost layers required in the input.
    fn ghost(&self) -> usize;
    /// Compute the tile: read `ctx.ldm_in`, write every cell of
    /// `ctx.ldm_out`.
    fn compute(&self, ctx: &mut TileCtx<'_>);
}

/// Execute a kernel functionally over a whole patch.
///
/// * `input` covers the patch plus `kernel.ghost()` layers per side;
/// * `output` covers the patch interior;
/// * `assignment` is the per-CPE tile assignment from
///   [`crate::tile::assign_tiles`];
/// * `ldm_bytes` is the scratchpad budget enforced per tile.
///
/// Returns the number of tiles executed.
pub fn run_patch_functional(
    kernel: &dyn CpeTileKernel,
    input: Field3<'_>,
    output: &mut Field3Mut<'_>,
    patch_cell_origin: (i64, i64, i64),
    assignment: &[Vec<TileDesc>],
    ldm_bytes: usize,
    params: &[f64],
) -> Result<u64, LdmOverflow> {
    let g = kernel.ghost();
    debug_assert_eq!(
        (output.dims.0 + 2 * g, output.dims.1 + 2 * g, output.dims.2 + 2 * g),
        input.dims,
        "input must be the ghosted extent of output"
    );
    let mut ldm = LdmAlloc::new(ldm_bytes);
    let mut tiles_run = 0;
    for cpe_tiles in assignment {
        for t in cpe_tiles {
            ldm.reset();
            let gdims = t.ghosted_dims(g);
            let mut ldm_in = ldm.alloc_f64(gdims.0 * gdims.1 * gdims.2)?;
            let mut ldm_out = ldm.alloc_f64(t.dims.0 * t.dims.1 * t.dims.2)?;
            athread_get(&input, t, g, &mut ldm_in);
            let mut ctx = TileCtx {
                tile: *t,
                patch_cell_origin,
                ldm_in: &ldm_in,
                ldm_out: &mut ldm_out,
                ghost: g,
                params,
            };
            kernel.compute(&mut ctx);
            athread_put(&ldm_out, t, output);
            tiles_run += 1;
        }
    }
    Ok(tiles_run)
}

/// DMA a ghosted tile window from main memory into LDM (`athread_get`).
fn athread_get(input: &Field3<'_>, t: &TileDesc, g: usize, ldm: &mut [f64]) {
    let gd = t.ghosted_dims(g);
    // The input field is already ghost-extended, so the ghosted window of a
    // tile at interior origin `o` starts at `o` in input coordinates.
    for z in 0..gd.2 {
        for y in 0..gd.1 {
            let src = idx3(input.dims, t.origin.0, t.origin.1 + y, t.origin.2 + z);
            let dst = idx3(gd, 0, y, z);
            ldm[dst..dst + gd.0].copy_from_slice(&input.data[src..src + gd.0]);
        }
    }
}

/// DMA a computed tile from LDM back to main memory (`athread_put`).
fn athread_put(ldm: &[f64], t: &TileDesc, output: &mut Field3Mut<'_>) {
    let d = t.dims;
    for z in 0..d.2 {
        for y in 0..d.1 {
            let src = idx3(d, 0, y, z);
            let dst = idx3(output.dims, t.origin.0, t.origin.1 + y, t.origin.2 + z);
            output.data[dst..dst + d.0].copy_from_slice(&ldm[src..src + d.0]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::{assign_tiles, tiles_of};

    /// 7-point average kernel for testing the executor plumbing.
    struct Avg7;

    impl CpeTileKernel for Avg7 {
        fn ghost(&self) -> usize {
            1
        }
        fn compute(&self, ctx: &mut TileCtx<'_>) {
            let d = ctx.tile.dims;
            for z in 0..d.2 {
                for y in 0..d.1 {
                    for x in 0..d.0 {
                        let s = ctx.in_at(x, y, z, 0, 0, 0)
                            + ctx.in_at(x, y, z, -1, 0, 0)
                            + ctx.in_at(x, y, z, 1, 0, 0)
                            + ctx.in_at(x, y, z, 0, -1, 0)
                            + ctx.in_at(x, y, z, 0, 1, 0)
                            + ctx.in_at(x, y, z, 0, 0, -1)
                            + ctx.in_at(x, y, z, 0, 0, 1);
                        ctx.out_at(x, y, z, s / 7.0);
                    }
                }
            }
        }
    }

    fn reference_avg7(input: &[f64], patch: Dims3) -> Vec<f64> {
        let gdims = (patch.0 + 2, patch.1 + 2, patch.2 + 2);
        let mut out = vec![0.0; patch.0 * patch.1 * patch.2];
        for z in 0..patch.2 {
            for y in 0..patch.1 {
                for x in 0..patch.0 {
                    let at = |dx: i64, dy: i64, dz: i64| {
                        input[idx3(
                            gdims,
                            (x as i64 + 1 + dx) as usize,
                            (y as i64 + 1 + dy) as usize,
                            (z as i64 + 1 + dz) as usize,
                        )]
                    };
                    out[idx3(patch, x, y, z)] = (at(0, 0, 0)
                        + at(-1, 0, 0)
                        + at(1, 0, 0)
                        + at(0, -1, 0)
                        + at(0, 1, 0)
                        + at(0, 0, -1)
                        + at(0, 0, 1))
                        / 7.0;
                }
            }
        }
        out
    }

    fn filled_input(patch: Dims3) -> Vec<f64> {
        let gdims = (patch.0 + 2, patch.1 + 2, patch.2 + 2);
        (0..gdims.0 * gdims.1 * gdims.2)
            .map(|i| (i as f64 * 0.37).sin())
            .collect()
    }

    #[test]
    fn tiled_execution_matches_untiled_reference() {
        let patch = (12, 10, 16);
        let input_data = filled_input(patch);
        let want = reference_avg7(&input_data, patch);

        let tiles = tiles_of(patch, (4, 4, 4));
        for cpes in [1, 3, 7] {
            let assignment = assign_tiles(&tiles, cpes);
            let mut out_data = vec![0.0; patch.0 * patch.1 * patch.2];
            let n = run_patch_functional(
                &Avg7,
                Field3 {
                    data: &input_data,
                    dims: (patch.0 + 2, patch.1 + 2, patch.2 + 2),
                },
                &mut Field3Mut {
                    data: &mut out_data,
                    dims: patch,
                },
                (0, 0, 0),
                &assignment,
                64 * 1024,
                &[],
            )
            .unwrap();
            assert_eq!(n, tiles.len() as u64);
            assert_eq!(out_data, want, "cpes = {cpes}");
        }
    }

    #[test]
    fn ldm_budget_is_enforced() {
        let patch = (8, 8, 8);
        let input_data = filled_input(patch);
        let tiles = tiles_of(patch, (8, 8, 8)); // one big tile
        let assignment = assign_tiles(&tiles, 1);
        let mut out_data = vec![0.0; 512];
        // Working set: 10*10*10 + 8*8*8 doubles = 12096 B; give it less.
        let err = run_patch_functional(
            &Avg7,
            Field3 {
                data: &input_data,
                dims: (10, 10, 10),
            },
            &mut Field3Mut {
                data: &mut out_data,
                dims: patch,
            },
            (0, 0, 0),
            &assignment,
            8 * 1024,
            &[],
        )
        .unwrap_err();
        assert_eq!(err.capacity, 8 * 1024);
    }

    #[test]
    fn global_cell_indices_account_for_patch_and_tile_origin() {
        struct Probe;
        impl CpeTileKernel for Probe {
            fn ghost(&self) -> usize {
                0
            }
            fn compute(&self, ctx: &mut TileCtx<'_>) {
                let d = ctx.tile.dims;
                for z in 0..d.2 {
                    for y in 0..d.1 {
                        for x in 0..d.0 {
                            let (gx, gy, gz) = ctx.global_cell(x, y, z);
                            ctx.out_at(x, y, z, (gx * 10000 + gy * 100 + gz) as f64);
                        }
                    }
                }
            }
        }
        let patch = (4, 4, 4);
        let input_data = vec![0.0; 64];
        let tiles = tiles_of(patch, (2, 2, 2));
        let assignment = assign_tiles(&tiles, 2);
        let mut out_data = vec![0.0; 64];
        run_patch_functional(
            &Probe,
            Field3 {
                data: &input_data,
                dims: patch,
            },
            &mut Field3Mut {
                data: &mut out_data,
                dims: patch,
            },
            (100, 200, 300),
            &assignment,
            64 * 1024,
            &[],
        )
        .unwrap();
        // Cell (3,1,2) of the patch = global (103, 201, 302).
        assert_eq!(
            out_data[idx3(patch, 3, 1, 2)],
            (103 * 10000 + 201 * 100 + 302) as f64
        );
        assert_eq!(
            out_data[idx3(patch, 0, 0, 0)],
            (100 * 10000 + 200 * 100 + 300) as f64
        );
    }
}
