//! The main-memory completion flag.
//!
//! The scheduler sets up a completion flag in main memory just before
//! offloading a kernel; each CPE atomically increments it with the `faaw`
//! instruction when its share is done (paper §V-B, §V-D step 3). The MPE
//! polls the flag — spinning in synchronous mode, "at times" in asynchronous
//! mode.

/// An 8-byte main-memory counter incremented by `faaw`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompletionFlag {
    value: u64,
    target: u64,
}

impl CompletionFlag {
    /// A cleared flag that completes after `target` increments (one per CPE).
    pub fn new(target: u64) -> Self {
        CompletionFlag { value: 0, target }
    }

    /// Clear before the next offload (scheduler step 1 / 3(b)iv).
    pub fn clear(&mut self, target: u64) {
        self.value = 0;
        self.target = target;
    }

    /// Fetch-and-add-word: one CPE reports done. Returns the new value.
    pub fn faaw(&mut self) -> u64 {
        self.value += 1;
        self.value
    }

    /// Mark all participants done at once (used when the discrete-event model
    /// collapses a kernel into a single completion event).
    pub fn complete_all(&mut self) {
        self.value = self.target;
    }

    /// What the MPE's poll reads: has every CPE incremented?
    pub fn is_set(&self) -> bool {
        self.value >= self.target
    }

    /// Current raw value (progress monitoring, §IV-A).
    pub fn value(&self) -> u64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_after_target_faaws() {
        let mut f = CompletionFlag::new(4);
        for i in 1..=3 {
            assert_eq!(f.faaw(), i);
            assert!(!f.is_set());
        }
        assert_eq!(f.faaw(), 4);
        assert!(f.is_set());
    }

    #[test]
    fn clear_resets_for_reuse() {
        let mut f = CompletionFlag::new(2);
        f.faaw();
        f.faaw();
        assert!(f.is_set());
        f.clear(3);
        assert!(!f.is_set());
        assert_eq!(f.value(), 0);
        f.complete_all();
        assert!(f.is_set());
    }

    #[test]
    fn zero_target_is_immediately_set() {
        let f = CompletionFlag::new(0);
        assert!(f.is_set());
    }
}
