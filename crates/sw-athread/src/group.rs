//! The athread group: the offload facade the scheduler talks to.
//!
//! An [`AthreadGroup`] represents the 64 CPEs of one core group. In the
//! paper's design the whole cluster runs one kernel at a time: the MPE
//! clears the completion flag, offloads, and either spins (synchronous mode)
//! or returns immediately and polls (asynchronous mode) — §V-B/§V-C. The
//! paper's §IX also proposes *grouping* the CPEs "and schedule different
//! patches to different groups, to enable both task and data parallelism on
//! the CGs"; that extension is implemented here as `groups > 1`, giving the
//! group several independent offload slots, each with its own completion
//! flag.
//!
//! In the discrete-event model an offload occupies a slot for the kernel's
//! computed duration; completion arrives as a
//! [`sw_sim::MachineEvent::KernelDone`] carrying the token minted here.

use std::sync::Arc;

use sw_resilience::{FaultPlan, FaultStats, OffloadKey, SlotFault};
use sw_sim::{CgId, FlopCategory, MachineCtx, SimDur, SimTime};
use sw_telemetry::{Event, Lane, Recorder};

use crate::cost::{with_spin_penalty, KernelTiming};
use crate::flag::CompletionFlag;

/// `done_at` sentinel for a kernel that will **never** complete (its slot
/// died or its DMA transfer errored). Only the MPE's deadline detector can
/// reap it, via [`AthreadGroup::abort`].
pub const NEVER: SimTime = SimTime(u64::MAX);

/// An in-flight offloaded kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelHandle {
    /// Token carried by the completion event.
    pub token: u64,
    /// CPE group slot the kernel runs on.
    pub slot: usize,
    /// Virtual instant the kernel's last CPE increments the flag.
    pub done_at: SimTime,
}

/// Offload interface for one CG's CPE cluster, optionally split into groups.
#[derive(Debug)]
pub struct AthreadGroup {
    cg: CgId,
    cpes: usize,
    groups: usize,
    next_token: u64,
    slots: Vec<Option<KernelHandle>>,
    flags: Vec<CompletionFlag>,
    kernels_run: u64,
    /// Telemetry sink for DMA/offload hardware events (off by default).
    rec: Recorder,
    /// Optional fault plan consulted on every keyed spawn.
    faults: Option<Arc<FaultPlan>>,
    /// Slots taken out of service after a death (never chosen again).
    blacklisted: Vec<bool>,
}

impl AthreadGroup {
    /// The paper's configuration: one kernel at a time on the whole cluster.
    pub fn new(cg: CgId, cpes: usize) -> Self {
        Self::with_groups(cg, cpes, 1)
    }

    /// Split the cluster into `groups` equal groups (§IX extension).
    pub fn with_groups(cg: CgId, cpes: usize, groups: usize) -> Self {
        assert!(groups >= 1 && groups <= cpes, "bad group count {groups}");
        assert!(
            cpes.is_multiple_of(groups),
            "{cpes} CPEs do not split into {groups} equal groups"
        );
        AthreadGroup {
            cg,
            cpes,
            groups,
            next_token: 0,
            slots: vec![None; groups],
            flags: (0..groups).map(|_| CompletionFlag::new(0)).collect(),
            kernels_run: 0,
            rec: Recorder::off(),
            faults: None,
            blacklisted: vec![false; groups],
        }
    }

    /// Thread a fault plan through this group's spawns.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Thread a telemetry recorder through this group's DMA/offload events.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// The CG this group belongs to.
    pub fn cg(&self) -> CgId {
        self.cg
    }

    /// Number of independent offload slots.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// CPEs available to one kernel.
    pub fn cpes_per_group(&self) -> usize {
        self.cpes / self.groups
    }

    /// Index of a free, healthy slot, lowest first. Blacklisted slots are
    /// never chosen.
    pub fn free_slot(&self) -> Option<usize> {
        self.slots
            .iter()
            .enumerate()
            .position(|(i, s)| s.is_none() && !self.blacklisted[i])
    }

    /// Take a slot out of service (after a detected death). In-flight state
    /// on the slot, if any, must be reaped first via [`Self::abort`].
    /// Returns `false` if blacklisting it would leave no healthy slots (the
    /// caller must degrade to serial MPE execution instead).
    pub fn blacklist(&mut self, slot: usize) -> bool {
        if self.healthy_slots() <= 1 && !self.blacklisted[slot] {
            return false;
        }
        if !self.blacklisted[slot] {
            self.blacklisted[slot] = true;
            if let Some(p) = &self.faults {
                FaultStats::bump(&p.stats.slots_blacklisted);
            }
        }
        true
    }

    /// Whether a slot has been blacklisted.
    pub fn is_blacklisted(&self, slot: usize) -> bool {
        self.blacklisted[slot]
    }

    /// Number of slots still in service.
    pub fn healthy_slots(&self) -> usize {
        self.blacklisted.iter().filter(|b| !**b).count()
    }

    /// Reap an in-flight kernel by token without completing it (the MPE's
    /// deadline detector declared it lost). The slot frees, the completion
    /// flag stays clear, and the machine's eventual `KernelDone` (stragglers
    /// that were given up on) is later ignored by token mismatch. Returns
    /// the freed slot.
    pub fn abort(&mut self, token: u64) -> Option<usize> {
        for (slot, s) in self.slots.iter_mut().enumerate() {
            if s.map(|h| h.token) == Some(token) {
                *s = None;
                return Some(slot);
            }
        }
        None
    }

    /// The token the next [`spawn`](Self::spawn) will mint. Lets the caller
    /// record an `OffloadStart` *before* spawning, so the CPE lane's event
    /// order stays time-monotone (spawn appends the DMA window itself).
    pub fn peek_token(&self) -> u64 {
        self.next_token
    }

    /// Whether every slot is occupied.
    pub fn all_busy(&self) -> bool {
        self.slots.iter().all(|s| s.is_some())
    }

    /// Whether any kernel is in flight.
    pub fn any_busy(&self) -> bool {
        self.slots.iter().any(|s| s.is_some())
    }

    /// The in-flight kernels, earliest completion first.
    pub fn inflight(&self) -> Vec<KernelHandle> {
        let mut v: Vec<KernelHandle> = self.slots.iter().flatten().copied().collect();
        v.sort_by_key(|h| (h.done_at, h.token));
        v
    }

    /// A slot's completion flag (the word the MPE polls).
    pub fn flag(&self, slot: usize) -> &CompletionFlag {
        &self.flags[slot]
    }

    /// Kernels completed so far.
    pub fn kernels_run(&self) -> u64 {
        self.kernels_run
    }

    /// Offload a kernel with precomputed [`KernelTiming`] onto a free slot.
    ///
    /// `spin` selects synchronous mode: the kernel duration is inflated by
    /// the calibrated MPE-spin contention penalty (the MPE itself is blocked
    /// by the caller). Flops are credited to the CG's hardware counters.
    ///
    /// # Panics
    /// Panics if every slot is occupied.
    pub fn spawn(
        &mut self,
        machine: &mut MachineCtx<'_>,
        start: SimTime,
        timing: &KernelTiming,
        spin: bool,
    ) -> KernelHandle {
        self.spawn_keyed(machine, start, timing, spin, None)
    }

    /// [`Self::spawn`] with an optional fault-plan key.
    ///
    /// When this group holds a fault plan and `key` identifies the offload
    /// attempt, the plan may inject:
    ///
    /// * **slot death** — the kernel silently never completes: the slot
    ///   stays occupied with `done_at ==` [`NEVER`], the flag stays clear,
    ///   and no machine event is scheduled (flops are *not* credited: the
    ///   kernel never ran);
    /// * **straggler** — the kernel completes, but its duration is
    ///   stretched by the plan's factor;
    /// * **DMA error** (decided inside the machine) — same observable
    ///   outcome as a death.
    ///
    /// Detection is the caller's job: compare `done_at ==` [`NEVER`] or run
    /// an MPE deadline and [`Self::abort`] + retry on expiry.
    pub fn spawn_keyed(
        &mut self,
        machine: &mut MachineCtx<'_>,
        start: SimTime,
        timing: &KernelTiming,
        spin: bool,
        key: Option<&OffloadKey>,
    ) -> KernelHandle {
        let slot = self.free_slot().unwrap_or_else(|| {
            panic!(
                "CG {}: offload with all {} healthy slots busy",
                self.cg, self.groups
            )
        });
        let mut dur = if spin {
            with_spin_penalty(machine.cfg(), timing.duration)
        } else {
            timing.duration
        };
        let token = self.next_token;
        self.next_token += 1;
        let cpes_per_group = self.cpes_per_group() as u64;
        self.flags[slot].clear(cpes_per_group);
        let lane = Lane::Cpe(slot as u32);
        // `offload_kernel` starts the kernel at `start.max(now)` and does
        // not advance virtual time, so this is the exact hardware begin.
        let begin = start.max(machine.now());

        // Consult the fault plane for this attempt.
        let mut dead = false;
        if let (Some(plan), Some(k)) = (self.faults.as_ref(), key) {
            match plan.slot_fault(k) {
                Some(SlotFault::Death) => {
                    dead = true;
                    FaultStats::bump(&plan.stats.injected_slot_death);
                    self.rec.record(
                        self.cg,
                        begin.0,
                        lane,
                        Event::FaultInjected {
                            kind: "slot_death",
                            id: token,
                        },
                    );
                }
                Some(SlotFault::Straggler { factor_milli }) => {
                    dur = SimDur(dur.0.saturating_mul(u64::from(factor_milli)).div_ceil(1000));
                    FaultStats::bump(&plan.stats.injected_straggler);
                    self.rec.record(
                        self.cg,
                        begin.0,
                        lane,
                        Event::FaultInjected {
                            kind: "straggler",
                            id: token,
                        },
                    );
                }
                None => {}
            }
        }

        let done_at = if dead {
            NEVER
        } else {
            match machine.offload_kernel_keyed(self.cg, start, dur, token, key) {
                Some(end) => end,
                // DMA error: observably identical to a slot death.
                None => NEVER,
            }
        };
        let h = KernelHandle {
            token,
            slot,
            done_at,
        };
        self.slots[slot] = Some(h);
        if done_at != NEVER {
            // Flops only for kernels that actually ran.
            let counters = &mut machine.cg_mut(self.cg).counters;
            counters.add(FlopCategory::Exp, timing.exp_flops);
            counters.add(FlopCategory::Stencil, timing.flops - timing.exp_flops);
            // DMA-in at kernel begin, DMA-out at completion: the CPE lane's
            // hardware window. (The scheduler wraps this with
            // OffloadStart/Done from the MPE's point of view.)
            self.rec.record(
                self.cg,
                begin.0,
                lane,
                Event::DmaIn {
                    bytes: timing.dma_bytes,
                },
            );
            self.rec.record(
                self.cg,
                done_at.0,
                lane,
                Event::DmaOut {
                    bytes: timing.dma_bytes,
                },
            );
        }
        if let Some(m) = self.rec.metrics() {
            m.offloads.inc();
        }
        h
    }

    /// Handle a `KernelDone` event: if the token matches an in-flight
    /// kernel, all its CPEs' `faaw`s are applied and that slot's flag
    /// becomes set. Returns whether the token matched.
    pub fn on_kernel_done(&mut self, token: u64) -> bool {
        for (slot, s) in self.slots.iter_mut().enumerate() {
            if let Some(h) = s {
                if h.token == token {
                    self.flags[slot].complete_all();
                    *s = None;
                    self.kernels_run += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Complete every in-flight kernel whose finish time is observable at
    /// `now` (the MPE read a set completion flag). Returns the completed
    /// tokens, earliest first. The corresponding `KernelDone` machine
    /// events, which may pop later, are then ignored by token mismatch.
    pub fn try_complete(&mut self, now: SimTime) -> Vec<u64> {
        let mut done: Vec<KernelHandle> = self
            .slots
            .iter()
            .flatten()
            .copied()
            .filter(|h| h.done_at <= now)
            .collect();
        done.sort_by_key(|h| (h.done_at, h.token));
        for h in &done {
            assert!(self.on_kernel_done(h.token));
        }
        done.into_iter().map(|h| h.token).collect()
    }

    /// Spin duration from `now` until the *earliest* in-flight kernel
    /// completes (synchronous mode busy-waits with one kernel in flight).
    pub fn spin_time(&self, now: SimTime) -> SimDur {
        self.inflight()
            .first()
            .map(|h| h.done_at.since(now))
            .unwrap_or(SimDur::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_sim::{Machine, MachineConfig, MachineEvent};

    fn timing(us: f64) -> KernelTiming {
        KernelTiming {
            duration: SimDur::from_us(us),
            flops: 1000,
            exp_flops: 600,
            dma_bytes: 4096,
            tiles: 2,
            per_cpe: vec![SimDur::from_us(us)],
        }
    }

    #[test]
    fn spawn_completes_via_event() {
        let mut m = Machine::new(MachineConfig::sw26010(), 1);
        let mut g = AthreadGroup::new(0, 64);
        let h = g.spawn(&mut m.ctx(0), SimTime::ZERO, &timing(100.0), false);
        assert!(g.all_busy());
        assert!(!g.flag(0).is_set());
        assert_eq!(h.done_at, SimTime::ZERO + SimDur::from_us(100.0));
        let (t, ev) = m.pop().unwrap();
        assert_eq!(t, h.done_at);
        match ev {
            MachineEvent::KernelDone { cg, token } => {
                assert_eq!(cg, 0);
                assert!(g.on_kernel_done(token));
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert!(!g.any_busy());
        assert!(g.flag(0).is_set());
        assert_eq!(g.kernels_run(), 1);
    }

    #[test]
    fn spin_mode_inflates_duration() {
        let mut m = Machine::new(MachineConfig::sw26010(), 1);
        let slow =
            AthreadGroup::new(0, 64).spawn(&mut m.ctx(0), SimTime::ZERO, &timing(100.0), true);
        let mut m2 = Machine::new(MachineConfig::sw26010(), 1);
        let fast =
            AthreadGroup::new(0, 64).spawn(&mut m2.ctx(0), SimTime::ZERO, &timing(100.0), false);
        let c = MachineConfig::sw26010().sync_spin_slowdown;
        let ratio = slow.done_at.since(SimTime::ZERO).as_secs_f64()
            / fast.done_at.since(SimTime::ZERO).as_secs_f64();
        assert!((ratio - (1.0 + c)).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn flops_credited_to_counters() {
        let mut m = Machine::new(MachineConfig::sw26010(), 1);
        let mut g = AthreadGroup::new(0, 64);
        g.spawn(&mut m.ctx(0), SimTime::ZERO, &timing(1.0), false);
        let f = m.cg(0).counters.clone();
        assert_eq!(f.total(), 1000);
        assert_eq!(f.get(FlopCategory::Exp), 600);
    }

    #[test]
    fn stale_tokens_are_ignored() {
        let mut m = Machine::new(MachineConfig::sw26010(), 1);
        let mut g = AthreadGroup::new(0, 64);
        let h = g.spawn(&mut m.ctx(0), SimTime::ZERO, &timing(1.0), false);
        assert!(!g.on_kernel_done(h.token + 5));
        assert!(g.any_busy());
    }

    #[test]
    #[should_panic(expected = "slots busy")]
    fn overfilling_slots_panics() {
        let mut m = Machine::new(MachineConfig::sw26010(), 1);
        let mut g = AthreadGroup::new(0, 64);
        g.spawn(&mut m.ctx(0), SimTime::ZERO, &timing(1.0), false);
        g.spawn(&mut m.ctx(0), SimTime::ZERO, &timing(1.0), false);
    }

    #[test]
    fn groups_give_independent_slots() {
        let mut m = Machine::new(MachineConfig::sw26010(), 1);
        let mut g = AthreadGroup::with_groups(0, 64, 4);
        assert_eq!(g.cpes_per_group(), 16);
        let h0 = g.spawn(&mut m.ctx(0), SimTime::ZERO, &timing(100.0), false);
        let h1 = g.spawn(&mut m.ctx(0), SimTime::ZERO, &timing(50.0), false);
        assert_ne!(h0.slot, h1.slot);
        assert!(!g.all_busy(), "two of four slots used");
        assert!(g.any_busy());
        // Both run concurrently: the shorter one finishes first.
        assert!(h1.done_at < h0.done_at);
        let done = g.try_complete(h1.done_at);
        assert_eq!(done, vec![h1.token]);
        assert_eq!(g.free_slot(), Some(h1.slot), "freed slot is reusable");
        let done = g.try_complete(h0.done_at);
        assert_eq!(done, vec![h0.token]);
        assert_eq!(g.kernels_run(), 2);
    }

    #[test]
    fn try_complete_returns_all_finished_in_order() {
        let mut m = Machine::new(MachineConfig::sw26010(), 1);
        let mut g = AthreadGroup::with_groups(0, 64, 2);
        let h0 = g.spawn(&mut m.ctx(0), SimTime::ZERO, &timing(80.0), false);
        let h1 = g.spawn(&mut m.ctx(0), SimTime::ZERO, &timing(30.0), false);
        let done = g.try_complete(h0.done_at);
        assert_eq!(done, vec![h1.token, h0.token], "earliest first");
        assert!(!g.any_busy());
    }

    #[test]
    #[should_panic(expected = "equal groups")]
    fn uneven_groups_rejected() {
        AthreadGroup::with_groups(0, 64, 3);
    }

    #[test]
    fn dead_slot_never_completes_until_aborted() {
        use sw_resilience::{FaultConfig, FaultPlan, OffloadKey};
        let mut m = Machine::new(MachineConfig::sw26010(), 1);
        let mut g = AthreadGroup::with_groups(0, 64, 2);
        let plan = Arc::new(FaultPlan::new(FaultConfig {
            slot_death_ppm: 999_999,
            guarantee_recovery: false,
            ..FaultConfig::none(11)
        }));
        g.set_fault_plan(plan.clone());
        let key = OffloadKey {
            rank: 0,
            patch: 1,
            stage: 0,
            step: 0,
            attempt: 0,
        };
        let h = g.spawn_keyed(
            &mut m.ctx(0),
            SimTime::ZERO,
            &timing(10.0),
            false,
            Some(&key),
        );
        assert_eq!(h.done_at, NEVER);
        assert!(m.pop().is_none(), "no KernelDone for a dead kernel");
        assert!(g.try_complete(SimTime(u64::MAX - 1)).is_empty());
        assert!(!g.flag(h.slot).is_set());
        assert_eq!(m.cg(0).counters.total(), 0, "dead kernels credit no flops");
        assert_eq!(plan.stats.snapshot().injected_slot_death, 1);
        // The MPE detector reaps it and blacklists the slot.
        assert_eq!(g.abort(h.token), Some(h.slot));
        assert!(g.blacklist(h.slot));
        assert_eq!(g.healthy_slots(), 1);
        assert!(g.is_blacklisted(h.slot));
        assert_ne!(g.free_slot(), Some(h.slot), "blacklisted slot not reused");
        // Last healthy slot cannot be blacklisted.
        let other = g.free_slot().unwrap();
        assert!(!g.blacklist(other), "never blacklist the last slot");
        assert_eq!(g.healthy_slots(), 1);
    }

    #[test]
    fn straggler_stretches_duration_deterministically() {
        use sw_resilience::{FaultConfig, FaultPlan, OffloadKey};
        let plan = Arc::new(FaultPlan::new(FaultConfig {
            straggler_ppm: 999_999,
            straggler_factor_milli: 4000,
            ..FaultConfig::none(2)
        }));
        let mut m = Machine::new(MachineConfig::sw26010(), 1);
        let mut g = AthreadGroup::new(0, 64);
        g.set_fault_plan(plan.clone());
        let key = OffloadKey {
            rank: 0,
            patch: 0,
            stage: 0,
            step: 0,
            attempt: 0,
        };
        let h = g.spawn_keyed(
            &mut m.ctx(0),
            SimTime::ZERO,
            &timing(100.0),
            false,
            Some(&key),
        );
        assert_eq!(h.done_at, SimTime::ZERO + SimDur::from_us(400.0));
        assert_eq!(plan.stats.snapshot().injected_straggler, 1);
        // Stragglers do complete (recoverable by waiting or by abort+retry).
        assert_eq!(g.try_complete(h.done_at), vec![h.token]);
    }

    #[test]
    fn unkeyed_spawns_are_exempt_from_faults() {
        use sw_resilience::{FaultConfig, FaultPlan};
        let mut m = Machine::new(MachineConfig::sw26010(), 1);
        let mut g = AthreadGroup::new(0, 64);
        g.set_fault_plan(Arc::new(FaultPlan::new(FaultConfig {
            slot_death_ppm: 999_999,
            straggler_ppm: 999_999,
            guarantee_recovery: false,
            ..FaultConfig::none(5)
        })));
        let h = g.spawn(&mut m.ctx(0), SimTime::ZERO, &timing(100.0), false);
        assert_eq!(h.done_at, SimTime::ZERO + SimDur::from_us(100.0));
    }

    #[test]
    fn spin_time_measures_remaining() {
        let mut m = Machine::new(MachineConfig::sw26010(), 1);
        let mut g = AthreadGroup::new(0, 64);
        let h = g.spawn(&mut m.ctx(0), SimTime::ZERO, &timing(100.0), false);
        assert_eq!(g.spin_time(SimTime::ZERO), SimDur::from_us(100.0));
        assert_eq!(
            g.spin_time(SimTime::ZERO + SimDur::from_us(40.0)),
            SimDur::from_us(60.0)
        );
        assert_eq!(g.spin_time(h.done_at), SimDur::ZERO);
    }
}
