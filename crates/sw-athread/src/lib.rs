//! An `athread`-like offload layer for the simulated SW26010.
//!
//! The real Sunway `athread` library binds one lightweight thread to each
//! CPE, and provides DMA transfer (`athread_get`/`athread_put`) between main
//! memory and the 64 KB per-CPE LDM plus an atomic `faaw` for completion
//! flags (paper §IV-B). This crate reproduces that interface over the
//! `sw-sim` machine model:
//!
//! * [`tile`] — tile the patch to the LDM budget and assign tiles to CPEs by
//!   z-partition (paper §V-B, §V-D, §VI-A);
//! * [`cost`] — closed-form kernel timing (DMA-in + compute + DMA-out per
//!   tile, serial per CPE, max over CPEs);
//! * [`exec`] — *functional* execution of the same tile schedule with real
//!   data through a capacity-enforced LDM;
//! * [`flag`] — the `faaw`-incremented main-memory completion flag;
//! * [`group`] — the offload facade (`spawn` + completion event handling).

#![warn(missing_docs)]
pub mod cost;
pub mod detailed;
pub mod exec;
pub mod flag;
pub mod group;
pub mod tile;

pub use cost::{
    kernel_timing, tile_time, with_spin_penalty, KernelRate, KernelTiming, TileCostModel,
    TransferMode,
};
pub use detailed::detailed_kernel_duration;
pub use exec::{
    idx3, run_patch_functional, run_patch_functional_with, serial_fallback_count, CpeTileKernel,
    ExecPolicy, Field3, Field3Mut, TileCtx,
};
pub use flag::CompletionFlag;
pub use group::{AthreadGroup, KernelHandle, NEVER};
pub use tile::{
    assign_tiles, cells, choose_tile_shape, is_exact_partition, tiles_of, validate_patch_geometry,
    Dims3, GeomError, InOutFootprint, LdmFootprint, TileDesc, MAX_AXIS_CELLS, MAX_VOLUME_CELLS,
};
