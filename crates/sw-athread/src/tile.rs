//! Tiling a patch for the per-CPE scratchpad, and assigning tiles to CPEs.
//!
//! When a kernel is scheduled on the CPEs, the patch is subdivided into
//! "tiles" like those in TiDA, sized so the kernel's working memory fits in
//! the 64 KB LDM; tiles are then assigned evenly to the CPEs by naturally
//! partitioning the blocks in the z dimension (paper §V-B, §V-D).

/// Extent of a 3-D box of cells, x-fastest.
pub type Dims3 = (usize, usize, usize);

/// Number of cells in an extent.
#[inline]
pub fn cells(d: Dims3) -> u64 {
    d.0 as u64 * d.1 as u64 * d.2 as u64
}

/// Largest per-axis cell extent the tile machinery accepts, *including*
/// ghost layers. With every axis below 2^20 the signed index arithmetic of
/// `TileCtx::in_at` (`x as i64 + g + dx`) and the global-cell sums of
/// `TileCtx::global_cell` stay far from `i64` overflow, and any pairwise
/// product of two axes fits comfortably in `usize`.
pub const MAX_AXIS_CELLS: usize = 1 << 20;

/// Largest ghosted volume (in cells) accepted. `idx3` computes
/// `x + d0*(y + d1*z)` in `usize`; volumes below 2^40 keep that (and the
/// `* 8`-byte staging sizes) orders of magnitude away from wraparound.
pub const MAX_VOLUME_CELLS: u64 = 1 << 40;

/// Typed rejection of a grid/tile geometry whose flat indexing could wrap.
///
/// Before this check existed, the guards in [`crate::idx3`] and
/// `TileCtx::in_at` were `debug_assert!`-only: a release build handed a
/// degenerate extent would wrap its index arithmetic instead of failing.
/// Constructors now reject such geometries up front with this error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeomError {
    /// An axis extent is zero — the box is empty.
    EmptyAxis {
        /// Axis index (0 = x).
        axis: usize,
        /// The offending (un-ghosted) extent.
        dims: Dims3,
    },
    /// An axis extent, including ghosts, exceeds [`MAX_AXIS_CELLS`].
    AxisTooLarge {
        /// Axis index (0 = x).
        axis: usize,
        /// Ghosted extent of that axis.
        extent: u64,
        /// Ghost layers included in `extent`.
        ghost: usize,
    },
    /// The ghosted volume exceeds [`MAX_VOLUME_CELLS`] (or overflows
    /// entirely): flat indices and byte sizes could wrap.
    VolumeTooLarge {
        /// The (un-ghosted) extent.
        dims: Dims3,
        /// Ghost layers per side.
        ghost: usize,
    },
}

impl core::fmt::Display for GeomError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            GeomError::EmptyAxis { axis, dims } => {
                write!(f, "axis {axis} of extent {dims:?} is empty")
            }
            GeomError::AxisTooLarge {
                axis,
                extent,
                ghost,
            } => write!(
                f,
                "axis {axis} spans {extent} cells with {ghost} ghost layer(s), \
                 above the safe bound {MAX_AXIS_CELLS} — index arithmetic \
                 could wrap"
            ),
            GeomError::VolumeTooLarge { dims, ghost } => write!(
                f,
                "ghosted volume of {dims:?} with {ghost} ghost layer(s) \
                 exceeds the safe bound {MAX_VOLUME_CELLS} cells — flat \
                 indices could wrap"
            ),
        }
    }
}

impl std::error::Error for GeomError {}

/// Validate that a patch of `dims` cells with `ghost` ghost layers per side
/// can be tiled, staged, and indexed without any integer wraparound:
/// every axis is non-empty and, ghosted, stays below [`MAX_AXIS_CELLS`];
/// the ghosted volume stays below [`MAX_VOLUME_CELLS`].
///
/// `Level`/tile-plan constructors call this so the `debug_assert`-only
/// guards in the hot index path ([`crate::idx3`], `TileCtx::in_at`) are
/// backed by a release-mode rejection at construction time.
pub fn validate_patch_geometry(dims: Dims3, ghost: usize) -> Result<(), GeomError> {
    let axes = [dims.0, dims.1, dims.2];
    // Saturating on purpose: absurd inputs (usize::MAX ghosts) must land in
    // the rejection branch, not overflow the checker itself.
    let ghosted_axis = |d: usize| (d as u64).saturating_add((ghost as u64).saturating_mul(2));
    for (axis, &d) in axes.iter().enumerate() {
        if d == 0 {
            return Err(GeomError::EmptyAxis { axis, dims });
        }
        let ghosted = ghosted_axis(d);
        if ghosted > MAX_AXIS_CELLS as u64 {
            return Err(GeomError::AxisTooLarge {
                axis,
                extent: ghosted,
                ghost,
            });
        }
    }
    let ghosted_vol = axes
        .iter()
        .try_fold(1u64, |acc, &d| acc.checked_mul(ghosted_axis(d)))
        .filter(|&v| v <= MAX_VOLUME_CELLS);
    if ghosted_vol.is_none() {
        return Err(GeomError::VolumeTooLarge { dims, ghost });
    }
    Ok(())
}

/// One tile of a patch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileDesc {
    /// Offset of the tile within the patch, in cells.
    pub origin: Dims3,
    /// Tile extent in cells (edge tiles may be ragged).
    pub dims: Dims3,
}

impl TileDesc {
    /// Cells in this tile.
    pub fn cells(&self) -> u64 {
        cells(self.dims)
    }

    /// Extent of the tile including `g` ghost layers on every side.
    pub fn ghosted_dims(&self, g: usize) -> Dims3 {
        (
            self.dims.0 + 2 * g,
            self.dims.1 + 2 * g,
            self.dims.2 + 2 * g,
        )
    }
}

/// Enumerate the tiles of a `patch`-sized box cut by `tile` (ragged at the
/// high edges), ordered z-slab-major (z outermost, then y, then x) so that a
/// contiguous split of the list is a z-partition.
pub fn tiles_of(patch: Dims3, tile: Dims3) -> Vec<TileDesc> {
    assert!(
        tile.0 >= 1 && tile.1 >= 1 && tile.2 >= 1,
        "degenerate tile {tile:?}"
    );
    let mut out = Vec::new();
    let mut z = 0;
    while z < patch.2 {
        let dz = tile.2.min(patch.2 - z);
        let mut y = 0;
        while y < patch.1 {
            let dy = tile.1.min(patch.1 - y);
            let mut x = 0;
            while x < patch.0 {
                let dx = tile.0.min(patch.0 - x);
                out.push(TileDesc {
                    origin: (x, y, z),
                    dims: (dx, dy, dz),
                });
                x += dx;
            }
            y += dy;
        }
        z += dz;
    }
    out
}

/// Assign tiles to `cpes` CPEs: contiguous chunks of the z-slab-major tile
/// list, sizes balanced to within one tile. With the paper's geometry
/// (z-tiles = CPEs) each CPE receives exactly one z-slab of tiles.
pub fn assign_tiles(tiles: &[TileDesc], cpes: usize) -> Vec<Vec<TileDesc>> {
    assert!(cpes >= 1);
    let n = tiles.len();
    let base = n / cpes;
    let extra = n % cpes;
    let mut out = Vec::with_capacity(cpes);
    let mut idx = 0;
    for c in 0..cpes {
        let take = base + usize::from(c < extra);
        out.push(tiles[idx..idx + take].to_vec());
        idx += take;
    }
    debug_assert_eq!(idx, n);
    out
}

/// Verify that an assignment of tiles to CPEs is an **exact partition** of
/// the patch: every cell covered exactly once, every tile in bounds.
///
/// This is the same property PR 2's static verifier proves offline for
/// compiled tile plans; the resilience layer re-checks it *online* whenever
/// it repartitions a patch over surviving CPE slots after a blacklist, so a
/// recovery path can never silently compute a torn field — if the check
/// fails the caller degrades to serial MPE execution instead.
pub fn is_exact_partition(patch: Dims3, assignment: &[Vec<TileDesc>]) -> bool {
    let total = cells(patch) as usize;
    let mut covered = vec![false; total];
    let mut n = 0usize;
    for list in assignment {
        for t in list {
            let (ox, oy, oz) = t.origin;
            let (dx, dy, dz) = t.dims;
            if dx == 0 || dy == 0 || dz == 0 {
                return false;
            }
            if ox + dx > patch.0 || oy + dy > patch.1 || oz + dz > patch.2 {
                return false; // out of bounds
            }
            for z in oz..oz + dz {
                for y in oy..oy + dy {
                    for x in ox..ox + dx {
                        let idx = (z * patch.1 + y) * patch.0 + x;
                        if covered[idx] {
                            return false; // overlap
                        }
                        covered[idx] = true;
                        n += 1;
                    }
                }
            }
        }
    }
    n == total
}

/// Working-set model used to size tiles: bytes of LDM a kernel needs for a
/// tile of the given dims.
pub trait LdmFootprint {
    /// Ghost layers the kernel requires.
    fn ghost(&self) -> usize;
    /// Bytes of LDM working memory for a tile of `dims`.
    fn ldm_bytes(&self, dims: Dims3) -> usize;
}

/// Standard one-in/one-out footprint: a ghosted input copy plus an interior
/// output copy of `f64`s (the Burgers kernel's shape, paper §VI-A).
#[derive(Clone, Copy, Debug)]
pub struct InOutFootprint {
    /// Ghost layers of the stencil.
    pub ghost: usize,
}

impl LdmFootprint for InOutFootprint {
    fn ghost(&self) -> usize {
        self.ghost
    }
    fn ldm_bytes(&self, dims: Dims3) -> usize {
        let g = self.ghost;
        let ghosted = (dims.0 + 2 * g) * (dims.1 + 2 * g) * (dims.2 + 2 * g);
        let interior = dims.0 * dims.1 * dims.2;
        (ghosted + interior) * 8
    }
}

/// Choose the tile shape for a patch: among power-of-two candidate shapes
/// that divide the patch and fit the LDM, prefer shapes that produce at
/// least `target_tiles` tiles (so every CPE has work — the paper's 16x16x8
/// tile gives the smallest 16x16x512 patch exactly 64 z-slabs for the 64
/// CPEs), then maximize cells per tile, then minimize ghost overhead, then
/// minimize the z extent (more z-slabs), then maximize the x extent (longer
/// SIMD rows).
///
/// For the paper's Burgers working set and patch sizes this selects 16x16x8,
/// the shape chosen in §VI-A:
///
/// ```
/// use sw_athread::{choose_tile_shape, InOutFootprint};
///
/// let fp = InOutFootprint { ghost: 1 };
/// let tile = choose_tile_shape((16, 16, 512), &fp, 64 * 1024, 64).unwrap();
/// assert_eq!(tile, (16, 16, 8));
/// ```
pub fn choose_tile_shape(
    patch: Dims3,
    fp: &impl LdmFootprint,
    ldm_bytes: usize,
    target_tiles: usize,
) -> Option<Dims3> {
    let candidates = |dim: usize| -> Vec<usize> {
        let mut v = Vec::new();
        let mut c = 1;
        while c <= dim && c <= 256 {
            if dim.is_multiple_of(c) {
                v.push(c);
            }
            c *= 2;
        }
        v
    };
    // (enough-tiles, cells, -ghosted, -tz, tx): lexicographically maximized.
    type Key = (
        bool,
        u64,
        std::cmp::Reverse<usize>,
        std::cmp::Reverse<usize>,
        usize,
    );
    let mut best: Option<(Dims3, Key)> = None;
    let patch_cells = cells(patch);
    for &tx in &candidates(patch.0) {
        for &ty in &candidates(patch.1) {
            for &tz in &candidates(patch.2) {
                let dims = (tx, ty, tz);
                if fp.ldm_bytes(dims) > ldm_bytes {
                    continue;
                }
                let c = cells(dims);
                let n_tiles = patch_cells / c;
                let g = fp.ghost();
                let ghosted = (tx + 2 * g) * (ty + 2 * g) * (tz + 2 * g);
                let key: Key = (
                    n_tiles >= target_tiles as u64,
                    c,
                    std::cmp::Reverse(ghosted),
                    std::cmp::Reverse(tz),
                    tx,
                );
                if best.as_ref().is_none_or(|(_, bk)| key > *bk) {
                    best = Some((dims, key));
                }
            }
        }
    }
    best.map(|(d, _)| d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_cover_patch_exactly() {
        let patch = (16, 16, 512);
        let tiles = tiles_of(patch, (16, 16, 8));
        assert_eq!(tiles.len(), 64);
        let total: u64 = tiles.iter().map(|t| t.cells()).sum();
        assert_eq!(total, cells(patch));
    }

    #[test]
    fn exact_partition_accepts_any_cpe_count() {
        let patch = (10, 10, 20);
        let tiles = tiles_of(patch, (4, 4, 4));
        // Repartitioning over surviving slots: any split is still exact.
        for cpes in [1usize, 3, 7, 27, 64] {
            let asg = assign_tiles(&tiles, cpes);
            assert!(is_exact_partition(patch, &asg), "cpes={cpes}");
        }
    }

    #[test]
    fn exact_partition_rejects_gaps_overlaps_and_oob() {
        let patch = (8, 8, 8);
        let tiles = tiles_of(patch, (4, 4, 4));
        let mut asg = assign_tiles(&tiles, 2);
        // Gap: drop one tile.
        let dropped = asg[0].pop().unwrap();
        assert!(!is_exact_partition(patch, &asg));
        // Overlap: restore it twice.
        asg[0].push(dropped);
        asg[1].push(dropped);
        assert!(!is_exact_partition(patch, &asg));
        asg[1].pop();
        assert!(is_exact_partition(patch, &asg));
        // Out of bounds.
        asg[1].push(TileDesc {
            origin: (6, 6, 6),
            dims: (4, 4, 4),
        });
        assert!(!is_exact_partition(patch, &asg));
    }

    #[test]
    fn ragged_edges() {
        let tiles = tiles_of((10, 10, 10), (4, 4, 4));
        // 3 x 3 x 3 tiles, edges of size 2.
        assert_eq!(tiles.len(), 27);
        let total: u64 = tiles.iter().map(|t| t.cells()).sum();
        assert_eq!(total, 1000);
        assert_eq!(tiles.last().unwrap().dims, (2, 2, 2));
        assert_eq!(tiles.last().unwrap().origin, (8, 8, 8));
    }

    #[test]
    fn z_slab_major_order() {
        let tiles = tiles_of((32, 32, 16), (16, 16, 8));
        // First four tiles are the z=0 slab.
        assert!(tiles[..4].iter().all(|t| t.origin.2 == 0));
        assert!(tiles[4..].iter().all(|t| t.origin.2 == 8));
    }

    #[test]
    fn paper_geometry_gives_one_slab_per_cpe() {
        // 128x128x512 patch, 16x16x8 tiles: 8*8*64 = 4096 tiles, 64 CPEs.
        let tiles = tiles_of((128, 128, 512), (16, 16, 8));
        let assign = assign_tiles(&tiles, 64);
        assert_eq!(assign.len(), 64);
        for (cpe, ts) in assign.iter().enumerate() {
            assert_eq!(ts.len(), 64);
            // Every tile of CPE i sits in z-slab i.
            assert!(ts.iter().all(|t| t.origin.2 == cpe * 8), "cpe {cpe}");
        }
    }

    #[test]
    fn assignment_is_balanced_within_one() {
        let tiles = tiles_of((16, 16, 80), (16, 16, 8)); // 10 tiles
        let assign = assign_tiles(&tiles, 4);
        let sizes: Vec<_> = assign.iter().map(|a| a.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert_eq!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap(), 1);
        // Deterministic: first chunks get the extras.
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn chooses_paper_tile_shape() {
        let fp = InOutFootprint { ghost: 1 };
        let shape = choose_tile_shape((16, 16, 512), &fp, 64 * 1024, 64).unwrap();
        assert_eq!(shape, (16, 16, 8), "paper §VI-A tile for Burgers");
        // Bigger patches keep the same choice.
        let shape = choose_tile_shape((128, 128, 512), &fp, 64 * 1024, 64).unwrap();
        assert_eq!(shape, (16, 16, 8));
    }

    #[test]
    fn paper_tile_working_set_close_to_41_kb() {
        let fp = InOutFootprint { ghost: 1 };
        let b = fp.ldm_bytes((16, 16, 8));
        // Paper reports 41.3 KB; the in+out model gives ~41.3 KiB.
        assert!(b > 40_000 && b < 44_000, "{b}");
        assert!(b <= 64 * 1024);
    }

    #[test]
    fn tiny_ldm_forces_small_tiles_or_none() {
        let fp = InOutFootprint { ghost: 1 };
        let shape = choose_tile_shape((16, 16, 16), &fp, 2 * 1024, 1).unwrap();
        assert!(fp.ldm_bytes(shape) <= 2 * 1024);
        // Impossible budget yields None.
        assert_eq!(choose_tile_shape((16, 16, 16), &fp, 100, 1), None);
    }

    #[test]
    fn target_tiles_forces_parallel_decomposition() {
        // An 8x8x8 patch fits the LDM as one tile, but with 64 CPEs to feed
        // the chooser must cut it into >= 64 tiles.
        let fp = InOutFootprint { ghost: 1 };
        let one = choose_tile_shape((8, 8, 8), &fp, 64 * 1024, 1).unwrap();
        assert_eq!(one, (8, 8, 8));
        let many = choose_tile_shape((8, 8, 8), &fp, 64 * 1024, 64).unwrap();
        let n_tiles = 512 / cells(many);
        assert!(n_tiles >= 64, "shape {many:?} gives {n_tiles} tiles");
        // When the target is unreachable the chooser falls back to the
        // cells-maximizing shape (never None just because of the target).
        let t = choose_tile_shape((2, 2, 2), &fp, 64 * 1024, 64).unwrap();
        assert_eq!(t, (2, 2, 2));
    }

    #[test]
    fn geometry_validation_accepts_paper_and_degenerate_but_sane_shapes() {
        for dims in [
            (16, 16, 512),
            (128, 128, 512),
            (1, 1, 1),
            (7, 13, 129), // prime / non-divisible
            (1, 1, MAX_AXIS_CELLS - 2),
        ] {
            assert_eq!(validate_patch_geometry(dims, 1), Ok(()), "{dims:?}");
        }
        // Wide ghosts on a tiny patch are fine as long as bounds hold.
        assert_eq!(validate_patch_geometry((1, 1, 1), 4), Ok(()));
    }

    #[test]
    fn geometry_validation_rejects_wrap_prone_shapes() {
        assert_eq!(
            validate_patch_geometry((0, 4, 4), 1),
            Err(GeomError::EmptyAxis {
                axis: 0,
                dims: (0, 4, 4)
            })
        );
        // Axis that wraps once ghosted.
        assert!(matches!(
            validate_patch_geometry((MAX_AXIS_CELLS, 4, 4), 1),
            Err(GeomError::AxisTooLarge { axis: 0, .. })
        ));
        // Per-axis fine, volume out of range.
        let a = 1 << 15;
        assert!(matches!(
            validate_patch_geometry((a, a, a), 1),
            Err(GeomError::VolumeTooLarge { .. })
        ));
        // usize::MAX-adjacent extents must not overflow the checker itself.
        assert!(validate_patch_geometry((usize::MAX, usize::MAX, usize::MAX), 1).is_err());
        assert!(validate_patch_geometry((usize::MAX, 1, 1), usize::MAX / 2).is_err());
    }

    #[test]
    fn ghosted_dims() {
        let t = TileDesc {
            origin: (0, 0, 0),
            dims: (16, 16, 8),
        };
        assert_eq!(t.ghosted_dims(1), (18, 18, 10));
        assert_eq!(t.cells(), 2048);
    }
}
