//! Proof that the steady-state tile loop performs no per-tile heap
//! allocation: executing the same patch through 16 tiles or 64 tiles costs
//! the same number of allocations, because each worker's `TilePool` stages
//! every tile through buffers sized once to the largest ghosted tile.
//!
//! Uses a counting `#[global_allocator]`, so this file holds exactly one
//! test binary's worth of tests and nothing else runs concurrently with the
//! measurements.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use sw_athread::{
    assign_tiles, run_patch_functional_with, tiles_of, CpeTileKernel, Dims3, ExecPolicy, Field3,
    Field3Mut, TileCtx,
};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed counter bump — the
// layout/ownership contracts of `GlobalAlloc` are delegated unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; the caller upholds `alloc`'s contract.
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` came from the matching `alloc` above, which
        // returned a `System` allocation.
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; the caller upholds `realloc`'s contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation count of `f` on this thread's steady state.
fn allocs_of<F: FnMut()>(mut f: F) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Trivial ghost-1 kernel; the test measures the executor, not the math.
struct Smooth;

impl CpeTileKernel for Smooth {
    fn ghost(&self) -> usize {
        1
    }
    fn compute(&self, ctx: &mut TileCtx<'_>) {
        let d = ctx.tile.dims;
        for z in 0..d.2 {
            for y in 0..d.1 {
                for x in 0..d.0 {
                    let v = ctx.in_at(x, y, z, 0, 0, 0) + 0.5 * ctx.in_at(x, y, z, 1, 0, 0);
                    ctx.out_at(x, y, z, v);
                }
            }
        }
    }
}

/// Execute a pre-built tile plan: this (not plan construction, which is
/// cached per kernel in the scheduler) is the steady-state path measured.
fn run_once(
    patch: Dims3,
    assignment: &[Vec<sw_athread::TileDesc>],
    policy: ExecPolicy,
    input: &[f64],
    out: &mut Vec<f64>,
) {
    let gdims = (patch.0 + 2, patch.1 + 2, patch.2 + 2);
    run_patch_functional_with(
        policy,
        &Smooth,
        Field3 {
            data: input,
            dims: gdims,
        },
        &mut Field3Mut {
            data: out,
            dims: patch,
        },
        (0, 0, 0),
        assignment,
        64 * 1024,
        &[],
    )
    .expect("working set fits the LDM");
}

#[test]
fn tile_loop_is_zero_alloc_in_steady_state() {
    let patch: Dims3 = (32, 32, 32);
    let gdims = (patch.0 + 2, patch.1 + 2, patch.2 + 2);
    let input: Vec<f64> = (0..gdims.0 * gdims.1 * gdims.2)
        .map(|i| i as f64 * 1e-4)
        .collect();
    let mut out = vec![0.0; patch.0 * patch.1 * patch.2];
    // Pre-built plans, as the scheduler's per-kernel cache holds them.
    let coarse_plan = assign_tiles(&tiles_of(patch, (16, 16, 8)), 64); // 16 tiles
    let fine_plan = assign_tiles(&tiles_of(patch, (8, 8, 8)), 64); // 64 tiles

    // Warm up both shapes so lazy one-time allocations don't skew the count.
    run_once(patch, &coarse_plan, ExecPolicy::Serial, &input, &mut out);
    run_once(patch, &fine_plan, ExecPolicy::Serial, &input, &mut out);

    // Serial: 16 tiles vs 64 tiles over the same patch must allocate exactly
    // the same number of times. One `TilePool` (allocator + two staging
    // buffers) per call; nothing inside the per-tile loop touches the heap.
    let coarse = allocs_of(|| run_once(patch, &coarse_plan, ExecPolicy::Serial, &input, &mut out));
    let fine = allocs_of(|| run_once(patch, &fine_plan, ExecPolicy::Serial, &input, &mut out));
    assert_eq!(
        coarse, fine,
        "16-tile run allocated {coarse} times but 64-tile run allocated {fine}: \
         the tile loop is allocating per tile"
    );

    // Parallel: allocations scale with workers (thread spawn, pool per
    // worker), never with tile count. 48 extra tiles must not cost anywhere
    // near even one extra allocation each.
    let policy = ExecPolicy::Parallel { threads: 2 };
    run_once(patch, &coarse_plan, policy, &input, &mut out);
    run_once(patch, &fine_plan, policy, &input, &mut out);
    let coarse_p = allocs_of(|| run_once(patch, &coarse_plan, policy, &input, &mut out));
    let fine_p = allocs_of(|| run_once(patch, &fine_plan, policy, &input, &mut out));
    let delta = fine_p.abs_diff(coarse_p);
    assert!(
        delta < 16,
        "64-tile parallel run allocated {fine_p} vs {coarse_p} for 16 tiles \
         (delta {delta}): allocations must not scale with tile count"
    );
}
