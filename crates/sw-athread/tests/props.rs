//! Property tests of tiling, assignment, cost, and the functional executor.

use proptest::prelude::*;
use sw_athread::{
    assign_tiles, cells, choose_tile_shape, kernel_timing, run_patch_functional,
    run_patch_functional_with, tiles_of, CpeTileKernel, Dims3, ExecPolicy, Field3, Field3Mut,
    InOutFootprint, KernelRate, LdmFootprint, TileCostModel, TileCtx,
};
use sw_sim::MachineConfig;

/// ctx-driven 7-point stencil kernel shared by the executor properties.
struct Stencil7;

impl CpeTileKernel for Stencil7 {
    fn ghost(&self) -> usize {
        1
    }
    fn compute(&self, ctx: &mut TileCtx<'_>) {
        let d = ctx.tile.dims;
        for z in 0..d.2 {
            for y in 0..d.1 {
                for x in 0..d.0 {
                    let v = 2.0 * ctx.in_at(x, y, z, 0, 0, 0)
                        + ctx.in_at(x, y, z, -1, 0, 0)
                        + ctx.in_at(x, y, z, 1, 0, 0)
                        + ctx.in_at(x, y, z, 0, -1, 0)
                        + ctx.in_at(x, y, z, 0, 1, 0)
                        + ctx.in_at(x, y, z, 0, 0, -1)
                        + ctx.in_at(x, y, z, 0, 0, 1);
                    ctx.out_at(x, y, z, v);
                }
            }
        }
    }
}

fn dims3() -> impl Strategy<Value = Dims3> {
    (1usize..20, 1usize..20, 1usize..20)
}

proptest! {
    /// Tiles partition the patch: disjoint, covering, cell counts add up.
    #[test]
    fn tiles_partition_the_patch(patch in dims3(), tile in dims3()) {
        let tiles = tiles_of(patch, tile);
        let total: u64 = tiles.iter().map(|t| t.cells()).sum();
        prop_assert_eq!(total, cells(patch));
        // Disjointness + coverage via a hit-count grid.
        let mut hits = vec![0u8; (cells(patch)) as usize];
        for t in &tiles {
            for z in 0..t.dims.2 {
                for y in 0..t.dims.1 {
                    for x in 0..t.dims.0 {
                        let gx = t.origin.0 + x;
                        let gy = t.origin.1 + y;
                        let gz = t.origin.2 + z;
                        hits[gx + patch.0 * (gy + patch.1 * gz)] += 1;
                    }
                }
            }
        }
        prop_assert!(hits.iter().all(|&h| h == 1));
    }

    /// Assignment is a permutation-free split: preserves order and count,
    /// balanced to within one tile.
    #[test]
    fn assignment_preserves_and_balances(patch in dims3(), tile in dims3(), cpes in 1usize..70) {
        let tiles = tiles_of(patch, tile);
        let assign = assign_tiles(&tiles, cpes);
        prop_assert_eq!(assign.len(), cpes);
        let flat: Vec<_> = assign.iter().flatten().cloned().collect();
        prop_assert_eq!(flat, tiles.clone());
        let sizes: Vec<usize> = assign.iter().map(|a| a.len()).collect();
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(hi - lo <= 1);
    }

    /// The chosen tile shape always fits the scratchpad and divides into the
    /// patch's power-of-two factors.
    #[test]
    fn chosen_tiles_fit_the_ldm(
        px in 1usize..8, py in 1usize..8, pz in 1usize..8,
        ldm_kb in 4usize..65,
        target in 1usize..65,
    ) {
        let patch = (1 << px, 1 << py, 1 << pz);
        let fp = InOutFootprint { ghost: 1 };
        if let Some(shape) = choose_tile_shape(patch, &fp, ldm_kb * 1024, target) {
            prop_assert!(fp.ldm_bytes(shape) <= ldm_kb * 1024);
            prop_assert_eq!(patch.0 % shape.0, 0);
            prop_assert_eq!(patch.1 % shape.1, 0);
            prop_assert_eq!(patch.2 % shape.2, 0);
        } else {
            // Only a budget too small for even a 1x1x1 tile may fail.
            prop_assert!(fp.ldm_bytes((1, 1, 1)) > ldm_kb * 1024);
        }
    }

    /// Kernel timing invariants: duration is the max of per-CPE busy times;
    /// flops are assignment-independent.
    #[test]
    fn timing_is_max_of_cpes_and_flops_are_conserved(
        patch in dims3(),
        cpes in 1usize..16,
    ) {
        struct M;
        impl TileCostModel for M {
            fn ghost(&self) -> usize { 1 }
            fn flops(&self, d: Dims3) -> u64 { 100 * cells(d) }
            fn exp_flops(&self, d: Dims3) -> u64 { 60 * cells(d) }
            fn exp_calls(&self, d: Dims3) -> u64 { 2 * cells(d) }
        }
        let cfg = MachineConfig::sw26010();
        let tiles = tiles_of(patch, (4, 4, 4));
        let a1 = assign_tiles(&tiles, cpes);
        let a2 = assign_tiles(&tiles, 1);
        let t1 = kernel_timing(&cfg, &a1, &M, KernelRate::scalar(&cfg));
        let t2 = kernel_timing(&cfg, &a2, &M, KernelRate::scalar(&cfg));
        prop_assert_eq!(t1.flops, t2.flops);
        prop_assert_eq!(t1.flops, 100 * cells(patch));
        prop_assert_eq!(t1.duration, t1.per_cpe.iter().copied().max().unwrap());
        // More CPEs never makes the kernel slower.
        prop_assert!(t1.duration <= t2.duration);
    }

    /// The tiled functional executor computes exactly what an untiled
    /// reference computes, for any tile shape and CPE count.
    #[test]
    fn functional_executor_matches_reference(
        patch in (2usize..10, 2usize..10, 2usize..10),
        tile in dims3(),
        cpes in 1usize..9,
        seed in 0u64..1000,
    ) {
        /// ctx-driven kernel: out = center*2 + sum of face neighbors.
        struct K;
        impl CpeTileKernel for K {
            fn ghost(&self) -> usize { 1 }
            fn compute(&self, ctx: &mut TileCtx<'_>) {
                let d = ctx.tile.dims;
                for z in 0..d.2 {
                    for y in 0..d.1 {
                        for x in 0..d.0 {
                            let v = 2.0 * ctx.in_at(x, y, z, 0, 0, 0)
                                + ctx.in_at(x, y, z, -1, 0, 0)
                                + ctx.in_at(x, y, z, 1, 0, 0)
                                + ctx.in_at(x, y, z, 0, -1, 0)
                                + ctx.in_at(x, y, z, 0, 1, 0)
                                + ctx.in_at(x, y, z, 0, 0, -1)
                                + ctx.in_at(x, y, z, 0, 0, 1);
                            ctx.out_at(x, y, z, v);
                        }
                    }
                }
            }
        }
        let g = 1usize;
        let gdims = (patch.0 + 2 * g, patch.1 + 2 * g, patch.2 + 2 * g);
        let input: Vec<f64> = (0..gdims.0 * gdims.1 * gdims.2)
            .map(|i| ((i as u64).wrapping_mul(seed + 1) % 1000) as f64 * 0.001)
            .collect();
        let idx = |d: Dims3, x: usize, y: usize, z: usize| x + d.0 * (y + d.1 * z);
        // Untiled reference.
        let mut want = vec![0.0; patch.0 * patch.1 * patch.2];
        for z in 0..patch.2 {
            for y in 0..patch.1 {
                for x in 0..patch.0 {
                    let at = |dx: i64, dy: i64, dz: i64| {
                        input[idx(
                            gdims,
                            (x as i64 + 1 + dx) as usize,
                            (y as i64 + 1 + dy) as usize,
                            (z as i64 + 1 + dz) as usize,
                        )]
                    };
                    want[idx(patch, x, y, z)] = 2.0 * at(0, 0, 0)
                        + at(-1, 0, 0) + at(1, 0, 0)
                        + at(0, -1, 0) + at(0, 1, 0)
                        + at(0, 0, -1) + at(0, 0, 1);
                }
            }
        }
        let tiles = tiles_of(patch, tile);
        let assignment = assign_tiles(&tiles, cpes);
        let mut out = vec![0.0; patch.0 * patch.1 * patch.2];
        run_patch_functional(
            &K,
            Field3 { data: &input, dims: gdims },
            &mut Field3Mut { data: &mut out, dims: patch },
            (0, 0, 0),
            &assignment,
            usize::MAX,
            &[],
        )
        .unwrap();
        prop_assert_eq!(out, want);
    }

    /// The CPE worker pool is bit-identical to serial execution for every
    /// geometry, CPE count, and thread count {1, 2, 4, 8}.
    #[test]
    fn parallel_execution_is_bit_identical_to_serial(
        patch in (2usize..12, 2usize..12, 2usize..12),
        tile in dims3(),
        cpes in 1usize..70,
        threads_ix in 0usize..4,
        seed in 0u64..1000,
    ) {
        let threads = [1usize, 2, 4, 8][threads_ix];
        let g = 1usize;
        let gdims = (patch.0 + 2 * g, patch.1 + 2 * g, patch.2 + 2 * g);
        let input: Vec<f64> = (0..gdims.0 * gdims.1 * gdims.2)
            .map(|i| ((i as u64).wrapping_mul(seed + 1) % 1000) as f64 * 0.001)
            .collect();
        let tiles = tiles_of(patch, tile);
        let assignment = assign_tiles(&tiles, cpes);
        let n = patch.0 * patch.1 * patch.2;
        let run = |policy: ExecPolicy, out: &mut Vec<f64>| {
            run_patch_functional_with(
                policy,
                &Stencil7,
                Field3 { data: &input, dims: gdims },
                &mut Field3Mut { data: out, dims: patch },
                (3, 5, 7),
                &assignment,
                usize::MAX,
                &[],
            )
            .unwrap()
        };
        let mut serial = vec![0.0; n];
        let flops_serial = run(ExecPolicy::Serial, &mut serial);
        // NaN-filled so a cell the pool failed to write cannot pass by luck.
        let mut parallel = vec![f64::NAN; n];
        let flops_parallel = run(ExecPolicy::Parallel { threads }, &mut parallel);
        prop_assert_eq!(flops_serial, flops_parallel);
        let sbits: Vec<u64> = serial.iter().map(|v| v.to_bits()).collect();
        let pbits: Vec<u64> = parallel.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(sbits, pbits);
    }

    /// An LDM budget too small for the working set raises the same
    /// `LdmOverflow` under every policy: the pooled staging buffers must not
    /// change the accounting, and the error must cross the parallel scope.
    #[test]
    fn ldm_overflow_is_policy_independent(
        patch in (2usize..10, 2usize..10, 2usize..10),
        tile in dims3(),
        cpes in 1usize..16,
        budget_kb in 0usize..8,
    ) {
        let g = 1usize;
        let gdims = (patch.0 + 2 * g, patch.1 + 2 * g, patch.2 + 2 * g);
        let input: Vec<f64> = vec![1.0; gdims.0 * gdims.1 * gdims.2];
        let tiles = tiles_of(patch, tile);
        let assignment = assign_tiles(&tiles, cpes);
        let n = patch.0 * patch.1 * patch.2;
        let run = |policy: ExecPolicy| {
            let mut out = vec![0.0; n];
            run_patch_functional_with(
                policy,
                &Stencil7,
                Field3 { data: &input, dims: gdims },
                &mut Field3Mut { data: &mut out, dims: patch },
                (0, 0, 0),
                &assignment,
                budget_kb * 1024,
                &[],
            )
        };
        let serial = run(ExecPolicy::Serial);
        for threads in [2usize, 4, 8] {
            let parallel = run(ExecPolicy::Parallel { threads });
            prop_assert_eq!(serial.clone(), parallel);
        }
    }
}
