//! Flop-counting scalar and thread-local counter.
//!
//! The SW26010 exposes precise hardware counters for floating-point
//! operations (paper §VII-E); they count every add/sub/mul/div/neg as one
//! operation (divisions and square roots are counted as single operations
//! even though they take many cycles — the paper calls this out explicitly).
//! [`Cf64`] reproduces that accounting in software: every arithmetic operator
//! increments a thread-local counter by the number of lanes involved.

use core::cell::Cell;
use core::ops::{Add, Div, Mul, Neg, Sub};

use crate::Arith;

thread_local! {
    static FLOPS: Cell<u64> = const { Cell::new(0) };
}

/// Add `n` to the thread-local flop counter.
#[inline]
pub fn add_flops(n: u64) {
    FLOPS.with(|c| c.set(c.get() + n));
}

/// Read the thread-local flop counter.
#[inline]
pub fn read_flops() -> u64 {
    FLOPS.with(|c| c.get())
}

/// Reset the thread-local flop counter to zero.
#[inline]
pub fn reset_flops() {
    FLOPS.with(|c| c.set(0));
}

/// Run `f` and return `(result, flops executed by f on this thread)`.
///
/// Nested scopes compose: the inner scope's flops are also visible to the
/// outer scope, exactly like nested hardware-counter reads.
pub fn flops_counted<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = read_flops();
    let out = f();
    (out, read_flops() - before)
}

/// RAII flop-counting scope; reads the delta on [`FlopScope::finish`].
pub struct FlopScope {
    start: u64,
}

impl FlopScope {
    /// Open a scope at the current counter value.
    pub fn begin() -> Self {
        Self {
            start: read_flops(),
        }
    }

    /// Flops executed since [`FlopScope::begin`].
    pub fn finish(self) -> u64 {
        read_flops() - self.start
    }
}

/// A counting `f64`: behaves numerically exactly like `f64` but tallies every
/// arithmetic operation into the thread-local counter.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Cf64(pub f64);

impl Cf64 {
    /// Wrap a value without counting anything.
    #[inline]
    pub fn new(v: f64) -> Self {
        Cf64(v)
    }

    /// Unwrap the value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

macro_rules! counted_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for Cf64 {
            type Output = Cf64;
            #[inline]
            fn $method(self, rhs: Cf64) -> Cf64 {
                add_flops(1);
                Cf64(self.0 $op rhs.0)
            }
        }
    };
}

counted_binop!(Add, add, +);
counted_binop!(Sub, sub, -);
counted_binop!(Mul, mul, *);
counted_binop!(Div, div, /);

impl Neg for Cf64 {
    type Output = Cf64;
    #[inline]
    fn neg(self) -> Cf64 {
        add_flops(1);
        Cf64(-self.0)
    }
}

impl Arith for Cf64 {
    #[inline]
    fn lit(v: f64) -> Self {
        Cf64(v)
    }
    #[inline]
    fn value(self) -> f64 {
        self.0
    }
    #[inline]
    fn with_value(self, v: f64) -> Self {
        Cf64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binops_count_one_flop_each() {
        let ((), n) = flops_counted(|| {
            let a = Cf64::new(2.0);
            let b = Cf64::new(3.0);
            let _ = a + b;
            let _ = a - b;
            let _ = a * b;
            let _ = a / b;
            let _ = -a;
        });
        assert_eq!(n, 5);
    }

    #[test]
    fn construction_and_comparison_are_free() {
        let ((), n) = flops_counted(|| {
            let a = Cf64::new(1.0);
            let b = Cf64::new(2.0);
            assert!(a < b);
            let _ = a.get();
            let _ = a.with_value(9.0);
            let _ = Cf64::lit(4.0);
        });
        assert_eq!(n, 0);
    }

    #[test]
    fn counted_matches_plain_numerics() {
        let a = 1.25_f64;
        let b = -0.75_f64;
        let plain = (a + b) * a / b - a;
        let (counted, n) = flops_counted(|| {
            let (ca, cb) = (Cf64::new(a), Cf64::new(b));
            ((ca + cb) * ca / cb - ca).get()
        });
        assert_eq!(plain, counted);
        assert_eq!(n, 4);
    }

    #[test]
    fn scopes_nest() {
        let outer = FlopScope::begin();
        let a = Cf64::new(1.0);
        let _ = a + a;
        let ((), inner) = flops_counted(|| {
            let _ = a * a;
        });
        assert_eq!(inner, 1);
        assert_eq!(outer.finish(), 2);
    }
}
