//! Software exponential, modeling the SW26010's two emulation libraries.
//!
//! Sunway lacks a hardware `exp` instruction and emulates it in software
//! using one of two libraries: one IEEE-754 conforming (slow) and one fast
//! but slightly inaccurate (paper §VI-C). The paper uses the fast library for
//! all reported experiments.
//!
//! Both variants here use the classic Cody–Waite argument reduction
//! `x = k·ln2 + r` followed by a polynomial for `e^r` and an integer-domain
//! reconstruction of `2^k`:
//!
//! * [`exp_fast`] — three-term Cody–Waite reduction + degree-13 Taylor
//!   polynomial. Costs exactly [`EXP_FAST_FLOPS`] floating-point operations
//!   (verified by a counted-execution test), matching the ~215 flops that six
//!   per-cell exponentials contribute in the paper's Table I.
//! * [`exp_accurate`] — the same reduction carried in double-double
//!   (compensated) arithmetic with a final error-correction step, standing in
//!   for the IEEE-conforming library. Costs [`EXP_ACCURATE_FLOPS`] flops and
//!   is modeled as slower per call in the machine timing model.
//!
//! All arithmetic is written over the [`Arith`] trait so the identical code
//! path runs on `f64` and on the flop-counting [`crate::counted::Cf64`].

use crate::poly::horner;
use crate::Arith;

/// Which software exponential library a kernel uses (paper §VI-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExpKind {
    /// IEEE-754-conforming emulation: accurate but slow.
    Accurate,
    /// Fast emulation with relaxed accuracy; used in the paper's experiments.
    Fast,
}

impl ExpKind {
    /// Flops one call costs under the SW26010 hardware-counter accounting.
    pub const fn flops(self) -> u64 {
        match self {
            ExpKind::Accurate => EXP_ACCURATE_FLOPS,
            ExpKind::Fast => EXP_FAST_FLOPS,
        }
    }

    /// Evaluate `e^x` with this library.
    pub fn eval<T: Arith>(self, x: T) -> T {
        match self {
            ExpKind::Accurate => exp_accurate(x),
            ExpKind::Fast => exp_fast(x),
        }
    }
}

/// log2(e), for computing `k = round(x / ln 2)`.
pub const INV_LN2: f64 = std::f64::consts::LOG2_E;
/// High part of ln 2 (Cody–Waite term 1): the top 24 mantissa bits only, so
/// `k * LN2_HI` is *exact* for every `k` in the exponent range and the
/// reduction loses nothing (bit pattern 0x3fe62e42e0000000).
pub const LN2_HI: f64 = 0.693_147_122_859_954_8;
/// Middle part of ln 2 (Cody–Waite term 2), also truncated for exact
/// products (bit pattern 0x3e6efa39e0000000).
pub const LN2_MID: f64 = 5.769_998_878_690_785e-8;
/// Low part of ln 2 (Cody–Waite term 3): the remaining bits; the three-term
/// sum is within 2.6e-33 of true ln 2.
pub const LN2_LO: f64 = 1.688_525_005_076_197_8e-15;

/// Taylor coefficients 1/k! for e^r, k = 0..=13.
pub const EXP_POLY: [f64; 14] = [
    1.0,
    1.0,
    0.5,
    1.0 / 6.0,
    1.0 / 24.0,
    1.0 / 120.0,
    1.0 / 720.0,
    1.0 / 5040.0,
    1.0 / 40320.0,
    1.0 / 362880.0,
    1.0 / 3628800.0,
    1.0 / 39916800.0,
    1.0 / 479001600.0,
    1.0 / 6227020800.0,
];

/// Exact flop count of one [`exp_fast`] call in the non-degenerate range:
/// 1 (k) + 6 (three-term reduction) + 26 (degree-13 Horner) + 1 (2^k scale).
pub const EXP_FAST_FLOPS: u64 = 1 + 6 + 2 * (EXP_POLY.len() as u64 - 1) + 1;

/// Exact flop count of one [`exp_accurate`] call: the fast path plus the
/// compensated (double-double) reduction and final correction (10 extra ops).
pub const EXP_ACCURATE_FLOPS: u64 = EXP_FAST_FLOPS + 10;

/// Above this, `e^x` overflows to +inf in f64.
const OVERFLOW_X: f64 = 709.782712893384;
/// Below this, `e^x` underflows to 0 in f64 (past the subnormal range).
const UNDERFLOW_X: f64 = -745.2;

/// Build `2^k` exactly via exponent-field manipulation (integer domain; free
/// under SW26010 flop accounting). Valid for `k` in the normal range; the
/// callers pre-split extreme `k`.
#[inline]
fn pow2(k: i32) -> f64 {
    debug_assert!(
        (-1022..=1023).contains(&k),
        "pow2 exponent {k} out of range"
    );
    f64::from_bits(((k + 1023) as u64) << 52)
}

/// Shared fast-path evaluation: returns `Some(result)` or `None` when the
/// input needs special handling.
#[inline]
fn exp_special<T: Arith>(x: T) -> Option<T> {
    let v = x.value();
    if v.is_nan() {
        return Some(x);
    }
    if v > OVERFLOW_X {
        return Some(x.with_value(f64::INFINITY));
    }
    if v < UNDERFLOW_X {
        return Some(x.with_value(0.0));
    }
    None
}

/// Fast software exponential (the library used in all of the paper's runs).
///
/// Relative error is bounded by the degree-13 Taylor remainder over
/// `|r| <= ln2/2`, about 1.5e-16 — slightly worse than correctly-rounded but,
/// as the paper notes, "it does not greatly impact this benchmark".
///
/// ```
/// use sw_math::exp_fast;
/// let err = (exp_fast(1.0) - std::f64::consts::E).abs() / std::f64::consts::E;
/// assert!(err < 1e-14);
/// ```
pub fn exp_fast<T: Arith>(x: T) -> T {
    if let Some(s) = exp_special(x) {
        return s;
    }
    // k = round(x / ln2): one multiply; the rounding itself happens in the
    // integer domain and is not counted.
    let kx = x * T::lit(INV_LN2); // 1 flop
    let k = kx.value().round() as i32;
    let kd = T::lit(k as f64);
    // Three-term Cody–Waite reduction: r = x - k*ln2, carried to ~2^-110.
    let r = x - kd * T::lit(LN2_HI); // 2 flops
    let r = r - kd * T::lit(LN2_MID); // 2 flops
    let r = r - kd * T::lit(LN2_LO); // 2 flops
                                     // e^r by degree-13 Horner: 26 flops.
    let p = horner(r, &EXP_POLY);
    // Reconstruct 2^k. For k below the normal exponent range (deeply negative
    // x) scale twice; that branch costs one extra multiply but only fires for
    // results below ~1e-308, outside the accounted range.
    scale_by_pow2(p, k)
}

/// Multiply `p` by `2^k`, splitting the scale when `k` leaves the normal
/// exponent range. Costs 1 flop on the fast path.
#[inline]
fn scale_by_pow2<T: Arith>(p: T, k: i32) -> T {
    if (-1021..=1022).contains(&k) {
        p * T::lit(pow2(k)) // 1 flop
    } else if k > 1022 {
        p * T::lit(pow2(1022)) * T::lit(pow2(k - 1022))
    } else {
        // Underflow side: go through 2^-1000 twice to reach subnormals
        // gracefully.
        let k2 = (k + 1000).max(-1022);
        p * T::lit(pow2(-1000)) * T::lit(pow2(k2))
    }
}

/// IEEE-style accurate software exponential (the "slow" Sunway library).
///
/// Same reduction as [`exp_fast`] but the polynomial result is combined with
/// the residual reduction error by a compensated correction step, emulating
/// the double-double tail arithmetic an IEEE-conforming implementation pays
/// for. The extra work is what makes the library slow on the real machine.
pub fn exp_accurate<T: Arith>(x: T) -> T {
    if let Some(s) = exp_special(x) {
        return s;
    }
    let kx = x * T::lit(INV_LN2); // 1
    let k = kx.value().round() as i32;
    let kd = T::lit(k as f64);
    // Compensated reduction: track the rounding error of each subtraction.
    let t1 = kd * T::lit(LN2_HI); // 1
    let r_hi = x - t1; // 1
                       // err = (x - r_hi) - t1 recovers what the subtraction dropped.
    let err = x - r_hi - t1; // 2
    let t2 = kd * T::lit(LN2_MID); // 1
    let r = r_hi - t2; // 1
    let err = err + (r_hi - r - t2); // 3
    let t3 = kd * T::lit(LN2_LO); // 1
    let r_final = r - t3; // 1
    let err = err + (r - r_final - t3); // 3
    let p = horner(r_final, &EXP_POLY); // 26
                                        // First-order correction: e^(r+err) ~= e^r * (1 + err) ~= p + p*err.
    let p = p + p * err; // 2
    scale_by_pow2(p, k) // 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counted::{flops_counted, Cf64};

    fn rel_err(a: f64, b: f64) -> f64 {
        if b == 0.0 {
            a.abs()
        } else {
            ((a - b) / b).abs()
        }
    }

    #[test]
    fn fast_matches_std_exp() {
        let mut x = -40.0;
        while x <= 40.0 {
            let got = exp_fast(x);
            let want = x.exp();
            assert!(
                rel_err(got, want) < 1e-14,
                "exp_fast({x}) = {got}, std = {want}"
            );
            x += 0.0137;
        }
    }

    #[test]
    fn accurate_matches_std_exp_tighter() {
        let mut x = -40.0;
        while x <= 40.0 {
            let got = exp_accurate(x);
            let want = x.exp();
            // Horner accumulation leaves a few ulps; the accurate library is
            // a model of "tighter than fast", not a correctly-rounded libm.
            assert!(
                rel_err(got, want) < 2.5e-15,
                "exp_accurate({x}) = {got}, std = {want}"
            );
            x += 0.0173;
        }
    }

    #[test]
    fn special_cases() {
        assert_eq!(exp_fast(f64::NEG_INFINITY), 0.0);
        assert_eq!(exp_fast(f64::INFINITY), f64::INFINITY);
        assert!(exp_fast(f64::NAN).is_nan());
        assert_eq!(exp_fast(0.0), 1.0);
        assert_eq!(exp_accurate(0.0), 1.0);
        assert_eq!(exp_fast(800.0), f64::INFINITY);
        assert_eq!(exp_fast(-800.0), 0.0);
    }

    #[test]
    fn deep_underflow_is_graceful() {
        // Results in the subnormal range should be tiny but not garbage.
        let v = exp_fast(-710.0);
        assert!(v > 0.0 && v < 1e-300);
        let v = exp_accurate(-741.0);
        assert!((0.0..1e-300).contains(&v));
    }

    #[test]
    fn fast_flop_constant_matches_counted_execution() {
        for &x in &[-30.0, -1.5, -0.1, 0.3, 2.0, 25.0] {
            let (_, n) = flops_counted(|| exp_fast(Cf64::new(x)));
            assert_eq!(n, EXP_FAST_FLOPS, "x = {x}");
        }
    }

    #[test]
    fn accurate_flop_constant_matches_counted_execution() {
        for &x in &[-30.0, -1.5, -0.1, 0.3, 2.0, 25.0] {
            let (_, n) = flops_counted(|| exp_accurate(Cf64::new(x)));
            assert_eq!(n, EXP_ACCURATE_FLOPS, "x = {x}");
        }
    }

    #[test]
    fn counted_and_plain_agree_bitwise() {
        for &x in &[-12.75, -0.001, 0.5, 7.25] {
            assert_eq!(
                exp_fast(x).to_bits(),
                exp_fast(Cf64::new(x)).get().to_bits()
            );
            assert_eq!(
                exp_accurate(x).to_bits(),
                exp_accurate(Cf64::new(x)).get().to_bits()
            );
        }
    }

    #[test]
    fn expkind_dispatch() {
        assert_eq!(ExpKind::Fast.eval(1.0), exp_fast(1.0));
        assert_eq!(ExpKind::Accurate.eval(1.0), exp_accurate(1.0));
        assert_eq!(ExpKind::Fast.flops(), EXP_FAST_FLOPS);
        assert_eq!(ExpKind::Accurate.flops(), EXP_ACCURATE_FLOPS);
    }
}
