//! Software math library modeling the SW26010's floating-point environment.
//!
//! The Sunway SW26010 has no hardware instruction for `exp`; it is emulated in
//! software by one of two libraries — an IEEE-754-conforming (slow) one and a
//! fast (slightly inaccurate) one (paper §VI-C). The Burgers model problem
//! evaluates six exponentials per cell, which contribute ~215 of its ~311
//! flops per cell (paper Table I), so faithful flop accounting of the
//! exponential is essential to reproducing the paper's floating-point
//! efficiency numbers.
//!
//! This crate provides:
//!
//! * [`exp`] — the two software exponential implementations, written
//!   generically over an [`Arith`] scalar so the *same* code path can run on
//!   plain `f64` or on the flop-counting [`counted::Cf64`] type,
//! * [`counted`] — a thread-local flop counter and counting scalar used to
//!   verify the analytic per-call flop constants,
//! * [`simd`] — a 4-wide `F64x4` vector type mirroring the SW26010's 256-bit
//!   SIMD with `VMAD`-style fused operations (paper §VI-B, Algorithm 2),
//! * [`poly`] — Horner-scheme polynomial evaluation helpers.

#![warn(missing_docs)]
pub mod counted;
pub mod exp;
pub mod poly;
pub mod simd;

pub use counted::{flops_counted, Cf64, FlopScope};
pub use exp::{exp_accurate, exp_fast, ExpKind, EXP_ACCURATE_FLOPS, EXP_FAST_FLOPS};
pub use simd::F64x4;

/// Scalar abstraction over which the software math routines are written.
///
/// Implemented by `f64` (production) and [`counted::Cf64`] (flop-accounting
/// verification), so the exact same algorithm is measured and shipped.
pub trait Arith:
    Copy
    + core::ops::Add<Output = Self>
    + core::ops::Sub<Output = Self>
    + core::ops::Mul<Output = Self>
    + core::ops::Div<Output = Self>
    + core::ops::Neg<Output = Self>
    + PartialOrd
{
    /// Lift a compile-time constant into the scalar. Constant materialization
    /// is not a floating-point operation and is never counted.
    fn lit(v: f64) -> Self;
    /// Extract the underlying value (for rounding decisions and bit tricks,
    /// which the SW26010 performs in integer registers and which its flop
    /// counters do not count).
    fn value(self) -> f64;
    /// Replace the underlying value without counting an operation
    /// (models integer-domain exponent manipulation).
    fn with_value(self, v: f64) -> Self;
}

impl Arith for f64 {
    #[inline(always)]
    fn lit(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn value(self) -> f64 {
        self
    }
    #[inline(always)]
    fn with_value(self, v: f64) -> Self {
        v
    }
}
