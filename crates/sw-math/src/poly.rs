//! Horner-scheme polynomial evaluation over any [`Arith`] scalar.

use crate::Arith;

/// Evaluate `c[0] + c[1]*x + c[2]*x^2 + ...` by Horner's rule.
///
/// Costs exactly `2 * (coeffs.len() - 1)` flops (one multiply and one add per
/// coefficient after the leading one).
#[inline]
pub fn horner<T: Arith>(x: T, coeffs: &[f64]) -> T {
    debug_assert!(!coeffs.is_empty());
    let mut acc = T::lit(coeffs[coeffs.len() - 1]);
    for &c in coeffs[..coeffs.len() - 1].iter().rev() {
        acc = acc * x + T::lit(c);
    }
    acc
}

/// Flop cost of [`horner`] with `n` coefficients.
#[inline]
pub const fn horner_flops(n: usize) -> u64 {
    2 * (n as u64 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counted::{flops_counted, Cf64};

    #[test]
    fn evaluates_cubic() {
        // 1 + 2x + 3x^2 + 4x^3 at x = 2 -> 1 + 4 + 12 + 32 = 49
        let v = horner(2.0_f64, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v, 49.0);
    }

    #[test]
    fn constant_polynomial() {
        assert_eq!(horner(123.0_f64, &[7.5]), 7.5);
        assert_eq!(horner_flops(1), 0);
    }

    #[test]
    fn flop_count_matches_formula() {
        for n in 1..=16usize {
            let coeffs: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
            let ((), flops) = flops_counted(|| {
                let _ = horner(Cf64::new(0.3), &coeffs);
            });
            assert_eq!(flops, horner_flops(n), "n = {n}");
        }
    }
}
