//! 4-wide SIMD vector mirroring the SW26010's 256-bit pipelines.
//!
//! The Sunway toolchain has no auto-vectorizer; kernels are vectorized by
//! hand with intrinsics such as `SIMD_LOADU`, `SIMD_VMAD`, and `SIMD_VMULD`
//! (paper §VI-B, Algorithm 2). [`F64x4`] provides the same operation set so
//! the ported Burgers kernel reads like the paper's Fortran snippet.
//!
//! `vmad` is deliberately *unfused* (separate multiply and add) so that the
//! vectorized kernel produces bit-identical results to the scalar kernel —
//! the runtime's determinism tests rely on this. The truly fused variant is
//! available as [`F64x4::vmad_fused`] for accuracy experiments.

use core::ops::{Add, Div, Index, Mul, Neg, Sub};

use crate::exp::{EXP_POLY, INV_LN2, LN2_HI, LN2_LO, LN2_MID};

/// SIMD register width of the SW26010 (4 doubles in 256 bits).
pub const SIMD_WIDTH: usize = 4;

/// A 256-bit vector of four `f64` lanes.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
#[repr(align(32))]
pub struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// Broadcast one value to all lanes (`SIMD_CMPLX(v, v, v, v)`).
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        F64x4([v; 4])
    }

    /// Construct from explicit lanes.
    #[inline(always)]
    pub fn new(a: f64, b: f64, c: f64, d: f64) -> Self {
        F64x4([a, b, c, d])
    }

    /// Unaligned load of four consecutive doubles (`SIMD_LOADU`).
    ///
    /// # Panics
    /// Panics if `s` has fewer than four elements.
    #[inline(always)]
    pub fn loadu(s: &[f64]) -> Self {
        F64x4([s[0], s[1], s[2], s[3]])
    }

    /// Unaligned store of the four lanes (`SIMD_STOREU`).
    ///
    /// # Panics
    /// Panics if `d` has fewer than four elements.
    #[inline(always)]
    pub fn storeu(self, d: &mut [f64]) {
        d[..4].copy_from_slice(&self.0);
    }

    /// Multiply-add `self * b + c` (`SIMD_VMAD`), unfused for bit-parity with
    /// the scalar kernel.
    #[inline(always)]
    pub fn vmad(self, b: Self, c: Self) -> Self {
        self * b + c
    }

    /// Truly fused multiply-add, one rounding (`fma` per lane).
    #[inline(always)]
    pub fn vmad_fused(self, b: Self, c: Self) -> Self {
        let mut out = [0.0; 4];
        for (l, o) in out.iter_mut().enumerate() {
            *o = self.0[l].mul_add(b.0[l], c.0[l]);
        }
        F64x4(out)
    }

    /// Lane-wise multiply (`SIMD_VMULD`).
    #[inline(always)]
    pub fn vmuld(self, b: Self) -> Self {
        self * b
    }

    /// Horizontal sum of the four lanes.
    #[inline(always)]
    pub fn hsum(self) -> f64 {
        (self.0[0] + self.0[1]) + (self.0[2] + self.0[3])
    }

    /// Lane-wise application of a scalar function (models the lane loop the
    /// Sunway compiler emits for non-vectorizable calls).
    #[inline(always)]
    pub fn map(self, f: impl Fn(f64) -> f64) -> Self {
        F64x4([f(self.0[0]), f(self.0[1]), f(self.0[2]), f(self.0[3])])
    }

    /// Lane array.
    #[inline(always)]
    pub fn lanes(self) -> [f64; 4] {
        self.0
    }
}

macro_rules! lanewise_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for F64x4 {
            type Output = F64x4;
            #[inline(always)]
            fn $method(self, rhs: F64x4) -> F64x4 {
                F64x4([
                    self.0[0] $op rhs.0[0],
                    self.0[1] $op rhs.0[1],
                    self.0[2] $op rhs.0[2],
                    self.0[3] $op rhs.0[3],
                ])
            }
        }
    };
}

lanewise_binop!(Add, add, +);
lanewise_binop!(Sub, sub, -);
lanewise_binop!(Mul, mul, *);
lanewise_binop!(Div, div, /);

impl Neg for F64x4 {
    type Output = F64x4;
    #[inline(always)]
    fn neg(self) -> F64x4 {
        F64x4([-self.0[0], -self.0[1], -self.0[2], -self.0[3]])
    }
}

impl Index<usize> for F64x4 {
    type Output = f64;
    #[inline(always)]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

/// Vectorized fast exponential: per lane, the identical operation sequence as
/// [`crate::exp::exp_fast`], so lane results are bit-identical to the scalar
/// library. Inputs outside the scalar fast path (NaN/overflow/underflow) fall
/// back to the scalar routine per lane.
pub fn exp_fast_x4(x: F64x4) -> F64x4 {
    // Per-lane special-case screen; rare in the Burgers domain.
    for l in 0..4 {
        let v = x.0[l];
        if !(-700.0..=700.0).contains(&v) {
            return x.map(crate::exp::exp_fast);
        }
    }
    let kx = x * F64x4::splat(INV_LN2);
    let mut kd = [0.0; 4];
    let mut scale = [0.0; 4];
    for l in 0..4 {
        let k = kx.0[l].round() as i32;
        kd[l] = k as f64;
        // |x| <= 700 keeps k well inside the normal exponent range.
        scale[l] = f64::from_bits(((k + 1023) as u64) << 52);
    }
    let kd = F64x4(kd);
    let r = x - kd * F64x4::splat(LN2_HI);
    let r = r - kd * F64x4::splat(LN2_MID);
    let r = r - kd * F64x4::splat(LN2_LO);
    // Degree-13 Horner, same coefficient order as the scalar path.
    let mut p = F64x4::splat(EXP_POLY[EXP_POLY.len() - 1]);
    for &c in EXP_POLY[..EXP_POLY.len() - 1].iter().rev() {
        p = p * r + F64x4::splat(c);
    }
    p * F64x4(scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::exp_fast;

    #[test]
    fn lanewise_arithmetic() {
        let a = F64x4::new(1.0, 2.0, 3.0, 4.0);
        let b = F64x4::splat(2.0);
        assert_eq!((a + b).lanes(), [3.0, 4.0, 5.0, 6.0]);
        assert_eq!((a - b).lanes(), [-1.0, 0.0, 1.0, 2.0]);
        assert_eq!((a * b).lanes(), [2.0, 4.0, 6.0, 8.0]);
        assert_eq!((a / b).lanes(), [0.5, 1.0, 1.5, 2.0]);
        assert_eq!((-a).lanes(), [-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn load_store_roundtrip() {
        let src = [9.0, 8.0, 7.0, 6.0, 5.0];
        let v = F64x4::loadu(&src[1..]);
        assert_eq!(v.lanes(), [8.0, 7.0, 6.0, 5.0]);
        let mut dst = [0.0; 4];
        v.storeu(&mut dst);
        assert_eq!(dst, [8.0, 7.0, 6.0, 5.0]);
    }

    #[test]
    fn vmad_is_unfused_mul_add() {
        let a = F64x4::splat(1.0 + f64::EPSILON);
        let b = F64x4::splat(1.0 - f64::EPSILON);
        let c = F64x4::splat(-1.0);
        let unfused = a.vmad(b, c);
        for l in 0..4 {
            assert_eq!(
                unfused[l],
                (1.0 + f64::EPSILON) * (1.0 - f64::EPSILON) - 1.0
            );
        }
        // The fused version retains the low product bits the unfused one drops.
        let fused = a.vmad_fused(b, c);
        assert_ne!(fused, unfused);
    }

    #[test]
    fn hsum_sums_lanes() {
        assert_eq!(F64x4::new(1.0, 2.0, 3.0, 4.0).hsum(), 10.0);
    }

    #[test]
    fn vector_exp_bit_matches_scalar() {
        let mut x = -35.0;
        while x < 35.0 {
            let v = F64x4::new(x, x + 0.123, x + 1.9, x + 3.4);
            let got = exp_fast_x4(v);
            for l in 0..4 {
                assert_eq!(
                    got[l].to_bits(),
                    exp_fast(v[l]).to_bits(),
                    "lane {l}, x = {}",
                    v[l]
                );
            }
            x += 0.517;
        }
    }

    #[test]
    fn vector_exp_falls_back_on_extremes() {
        let v = F64x4::new(0.0, 800.0, -800.0, f64::NAN);
        let got = exp_fast_x4(v);
        assert_eq!(got[0], 1.0);
        assert_eq!(got[1], f64::INFINITY);
        assert_eq!(got[2], 0.0);
        assert!(got[3].is_nan());
    }
}
