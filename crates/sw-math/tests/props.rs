//! Property tests of the software math layer.

use proptest::prelude::*;
use sw_math::counted::{flops_counted, Cf64};
use sw_math::exp::{exp_accurate, exp_fast, EXP_ACCURATE_FLOPS, EXP_FAST_FLOPS};
use sw_math::simd::{exp_fast_x4, F64x4};

proptest! {
    /// Both software exps stay within their accuracy budgets on the whole
    /// non-degenerate range.
    #[test]
    fn exp_accuracy(x in -700.0f64..700.0) {
        let want = x.exp();
        let fast = exp_fast(x);
        let acc = exp_accurate(x);
        let rel = |got: f64| ((got - want) / want).abs();
        prop_assert!(rel(fast) < 1e-13, "fast({x}) rel err {}", rel(fast));
        prop_assert!(rel(acc) < 1e-14, "accurate({x}) rel err {}", rel(acc));
        // The accurate library is never (meaningfully) worse than fast.
        prop_assert!(rel(acc) <= rel(fast) + 1e-15);
    }

    /// Counted execution is bit-identical to plain execution and costs the
    /// documented constant number of flops.
    #[test]
    fn counted_exp_matches_plain_and_constants(x in -700.0f64..700.0) {
        let (cf, n_fast) = flops_counted(|| exp_fast(Cf64::new(x)));
        prop_assert_eq!(cf.get().to_bits(), exp_fast(x).to_bits());
        prop_assert_eq!(n_fast, EXP_FAST_FLOPS);
        let (ca, n_acc) = flops_counted(|| exp_accurate(Cf64::new(x)));
        prop_assert_eq!(ca.get().to_bits(), exp_accurate(x).to_bits());
        prop_assert_eq!(n_acc, EXP_ACCURATE_FLOPS);
    }

    /// The vectorized exp is bit-identical per lane to the scalar library.
    #[test]
    fn simd_exp_lanes_match_scalar(
        a in -650.0f64..650.0,
        b in -650.0f64..650.0,
        c in -650.0f64..650.0,
        d in -650.0f64..650.0,
    ) {
        let v = exp_fast_x4(F64x4::new(a, b, c, d));
        for (lane, x) in [a, b, c, d].into_iter().enumerate() {
            prop_assert_eq!(v[lane].to_bits(), exp_fast(x).to_bits(), "lane {}", lane);
        }
    }

    /// F64x4 arithmetic is exactly lane-wise f64 arithmetic.
    #[test]
    fn simd_ops_are_lanewise(
        xs in prop::array::uniform4(-1e6f64..1e6),
        ys in prop::array::uniform4(-1e6f64..1e6),
    ) {
        let a = F64x4(xs);
        let b = F64x4(ys);
        for l in 0..4 {
            prop_assert_eq!((a + b)[l].to_bits(), (xs[l] + ys[l]).to_bits());
            prop_assert_eq!((a - b)[l].to_bits(), (xs[l] - ys[l]).to_bits());
            prop_assert_eq!((a * b)[l].to_bits(), (xs[l] * ys[l]).to_bits());
            prop_assert_eq!((a / b)[l].to_bits(), (xs[l] / ys[l]).to_bits());
            prop_assert_eq!(a.vmad(b, a)[l].to_bits(), (xs[l] * ys[l] + xs[l]).to_bits());
        }
    }

    /// exp is monotonic on representable steps (sanity of the reduction
    /// across k boundaries, where Cody-Waite bugs typically show up).
    #[test]
    fn exp_fast_monotone_near_k_boundaries(k in -900i32..900) {
        // Straddle a multiple of ln2/2 where the reduction switches k.
        let x0 = k as f64 * 0.346_573_590_279_972_65;
        let below = exp_fast(x0 - 1e-9);
        let above = exp_fast(x0 + 1e-9);
        prop_assert!(below <= above, "exp_fast not monotone at {x0}");
    }
}
