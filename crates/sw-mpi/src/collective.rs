//! Modeled collectives.
//!
//! Uintah issues small MPI reductions each timestep (the stable timestep
//! size / error norms — the "MPI reduce tasks" of paper §V-C step 3d). Full
//! point-to-point emulation of a reduction tree would bloat the schedulers
//! for no evaluation-relevant gain, so collectives are modeled in closed
//! form: an allreduce over `n` ranks completes `2*ceil(log2 n)` hops after
//! the last rank contributes (binomial reduce + broadcast), each hop costing
//! one network latency plus a small per-hop software overhead.

use sw_sim::{MachineConfig, SimDur, SimTime};
use sw_telemetry::{Event, Lane, Recorder};

use crate::comm::Rank;

/// Reduction operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Minimum (timestep control).
    Min,
    /// Maximum (error norms).
    Max,
    /// Sum (integrals).
    Sum,
}

impl ReduceOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Sum => a + b,
        }
    }

    fn identity(self) -> f64 {
        match self {
            ReduceOp::Min => f64::INFINITY,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Sum => 0.0,
        }
    }
}

/// One modeled allreduce. Create per timestep, have every rank
/// [`contribute`](ModeledAllreduce::contribute), then poll
/// [`result_at`](ModeledAllreduce::result_at).
#[derive(Debug)]
pub struct ModeledAllreduce {
    op: ReduceOp,
    pending: Vec<bool>,
    remaining: usize,
    acc: f64,
    last_contribution: SimTime,
    hop: SimDur,
    hops: u32,
    /// Telemetry sink + step label (disabled/0 by default).
    rec: Recorder,
    step: usize,
}

impl ModeledAllreduce {
    /// An allreduce over `n` ranks with operator `op` under machine `cfg`.
    pub fn new(cfg: &MachineConfig, n: usize, op: ReduceOp) -> Self {
        assert!(n >= 1);
        let levels = usize::BITS - (n - 1).leading_zeros(); // ceil(log2 n)
        ModeledAllreduce {
            op,
            pending: vec![false; n],
            remaining: n,
            acc: op.identity(),
            last_contribution: SimTime::ZERO,
            hop: cfg.net_latency + cfg.mpi_call_overhead,
            hops: 2 * levels,
            rec: Recorder::off(),
            step: 0,
        }
    }

    /// Thread a telemetry recorder through contributions, labelled with the
    /// timestep this reduction belongs to.
    pub fn with_telemetry(mut self, rec: Recorder, step: usize) -> Self {
        self.rec = rec;
        self.step = step;
        self
    }

    /// Rank `r` contributes `value` at `now`.
    ///
    /// # Panics
    /// Panics on a duplicate contribution.
    pub fn contribute(&mut self, r: Rank, value: f64, now: SimTime) {
        assert!(!self.pending[r], "rank {r} contributed twice");
        self.pending[r] = true;
        self.remaining -= 1;
        self.acc = self.op.apply(self.acc, value);
        self.last_contribution = self.last_contribution.max(now);
        self.rec.record(
            r,
            now.0,
            Lane::Mpe,
            Event::ReduceContribute { step: self.step },
        );
        if let Some(m) = self.rec.metrics() {
            m.reduce_contributions.inc();
        }
    }

    /// Whether every rank has contributed.
    pub fn all_contributed(&self) -> bool {
        self.remaining == 0
    }

    /// When, and with what value, the reduced result is available on every
    /// rank; `None` until all ranks have contributed.
    pub fn result_at(&self) -> Option<(SimTime, f64)> {
        if self.remaining > 0 {
            return None;
        }
        Some((
            self.last_contribution + self.hop * self.hops as u64,
            self.acc,
        ))
    }
}

/// A modeled barrier: all ranks enter, everyone leaves `ceil(log2 n)`
/// dissemination rounds after the last entry.
#[derive(Debug)]
pub struct ModeledBarrier {
    entered: Vec<bool>,
    remaining: usize,
    last_entry: SimTime,
    hop: SimDur,
    rounds: u32,
}

impl ModeledBarrier {
    /// A barrier over `n` ranks under machine `cfg`.
    pub fn new(cfg: &MachineConfig, n: usize) -> Self {
        assert!(n >= 1);
        let rounds = usize::BITS - (n - 1).leading_zeros();
        ModeledBarrier {
            entered: vec![false; n],
            remaining: n,
            last_entry: SimTime::ZERO,
            hop: cfg.net_latency + cfg.mpi_call_overhead,
            rounds,
        }
    }

    /// Rank `r` enters at `now`.
    ///
    /// # Panics
    /// Panics on double entry.
    pub fn enter(&mut self, r: Rank, now: SimTime) {
        assert!(!self.entered[r], "rank {r} entered the barrier twice");
        self.entered[r] = true;
        self.remaining -= 1;
        self.last_entry = self.last_entry.max(now);
    }

    /// When every rank may leave; `None` while anyone is missing.
    pub fn release_at(&self) -> Option<SimTime> {
        (self.remaining == 0).then(|| self.last_entry + self.hop * self.rounds as u64)
    }
}

/// A modeled broadcast from a root: receivers have the value
/// `ceil(log2 n)` binomial-tree hops after the root contributes it.
#[derive(Debug)]
pub struct ModeledBcast {
    value: Option<(SimTime, f64)>,
    hop: SimDur,
    rounds: u32,
}

impl ModeledBcast {
    /// A broadcast over `n` ranks under machine `cfg`.
    pub fn new(cfg: &MachineConfig, n: usize) -> Self {
        assert!(n >= 1);
        let rounds = usize::BITS - (n - 1).leading_zeros();
        ModeledBcast {
            value: None,
            hop: cfg.net_latency + cfg.mpi_call_overhead,
            rounds,
        }
    }

    /// The root provides `value` at `now`.
    pub fn root_send(&mut self, value: f64, now: SimTime) {
        assert!(self.value.is_none(), "broadcast root sent twice");
        self.value = Some((now, value));
    }

    /// When, and with what value, every rank has the broadcast.
    pub fn ready_at(&self) -> Option<(SimTime, f64)> {
        self.value
            .map(|(t, v)| (t + self.hop * self.rounds as u64, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::sw26010()
    }

    #[test]
    fn min_over_ranks() {
        let mut a = ModeledAllreduce::new(&cfg(), 4, ReduceOp::Min);
        a.contribute(0, 3.0, SimTime(100));
        a.contribute(1, 1.0, SimTime(50));
        a.contribute(2, 2.0, SimTime(200));
        assert!(a.result_at().is_none());
        a.contribute(3, 5.0, SimTime(70));
        let (t, v) = a.result_at().unwrap();
        assert_eq!(v, 1.0);
        // 4 ranks -> 2 levels -> 4 hops after the last contribution (t=200).
        let hop = cfg().net_latency + cfg().mpi_call_overhead;
        assert_eq!(t, SimTime(200) + hop * 4);
    }

    #[test]
    fn sum_and_max_ops() {
        let mut s = ModeledAllreduce::new(&cfg(), 2, ReduceOp::Sum);
        s.contribute(0, 1.5, SimTime::ZERO);
        s.contribute(1, 2.5, SimTime::ZERO);
        assert_eq!(s.result_at().unwrap().1, 4.0);
        let mut m = ModeledAllreduce::new(&cfg(), 2, ReduceOp::Max);
        m.contribute(0, -1.0, SimTime::ZERO);
        m.contribute(1, -3.0, SimTime::ZERO);
        assert_eq!(m.result_at().unwrap().1, -1.0);
    }

    #[test]
    fn single_rank_completes_instantly() {
        let mut a = ModeledAllreduce::new(&cfg(), 1, ReduceOp::Min);
        a.contribute(0, 9.0, SimTime(42));
        let (t, v) = a.result_at().unwrap();
        assert_eq!((t, v), (SimTime(42), 9.0), "log2(1) = 0 hops");
    }

    #[test]
    #[should_panic(expected = "contributed twice")]
    fn duplicate_contribution_panics() {
        let mut a = ModeledAllreduce::new(&cfg(), 2, ReduceOp::Min);
        a.contribute(0, 1.0, SimTime::ZERO);
        a.contribute(0, 1.0, SimTime::ZERO);
    }

    #[test]
    fn barrier_releases_after_last_entry() {
        let mut b = ModeledBarrier::new(&cfg(), 4);
        b.enter(2, SimTime(500));
        b.enter(0, SimTime(100));
        assert!(b.release_at().is_none());
        b.enter(1, SimTime(900));
        b.enter(3, SimTime(200));
        let hop = cfg().net_latency + cfg().mpi_call_overhead;
        assert_eq!(b.release_at(), Some(SimTime(900) + hop * 2));
    }

    #[test]
    fn single_rank_barrier_is_free() {
        let mut b = ModeledBarrier::new(&cfg(), 1);
        b.enter(0, SimTime(7));
        assert_eq!(b.release_at(), Some(SimTime(7)));
    }

    #[test]
    fn bcast_delivers_after_tree_hops() {
        let mut bc = ModeledBcast::new(&cfg(), 8);
        assert!(bc.ready_at().is_none());
        bc.root_send(2.5, SimTime(50));
        let hop = cfg().net_latency + cfg().mpi_call_overhead;
        assert_eq!(bc.ready_at(), Some((SimTime(50) + hop * 3, 2.5)));
    }
}
