//! Non-blocking point-to-point messaging with host-driven progression.
//!
//! The paper's scheduler design leans on a well-known MPI property: "in most
//! MPI implementations, the non-blocking sends and receives do not progress
//! without the help of the host processor" (§V-C, citing Denis & Trahay).
//! This layer reproduces that behaviour exactly:
//!
//! * small messages (≤ eager limit) are injected at `isend` time, but their
//!   *arrival only becomes visible* to the receiver at its next
//!   [`MpiWorld::progress`] call;
//! * large messages rendezvous: an RTS travels to the receiver, who — only
//!   while progressing, with a matching `irecv` posted — returns a CTS; the
//!   sender — only while progressing — then injects the payload.
//!
//! A synchronous scheduler that busy-spins on the completion flag makes no
//! progress calls during kernels, so rendezvous handshakes serialize after
//! compute; the asynchronous scheduler progresses while kernels run and
//! hides them. That is precisely the overlap the paper measures.
//!
//! Matching is MPI-ordered: posted receives match messages from a given
//! `(source, tag)` in message-id (send-program) order.
//!
//! # Multi-endpoint mode, aggregation, and the progress lane
//!
//! [`CommConfig`] layers three orthogonal refinements on the base protocol
//! (all off by default, all timing-only — the warehouse bytes of a run
//! never depend on them):
//!
//! * **Endpoints** — each rank's NIC is split into `endpoints` independent
//!   injection lanes (the `hypre_ep` threads-as-endpoints idea). A message
//!   is routed to `fold([src, dst, tag]) % endpoints`: a pure function of
//!   message identity, so both sides (and every control packet of the
//!   message) agree on the lane without coordination.
//! * **Aggregation** — eager payloads are parked in per-(destination,
//!   endpoint) staging buffers and flushed as one coalesced wire packet
//!   when the buffered bytes cross [`CommConfig::agg_bytes`] (at push) or
//!   the oldest member ages past [`CommConfig::agg_deadline_ps`] (at the
//!   next `progress` call). Members unpack at the receiver in push order;
//!   matching is unchanged because per-source ids stay ascending.
//! * **Crossover** — [`CommConfig::eager_crossover`] overrides the
//!   machine's eager limit, moving the eager/rendezvous boundary per run.
//!
//! Independently, [`MpiWorld::progress_on`] lets the controller drive the
//! protocol from a *dedicated progress lane* ([`Lane::Progress`]) at wire
//! delivery time, relaxing the progression-requires-host rule as a modeled
//! machine variant.

use std::collections::BTreeMap;
use std::sync::Arc;

use sw_resilience::{fold, FaultPlan, FaultStats, MsgFault, MsgKey};
use sw_sim::{CgId, MachineCtx, SimDur, SimTime};
use sw_telemetry::{Event, Lane, Recorder};

/// Rank in the simulated communicator (identical to the CG id: one MPI
/// process per CG, paper §V-B).
pub type Rank = CgId;

/// Message tag.
pub type Tag = u64;

/// First tag of the reserved control-plane namespace.
///
/// Application tags must be **strictly below** this value; everything at or
/// above is reserved for the library's own control traffic (present and
/// future). [`MpiWorld::isend`] and [`MpiWorld::irecv`] reject reserved
/// tags at the constructor, so an app-level tag scheme (e.g. the runtime's
/// `ghost_tag`) can never alias a control-plane stream no matter how many
/// steps, stages, or patches it multiplies together — the overflow is
/// caught here instead of silently matching the wrong message.
pub const APP_TAG_LIMIT: Tag = 1 << 62;

/// Largest message id the wire-token encoding carries injectively.
///
/// Wire tokens pack `(message id, phase)` as `id << 2 | phase`. The shift
/// discards the top two bits of the id, so ids above this bound would
/// alias: an `encode(id, PH_ACK)` for one message could decode as a
/// different message's token and retire the wrong send. [`MpiWorld::isend`]
/// refuses to allocate ids past this bound, making
/// `decode(encode(id, phase)) == (id, phase)` a total guarantee.
pub const MAX_MSG_ID: u64 = (1 << 62) - 1;

/// Size of the RTS/CTS/ACK control messages on the wire — also the
/// padding floor for eager payloads, making it the smallest packet the
/// model can emit (the static lookahead proof's per-channel minimum).
pub const CTRL_BYTES: u64 = 64;

/// Index of one NIC injection lane within a rank (multi-endpoint MPI).
pub type EndpointId = u32;

/// Domain-separation discriminant for the endpoint-routing hash (see
/// [`CommConfig::route`]); mirrors the fault plane's `D_*` constants.
const D_ENDPOINT: u64 = 0x4550_4f49_4e54; // "EPOINT"

/// How often (in `progress` calls) completed-and-consumed receive handles
/// are compacted away. Bounds the handle maps on long campaigns without
/// paying a retain-scan on every poll.
const COMPACT_CADENCE: u64 = 64;

/// Communication-layer tuning knobs (multi-endpoint MPI, message
/// aggregation, eager/rendezvous crossover, dedicated progress lane).
///
/// The default is the pre-existing behaviour: one endpoint, no
/// aggregation, the machine's eager limit, host-driven progression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommConfig {
    /// NIC injection lanes per rank (>= 1). Messages are spread across
    /// lanes by [`CommConfig::route`]; different lanes do not serialize
    /// against each other at injection.
    pub endpoints: u32,
    /// Aggregation flush threshold in payload bytes; `0` disables
    /// aggregation entirely.
    pub agg_bytes: u64,
    /// Aggregation flush deadline in picoseconds: a staging buffer older
    /// than this is flushed by the next `progress` call on the sender.
    /// Must be non-zero whenever `agg_bytes` is (validated upstream).
    pub agg_deadline_ps: u64,
    /// Eager/rendezvous crossover in bytes (`bytes <= crossover` goes
    /// eager); `None` uses the machine's `eager_limit_bytes`.
    pub eager_crossover: Option<u64>,
    /// Drive protocol progression from a dedicated lane at wire-delivery
    /// time (consumed by the controller, not by this crate's logic).
    pub progress_lane: bool,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            endpoints: 1,
            agg_bytes: 0,
            agg_deadline_ps: 0,
            eager_crossover: None,
            progress_lane: false,
        }
    }
}

impl CommConfig {
    /// Whether message aggregation is enabled.
    pub fn aggregation(&self) -> bool {
        self.agg_bytes > 0
    }

    /// Deterministic message → endpoint routing: a pure function of the
    /// message identity `(src, dst, tag)`, so the sender, the receiver,
    /// and every control packet of the message agree on the lane.
    pub fn route(&self, src: Rank, dst: Rank, tag: Tag) -> EndpointId {
        if self.endpoints <= 1 {
            return 0;
        }
        (fold(&[D_ENDPOINT, src as u64, dst as u64, tag]) % u64::from(self.endpoints)) as EndpointId
    }
}

/// Handle to a posted non-blocking send.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SendHandle(u64);

/// Handle to a posted non-blocking receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RecvHandle(u64);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MsgState {
    /// Aggregation: eager payload parked in a staging buffer on the
    /// sender, waiting for a byte- or deadline-triggered flush. The send
    /// request is complete (the library buffers the payload).
    Staged,
    /// Rendezvous: RTS on the wire.
    RtsInFlight,
    /// Rendezvous: RTS at the receiver, waiting for match + progress.
    RtsArrived,
    /// Rendezvous: CTS on the wire back to the sender.
    CtsInFlight,
    /// Rendezvous: CTS at the sender, waiting for sender progress.
    CtsArrived,
    /// Payload on the wire.
    DataInFlight,
    /// Payload at the receiver, waiting for match + progress.
    DataArrived,
    /// Received; payload handed to the application.
    Consumed,
    /// Reliable mode: payload dropped by the fault plane; the sender's
    /// resend timer ([`Msg::deadline`]) is the only way forward.
    DataLost,
    /// Reliable mode: consumed at the receiver, ack in flight back to the
    /// sender; the message retires when the ack lands.
    AckWait,
}

#[derive(Debug)]
struct Msg {
    src: Rank,
    dst: Rank,
    tag: Tag,
    bytes: u64,
    payload: Option<Vec<f64>>,
    state: MsgState,
    eager: bool,
    /// NIC injection lane every packet of this message rides (both
    /// directions — the routing is a pure function of message identity).
    endpoint: EndpointId,
    matched_recv: Option<u64>,
    send_complete: bool,
    /// Reliable mode: payload transmission attempt, starting at 0.
    attempt: u32,
    /// Reliable mode: absolute time at which the sender declares the
    /// current attempt lost and resends (armed only on a real drop).
    deadline: Option<SimTime>,
}

#[derive(Debug)]
struct RecvReq {
    matched_msg: Option<u64>,
    complete: bool,
    /// The application consumed the payload via `take_payload`; the handle
    /// is dead weight and eligible for cadenced compaction.
    taken: bool,
    payload: Option<Vec<f64>>,
}

/// One per-(destination, endpoint) aggregation staging buffer on a sender.
#[derive(Debug)]
struct StageBuf {
    /// Member message ids in push (send-program) order.
    members: Vec<u64>,
    /// Sum of member payload bytes.
    bytes: u64,
    /// When the buffer was opened (first push) — the deadline clock.
    opened_at: SimTime,
}

/// The simulated communicator.
///
/// ```
/// use sw_mpi::MpiWorld;
/// use sw_sim::{Machine, MachineConfig, MachineEvent, SimTime};
///
/// let mut m = Machine::new(MachineConfig::sw26010(), 2);
/// let mut w = MpiWorld::new(2);
/// // Eager send with a functional payload.
/// let s = w.isend(&mut m.ctx(0), 0, 1, 42, 8, Some(vec![3.5]), SimTime::ZERO);
/// let r = w.irecv(1, 0, 42);
/// // Drain wire events, then let the receiving host progress the library.
/// while let Some((_, ev)) = m.pop() {
///     if let MachineEvent::NetDeliver { token, .. } = ev {
///         w.on_wire(token);
///     }
/// }
/// let now = m.now();
/// w.progress(1, &mut m.ctx(1), now);
/// assert!(w.send_done(s) && w.recv_done(r));
/// assert_eq!(w.take_payload(r), Some(vec![3.5]));
/// ```
#[derive(Debug)]
pub struct MpiWorld {
    n: usize,
    msgs: BTreeMap<u64, Msg>,
    recvs: BTreeMap<u64, RecvReq>,
    /// Per-rank index of in-flight message ids the rank may need to act on
    /// (as sender or receiver); keeps `progress` proportional to live
    /// traffic rather than run history.
    active: Vec<std::collections::BTreeSet<u64>>,
    /// Unmatched posted receives, FIFO per (dst, src, tag).
    posted: BTreeMap<(Rank, Rank, Tag), std::collections::VecDeque<u64>>,
    /// Per-source message-id sequence counters. Ids are drawn from
    /// per-rank namespaces (`id = src + n * seq`) so that concurrently
    /// advancing shards mint identical ids regardless of interleaving —
    /// the PDES bit-identity guarantee depends on it. Within one source
    /// the ids stay ascending in send-program order (MPI FIFO).
    next_msg: Vec<u64>,
    /// Per-destination receive-id sequence counters (`id = rank + n * seq`).
    next_recv: Vec<u64>,
    /// Wire-level statistics.
    pub sends_posted: u64,
    /// Completed receives.
    pub recvs_completed: u64,
    /// Telemetry sink for protocol events (disabled by default).
    rec: Recorder,
    /// Optional fault plan: when set, payload transmission goes through the
    /// *reliable* layer (fault consult at injection, ack on consumption,
    /// resend on timeout, duplicate suppression).
    faults: Option<Arc<FaultPlan>>,
    /// Communication-layer knobs (endpoints, aggregation, crossover).
    comm: CommConfig,
    /// Aggregation staging buffers, keyed `(src, dst, endpoint)`. Only the
    /// source rank's calls touch its own buffers, so concurrent shards'
    /// calls commute (see [`SharedMpi`]).
    stage: BTreeMap<(Rank, Rank, EndpointId), StageBuf>,
    /// Coalesced batches in flight: batch id → member ids in push order.
    /// Batch ids are minted from the sender's message-id namespace, so
    /// they never collide with plain message ids.
    batches: BTreeMap<u64, Vec<u64>>,
    /// Progress calls since the last cadenced compaction (satellite of the
    /// unbounded-handle-map fix: compaction must not wait for quiescence).
    calls_since_compact: u64,
}

/// Decode a wire token into (message id, phase).
fn decode(token: u64) -> (u64, u8) {
    (token >> 2, (token & 3) as u8)
}
fn encode(id: u64, phase: u8) -> u64 {
    // Injectivity: ids are capped at `MAX_MSG_ID` (enforced at `isend`),
    // so the shift cannot discard bits and every (id, phase) pair maps to
    // a distinct token.
    assert!(
        id <= MAX_MSG_ID,
        "message id {id} overflows the wire-token namespace"
    );
    debug_assert!(phase < 4);
    (id << 2) | phase as u64
}
const PH_RTS: u8 = 0;
const PH_CTS: u8 = 1;
const PH_DATA: u8 = 2;
/// Reliable-mode delivery acknowledgement (receiver → sender control
/// packet; retires the message when it lands at the sender's NIC).
const PH_ACK: u8 = 3;

impl MpiWorld {
    /// A communicator of `n` ranks.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        MpiWorld {
            n,
            msgs: BTreeMap::new(),
            recvs: BTreeMap::new(),
            active: vec![std::collections::BTreeSet::new(); n],
            posted: BTreeMap::new(),
            next_msg: vec![0; n],
            next_recv: vec![0; n],
            sends_posted: 0,
            recvs_completed: 0,
            rec: Recorder::off(),
            faults: None,
            comm: CommConfig::default(),
            stage: BTreeMap::new(),
            batches: BTreeMap::new(),
            calls_since_compact: 0,
        }
    }

    /// Thread a telemetry recorder through the protocol events.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// Install a fault plan, switching payload transmission to the
    /// reliable (ack + resend) layer.
    ///
    /// # Panics
    /// Panics if message aggregation is enabled: a coalesced packet has no
    /// per-member fault/ack story, so the combination is rejected (typed
    /// upstream as `ConfigError::AggregationWithFaults`, asserted here as
    /// the last line of defence).
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        assert!(
            !self.comm.aggregation(),
            "message aggregation and the reliable fault layer are mutually exclusive"
        );
        self.faults = Some(plan);
    }

    /// Install the communication-layer knobs (endpoints, aggregation,
    /// crossover). Call before any traffic is posted.
    ///
    /// # Panics
    /// Panics on `endpoints == 0`, on aggregation combined with a fault
    /// plan, and on aggregation with a zero deadline (the byte threshold
    /// alone cannot guarantee a flush, so quiescence would be unreachable).
    pub fn set_comm(&mut self, comm: CommConfig) {
        assert!(comm.endpoints >= 1, "endpoints must be >= 1");
        if comm.aggregation() {
            assert!(
                self.faults.is_none(),
                "message aggregation and the reliable fault layer are mutually exclusive"
            );
            assert!(
                comm.agg_deadline_ps > 0,
                "aggregation needs a non-zero flush deadline"
            );
        }
        self.comm = comm;
    }

    /// The installed communication-layer knobs.
    pub fn comm(&self) -> CommConfig {
        self.comm
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Post a non-blocking send of `bytes` (optionally carrying a functional
    /// payload). Send-side work begins at `when`; the caller accounts the
    /// MPE call overhead.
    #[allow(clippy::too_many_arguments)]
    pub fn isend(
        &mut self,
        machine: &mut MachineCtx<'_>,
        src: Rank,
        dst: Rank,
        tag: Tag,
        bytes: u64,
        payload: Option<Vec<f64>>,
        when: SimTime,
    ) -> SendHandle {
        assert!(src < self.n && dst < self.n, "rank out of range");
        assert_ne!(src, dst, "self-sends go through the data warehouse");
        assert!(
            tag < APP_TAG_LIMIT,
            "tag {tag:#x} lies in the reserved control-plane namespace (>= {APP_TAG_LIMIT:#x})"
        );
        let id = src as u64 + self.n as u64 * self.next_msg[src];
        assert!(
            id <= MAX_MSG_ID,
            "message id space exhausted: wire tokens would alias"
        );
        self.next_msg[src] += 1;
        self.sends_posted += 1;
        // Eager/rendezvous crossover: an explicit comm-layer threshold
        // overrides the machine's default eager limit.
        let eager_limit = self
            .comm
            .eager_crossover
            .unwrap_or(machine.cfg().eager_limit_bytes as u64);
        let eager = bytes <= eager_limit;
        let endpoint = self.comm.route(src, dst, tag);
        self.rec.record(
            src,
            when.0,
            Lane::Mpe,
            Event::MsgPosted {
                msg: id,
                peer: dst,
                tag,
                bytes,
                eager,
            },
        );
        if let Some(m) = self.rec.metrics() {
            m.messages_posted.inc();
            m.msg_bytes.record(bytes);
        }
        let aggregate = eager && self.comm.aggregation();
        let (state, send_complete) = if aggregate {
            // Aggregation: the payload parks in a staging buffer; the
            // library buffers it, so the send request is complete.
            (MsgState::Staged, true)
        } else if eager {
            // Eager: payload leaves immediately (possibly through the fault
            // plane); the library buffers it, so the send request is
            // complete as soon as it is injected.
            (MsgState::DataInFlight, true)
        } else {
            machine.net_send_ep(src, dst, CTRL_BYTES, when, encode(id, PH_RTS), endpoint);
            self.rec.record(
                src,
                when.0,
                Lane::Mpe,
                Event::RtsSent { msg: id, peer: dst },
            );
            (MsgState::RtsInFlight, false)
        };
        self.msgs.insert(
            id,
            Msg {
                src,
                dst,
                tag,
                bytes,
                payload,
                state,
                eager,
                endpoint,
                matched_recv: None,
                send_complete,
                attempt: 0,
                deadline: None,
            },
        );
        self.active[src].insert(id);
        self.active[dst].insert(id);
        if aggregate {
            self.stage_push(machine, id, when);
        } else if eager {
            self.inject_data(machine, id, when, false);
        }
        SendHandle(id)
    }

    /// Park an eager payload in its `(dst, endpoint)` staging buffer,
    /// flushing immediately if the byte threshold is crossed.
    fn stage_push(&mut self, machine: &mut MachineCtx<'_>, id: u64, when: SimTime) {
        let (src, dst, ep, bytes) = {
            let m = &self.msgs[&id];
            (m.src, m.dst, m.endpoint, m.bytes)
        };
        let buf = self
            .stage
            .entry((src, dst, ep))
            .or_insert_with(|| StageBuf {
                members: Vec::new(),
                bytes: 0,
                opened_at: when,
            });
        buf.members.push(id);
        buf.bytes += bytes;
        let full = buf.bytes >= self.comm.agg_bytes;
        self.rec.record(
            src,
            when.0,
            Lane::Mpe,
            Event::AggStaged {
                msg: id,
                peer: dst,
                endpoint: ep,
                bytes,
            },
        );
        if full {
            self.flush_stage(machine, (src, dst, ep), when, "bytes");
        }
    }

    /// Flush one staging buffer as a single coalesced wire packet. The
    /// batch id is minted from the sender's message-id namespace (only the
    /// sender's calls mint here, preserving the commuting-calls property).
    fn flush_stage(
        &mut self,
        machine: &mut MachineCtx<'_>,
        key: (Rank, Rank, EndpointId),
        when: SimTime,
        reason: &'static str,
    ) {
        let Some(buf) = self.stage.remove(&key) else {
            return;
        };
        let (src, dst, ep) = key;
        let batch = src as u64 + self.n as u64 * self.next_msg[src];
        assert!(
            batch <= MAX_MSG_ID,
            "message id space exhausted: wire tokens would alias"
        );
        self.next_msg[src] += 1;
        for &id in &buf.members {
            let m = self.msgs.get_mut(&id).unwrap();
            debug_assert_eq!(m.state, MsgState::Staged);
            m.state = MsgState::DataInFlight;
        }
        // The coalesced packet occupies at least a control packet — the
        // same floor as a lone eager payload, so the static lookahead
        // proof's per-channel minimum still holds.
        let wire_bytes = buf.bytes.max(CTRL_BYTES);
        machine.net_send_ep(src, dst, wire_bytes, when, encode(batch, PH_DATA), ep);
        self.rec.record(
            src,
            when.0,
            Lane::Mpe,
            Event::AggFlushed {
                batch,
                peer: dst,
                endpoint: ep,
                msgs: buf.members.len() as u64,
                bytes: buf.bytes,
                reason,
            },
        );
        self.batches.insert(batch, buf.members);
    }

    /// Messages currently parked in `rank`'s staging buffers. The
    /// scheduler must not end a step while this is non-zero.
    pub fn staged(&self, rank: Rank) -> usize {
        self.stage
            .iter()
            .filter(|((src, _, _), _)| *src == rank)
            .map(|(_, b)| b.members.len())
            .sum()
    }

    /// The earliest deadline flush among `rank`'s staging buffers — the
    /// scheduler arranges an MPE wakeup for it so the flush path runs even
    /// when no other event would wake the rank.
    pub fn next_flush_at(&self, rank: Rank) -> Option<SimTime> {
        self.stage
            .iter()
            .filter(|((src, _, _), _)| *src == rank)
            .map(|(_, b)| b.opened_at + SimDur(self.comm.agg_deadline_ps))
            .min()
    }

    /// Put a message's payload on the wire (eager post, rendezvous grant,
    /// or resend), consulting the fault plan for this transmission attempt.
    /// With `forced` the fault consult is bypassed — the last-resort
    /// delivery after the retry budget is exhausted.
    fn inject_data(&mut self, machine: &mut MachineCtx<'_>, id: u64, when: SimTime, forced: bool) {
        let (src, dst, bytes, tag, eager, attempt, ep) = {
            let m = &self.msgs[&id];
            (m.src, m.dst, m.bytes, m.tag, m.eager, m.attempt, m.endpoint)
        };
        // Eager messages occupy at least a control packet on the wire.
        let wire_bytes = if eager { bytes.max(CTRL_BYTES) } else { bytes };
        let fault = if forced {
            None
        } else {
            self.faults.as_ref().and_then(|p| {
                p.msg_fault(&MsgKey {
                    src: src as u32,
                    dst: dst as u32,
                    tag,
                    attempt,
                })
            })
        };
        let m = self.msgs.get_mut(&id).unwrap();
        match fault {
            Some(MsgFault::Drop) => {
                // Nothing reaches the wire. Arm the sender's resend timer.
                let plan = self.faults.as_ref().unwrap();
                m.state = MsgState::DataLost;
                m.deadline = Some(when + SimDur(plan.msg_timeout_ps()));
                FaultStats::bump(&plan.stats.injected_msg_drop);
                self.rec.record(
                    src,
                    when.0,
                    Lane::Mpe,
                    Event::FaultInjected {
                        kind: "msg_drop",
                        id,
                    },
                );
            }
            Some(MsgFault::Duplicate) => {
                m.state = MsgState::DataInFlight;
                m.deadline = None;
                machine.net_send_ep(src, dst, wire_bytes, when, encode(id, PH_DATA), ep);
                machine.net_send_ep(src, dst, wire_bytes, when, encode(id, PH_DATA), ep);
                let plan = self.faults.as_ref().unwrap();
                FaultStats::bump(&plan.stats.injected_msg_dup);
                self.rec.record(
                    src,
                    when.0,
                    Lane::Mpe,
                    Event::FaultInjected {
                        kind: "msg_dup",
                        id,
                    },
                );
            }
            Some(MsgFault::Delay { extra_ps }) => {
                m.state = MsgState::DataInFlight;
                m.deadline = None;
                machine.net_send_ep(
                    src,
                    dst,
                    wire_bytes,
                    when + SimDur(extra_ps),
                    encode(id, PH_DATA),
                    ep,
                );
                let plan = self.faults.as_ref().unwrap();
                FaultStats::bump(&plan.stats.injected_msg_delay);
                self.rec.record(
                    src,
                    when.0,
                    Lane::Mpe,
                    Event::FaultInjected {
                        kind: "msg_delay",
                        id,
                    },
                );
            }
            None => {
                m.state = MsgState::DataInFlight;
                m.deadline = None;
                machine.net_send_ep(src, dst, wire_bytes, when, encode(id, PH_DATA), ep);
            }
        }
    }

    /// Retire a message entirely (reliable mode: its ack landed, or a
    /// clean run consumed it). Late wire deliveries for it are suppressed
    /// via the minted-id watermark ([`MpiWorld::was_minted`]) — no
    /// retired-id set to grow without bound on long campaigns.
    fn retire_msg(&mut self, id: u64) {
        if let Some(m) = self.msgs.remove(&id) {
            self.active[m.src].remove(&id);
            self.active[m.dst].remove(&id);
        }
    }

    /// Whether `id` was ever minted by `isend` (or a batch flush): ids are
    /// drawn as `src + n * seq`, so the per-source sequence counters are a
    /// complete O(1) record of every id handed out — an unknown-but-minted
    /// id on the wire can only be a late duplicate of a retired message.
    fn was_minted(&self, id: u64) -> bool {
        let src = (id % self.n as u64) as usize;
        id / (self.n as u64) < self.next_msg[src]
    }

    /// Post a non-blocking receive for a message from `src` with `tag`.
    pub fn irecv(&mut self, rank: Rank, src: Rank, tag: Tag) -> RecvHandle {
        assert!(rank < self.n && src < self.n, "rank out of range");
        assert!(
            tag < APP_TAG_LIMIT,
            "tag {tag:#x} lies in the reserved control-plane namespace (>= {APP_TAG_LIMIT:#x})"
        );
        let id = rank as u64 + self.n as u64 * self.next_recv[rank];
        self.next_recv[rank] += 1;
        self.recvs.insert(
            id,
            RecvReq {
                matched_msg: None,
                complete: false,
                taken: false,
                payload: None,
            },
        );
        self.posted
            .entry((rank, src, tag))
            .or_default()
            .push_back(id);
        RecvHandle(id)
    }

    /// Record a wire delivery (called by the controller when a
    /// `MachineEvent::NetDeliver` with this token pops). The delivery is not
    /// yet *visible* to either rank — visibility requires `progress`.
    pub fn on_wire(&mut self, token: u64) {
        let (id, phase) = decode(token);
        if phase == PH_DATA {
            if let Some(members) = self.batches.remove(&id) {
                // A coalesced packet landed: every member becomes visible
                // in push order (ascending id per source, so FIFO matching
                // order is exactly the senders' program order).
                for m in members {
                    let msg = self.msgs.get_mut(&m).expect("batch member vanished");
                    debug_assert_eq!(msg.state, MsgState::DataInFlight);
                    msg.state = MsgState::DataArrived;
                }
                return;
            }
        }
        if self.faults.is_some() {
            // Reliable mode: duplicates, late copies, and acks are part of
            // the protocol rather than errors.
            if !self.msgs.contains_key(&id) {
                assert!(self.was_minted(id), "wire token for unknown message {id}");
                // A late duplicate (or redundant resend) of a message whose
                // ack already landed: suppressed exactly like a live dup.
                if phase == PH_DATA {
                    let plan = self.faults.as_ref().unwrap();
                    FaultStats::bump(&plan.stats.duplicates_suppressed);
                }
                return;
            }
            let state = self.msgs[&id].state;
            match (phase, state) {
                (PH_RTS, MsgState::RtsInFlight) => {
                    self.msgs.get_mut(&id).unwrap().state = MsgState::RtsArrived;
                }
                (PH_CTS, MsgState::CtsInFlight) => {
                    self.msgs.get_mut(&id).unwrap().state = MsgState::CtsArrived;
                }
                (PH_DATA, MsgState::DataInFlight | MsgState::DataLost) => {
                    // DataLost → DataArrived covers a stale copy landing
                    // after the sender already declared the attempt lost:
                    // delivery is delivery.
                    self.msgs.get_mut(&id).unwrap().state = MsgState::DataArrived;
                }
                (PH_DATA, MsgState::DataArrived | MsgState::AckWait) => {
                    // Duplicate delivery: the payload is already here (or
                    // even consumed). Suppress; the receive side must see
                    // each message exactly once.
                    let plan = self.faults.as_ref().unwrap();
                    FaultStats::bump(&plan.stats.duplicates_suppressed);
                }
                (PH_ACK, MsgState::AckWait) => {
                    // Ack landed at the sender's NIC: the message is done.
                    self.retire_msg(id);
                }
                (p, s) => panic!("message {id}: phase {p} delivery in state {s:?}"),
            }
            return;
        }
        let msg = self
            .msgs
            .get_mut(&id)
            .expect("wire token for unknown message");
        msg.state = match (phase, msg.state) {
            (PH_RTS, MsgState::RtsInFlight) => MsgState::RtsArrived,
            (PH_CTS, MsgState::CtsInFlight) => MsgState::CtsArrived,
            (PH_DATA, MsgState::DataInFlight) => MsgState::DataArrived,
            (p, s) => panic!("message {id}: phase {p} delivery in state {s:?}"),
        };
    }

    /// Drive the MPI library on `rank` at `now`: match arrived messages to
    /// posted receives, answer rendezvous handshakes, inject granted
    /// payloads, and complete requests. Returns the number of protocol
    /// actions taken (0 means nothing changed). The caller accounts the MPE
    /// call cost.
    pub fn progress(&mut self, rank: Rank, machine: &mut MachineCtx<'_>, now: SimTime) -> usize {
        self.progress_on(rank, machine, now, Lane::Mpe)
    }

    /// [`MpiWorld::progress`] with an explicit telemetry lane: the
    /// dedicated-progress-lane machine variant drives the protocol at wire
    /// delivery time on [`Lane::Progress`] instead of from the MPE, so the
    /// actions it takes are attributed to their own track.
    pub fn progress_on(
        &mut self,
        rank: Rank,
        machine: &mut MachineCtx<'_>,
        now: SimTime,
        lane: Lane,
    ) -> usize {
        let mut actions = 0;
        // Deadline-triggered aggregation flushes for this rank's staging
        // buffers: the byte threshold flushes at push, everything else
        // ages out here.
        if self.comm.aggregation() {
            let deadline = SimDur(self.comm.agg_deadline_ps);
            let due: Vec<(Rank, Rank, EndpointId)> = self
                .stage
                .iter()
                .filter(|((src, _, _), buf)| *src == rank && buf.opened_at + deadline <= now)
                .map(|(&key, _)| key)
                .collect();
            for key in due {
                self.flush_stage(machine, key, now, "deadline");
                actions += 1;
            }
        }
        // Deterministic iteration over this rank's live traffic only:
        // ascending message id gives MPI-FIFO matching.
        let ids: Vec<u64> = self.active[rank].iter().copied().collect();
        for id in ids {
            let (src, dst, tag, state, matched, eager, ep) = {
                let m = &self.msgs[&id];
                (
                    m.src,
                    m.dst,
                    m.tag,
                    m.state,
                    m.matched_recv,
                    m.eager,
                    m.endpoint,
                )
            };
            match state {
                MsgState::RtsArrived if dst == rank => {
                    // Match (or use an existing match) and grant the send.
                    let recv = matched.or_else(|| self.match_recv(id, dst, src, tag));
                    if let Some(r) = recv {
                        self.msgs.get_mut(&id).unwrap().matched_recv = Some(r);
                        machine.net_send_ep(dst, src, CTRL_BYTES, now, encode(id, PH_CTS), ep);
                        self.msgs.get_mut(&id).unwrap().state = MsgState::CtsInFlight;
                        self.rec
                            .record(dst, now.0, lane, Event::CtsSent { msg: id, peer: src });
                        actions += 1;
                    }
                }
                MsgState::CtsArrived if src == rank => {
                    // Rendezvous grant: payload through the fault plane.
                    self.inject_data(machine, id, now, false);
                    let m = self.msgs.get_mut(&id).unwrap();
                    // Rendezvous send buffer is released once injected (a
                    // dropped injection still buffers for resend).
                    m.send_complete = true;
                    actions += 1;
                }
                MsgState::DataLost if src == rank => {
                    // Reliable mode: the sender's ack deadline expired —
                    // detect and resend with exponential backoff, or force
                    // delivery once the retry budget is spent.
                    let deadline = self.msgs[&id].deadline.expect("lost msg without deadline");
                    if now >= deadline {
                        let plan = self.faults.as_ref().unwrap().clone();
                        FaultStats::bump(&plan.stats.detected_msg);
                        self.rec.record(
                            src,
                            now.0,
                            lane,
                            Event::FaultDetected {
                                kind: "msg_timeout",
                                id,
                            },
                        );
                        let attempt = {
                            let m = self.msgs.get_mut(&id).unwrap();
                            m.attempt += 1;
                            m.attempt
                        };
                        if attempt >= plan.max_attempts() {
                            // Retry budget exhausted: the recoverable path
                            // failed. Degrade gracefully — force the
                            // payload through, bypassing the fault consult,
                            // and account the fault as unrecovered.
                            FaultStats::bump(&plan.stats.unrecovered);
                            self.inject_data(machine, id, now, true);
                        } else {
                            FaultStats::bump(&plan.stats.resends_msg);
                            let when = now + SimDur(plan.backoff_ps(attempt));
                            self.inject_data(machine, id, when, false);
                        }
                        actions += 1;
                    }
                }
                MsgState::DataArrived if dst == rank => {
                    let recv = matched.or_else(|| self.match_recv(id, dst, src, tag));
                    if let Some(r) = recv {
                        let m = self.msgs.get_mut(&id).unwrap();
                        m.matched_recv = Some(r);
                        m.state = MsgState::Consumed;
                        let payload = m.payload.take();
                        let attempt = m.attempt;
                        debug_assert!(eager || m.send_complete);
                        let req = self.recvs.get_mut(&r).unwrap();
                        req.complete = true;
                        req.payload = payload;
                        self.recvs_completed += 1;
                        self.rec.record(
                            dst,
                            now.0,
                            lane,
                            Event::MsgDelivered {
                                msg: id,
                                peer: src,
                                tag,
                                bytes: self.msgs[&id].bytes,
                            },
                        );
                        actions += 1;
                        if let Some(plan) = self.faults.as_ref() {
                            // Reliable mode: acknowledge; the message stays
                            // live (suppressing duplicates) until the ack
                            // lands at the sender.
                            if attempt > 0 {
                                FaultStats::bump(&plan.stats.recovered_msg);
                                self.rec.record(
                                    dst,
                                    now.0,
                                    lane,
                                    Event::FaultRecovered {
                                        kind: "msg_resend",
                                        id,
                                    },
                                );
                            }
                            self.msgs.get_mut(&id).unwrap().state = MsgState::AckWait;
                            machine.net_send_ep(dst, src, CTRL_BYTES, now, encode(id, PH_ACK), ep);
                        } else {
                            // Fully finished: retire from the live indexes
                            // (the eager/rendezvous send side is complete
                            // by now).
                            self.retire_msg(id);
                        }
                    }
                }
                _ => {}
            }
        }
        self.rec.record(
            rank,
            now.0,
            lane,
            Event::ProgressCall {
                actions: actions as u64,
            },
        );
        if let Some(m) = self.rec.metrics() {
            m.progress_calls.inc();
        }
        // Cadenced compaction (bugfix: this used to run only at quiescence,
        // so long campaigns grew the receive-handle map without bound).
        // Compaction only drops handles whose payload was already consumed
        // — observably a no-op for every caller — so the shared cadence
        // counter does not break the commuting-calls property.
        self.calls_since_compact += 1;
        if self.calls_since_compact >= COMPACT_CADENCE {
            self.calls_since_compact = 0;
            self.compact();
        }
        actions
    }

    /// Pop the oldest unmatched posted receive on `rank` for `(src, tag)`.
    fn match_recv(&mut self, msg: u64, rank: Rank, src: Rank, tag: Tag) -> Option<u64> {
        let id = self.posted.get_mut(&(rank, src, tag))?.pop_front()?;
        self.recvs.get_mut(&id).unwrap().matched_msg = Some(msg);
        Some(id)
    }

    /// Has this send's buffer been handed to the network? (Observable only
    /// after a `progress` call on the sending rank, as in real MPI `Test`.)
    pub fn send_done(&self, h: SendHandle) -> bool {
        self.msgs.get(&h.0).is_none_or(|m| m.send_complete)
    }

    /// Has this receive completed? A handle that was already retired or
    /// compacted away reports `true` — only completed-and-consumed
    /// receives ever leave the map.
    pub fn recv_done(&self, h: RecvHandle) -> bool {
        self.recvs.get(&h.0).is_none_or(|r| r.complete)
    }

    /// Take the functional payload of a completed receive.
    ///
    /// # Panics
    /// Panics if the receive has not completed.
    pub fn take_payload(&mut self, h: RecvHandle) -> Option<Vec<f64>> {
        let r = self.recvs.get_mut(&h.0).expect("unknown recv");
        assert!(r.complete, "take_payload before completion");
        r.taken = true;
        r.payload.take()
    }

    /// Whether every send in `sends` has completed (MPI `Testall` shape).
    pub fn all_sends_done(&self, sends: &[SendHandle]) -> bool {
        sends.iter().all(|&h| self.send_done(h))
    }

    /// Whether an unmatched message from `src` with `tag` is waiting at
    /// `rank` (MPI `Iprobe` shape): its payload has arrived (eager) or its
    /// RTS has (rendezvous), but no posted receive has claimed it.
    ///
    /// Agreement contract with `take_payload`/`retire_recv` (bugfix): a
    /// probe hit is a message an `irecv` + `progress` on this rank will
    /// deliver, take, and retire — states a suppressed duplicate can reach
    /// (`Consumed`, `AckWait`) are never reported, and the scan covers the
    /// live index only, so a retired message can never probe positive off
    /// stale bookkeeping.
    pub fn iprobe(&self, rank: Rank, src: Rank, tag: Tag) -> bool {
        self.active[rank].iter().any(|id| {
            self.msgs.get(id).is_some_and(|m| {
                m.dst == rank
                    && m.src == src
                    && m.tag == tag
                    && m.matched_recv.is_none()
                    && matches!(m.state, MsgState::RtsArrived | MsgState::DataArrived)
            })
        })
    }

    /// Messages still live (in flight or awaiting consumption) that involve
    /// `rank` as sender or receiver.
    pub fn outstanding(&self, rank: Rank) -> usize {
        self.active[rank].len()
    }

    /// Reliable mode: sends from `rank` whose delivery has not yet been
    /// acknowledged (including dropped payloads awaiting resend). A rank
    /// must not end its step while this is non-zero, or a lost payload
    /// could strand its receiver forever.
    pub fn unacked(&self, rank: Rank) -> usize {
        self.active[rank]
            .iter()
            .filter(|id| {
                self.msgs
                    .get(id)
                    .is_some_and(|m| m.src == rank && !matches!(m.state, MsgState::Consumed))
            })
            .count()
    }

    /// Reliable mode: the earliest resend deadline among `rank`'s lost
    /// payloads — the scheduler arranges an MPE wakeup timer for it so the
    /// detection path runs even when no other event would wake the rank.
    pub fn next_deadline(&self, rank: Rank) -> Option<SimTime> {
        self.active[rank]
            .iter()
            .filter_map(|id| {
                let m = self.msgs.get(id)?;
                if m.src == rank && m.state == MsgState::DataLost {
                    m.deadline
                } else {
                    None
                }
            })
            .min()
    }

    /// Free the bookkeeping of a completed receive (after the payload has
    /// been consumed). Keeps long runs O(live traffic).
    pub fn retire_recv(&mut self, h: RecvHandle) {
        if let Some(r) = self.recvs.get(&h.0) {
            assert!(r.complete, "retiring an incomplete receive");
            self.recvs.remove(&h.0);
        }
    }

    /// True when no message is still in flight, staged, or awaiting
    /// consumption (quiescence check between timesteps). Fully finished
    /// messages are retired eagerly, so this checks emptiness of the live
    /// set (staged and batched members are live entries in it).
    pub fn quiescent(&self) -> bool {
        debug_assert!(!self.msgs.is_empty() || (self.stage.is_empty() && self.batches.is_empty()));
        self.msgs.is_empty()
    }

    /// Sizes of the message- and receive-handle maps — the memory the
    /// library holds per live (or not-yet-compacted) request. Campaign
    /// tests pin these to stay bounded over long runs.
    pub fn handle_map_sizes(&self) -> (usize, usize) {
        (self.msgs.len(), self.recvs.len())
    }

    /// Outstanding handles at the end of a run, by `(rank, tag)`: one entry
    /// per live message (attributed to the *sending* rank) and one per
    /// posted-but-never-matched receive (attributed to the receiving rank).
    /// A clean run returns an empty vector; anything else is a leak the
    /// controller surfaces in `RunReport` instead of letting it vanish
    /// silently.
    pub fn leaked(&self) -> Vec<(Rank, Tag)> {
        let mut out: Vec<(Rank, Tag)> = self.msgs.values().map(|m| (m.src, m.tag)).collect();
        for (&(rank, _src, tag), q) in &self.posted {
            out.extend(q.iter().map(|_| (rank, tag)));
        }
        out.sort_unstable();
        out
    }

    /// Drop completed receives whose payload was consumed (fully finished
    /// messages are already retired eagerly by `progress`). Runs on a
    /// bounded cadence from `progress` — merely-complete receives are kept
    /// so `recv_done` pollers and pending `take_payload` calls stay valid.
    pub fn compact(&mut self) {
        self.recvs.retain(|_, r| !(r.complete && r.taken));
    }
}

/// A [`MpiWorld`] shared by concurrently advancing rank shards.
///
/// The world sits behind a mutex; every method locks for the duration of
/// exactly one library call. Determinism under the PDES window protocol is
/// **not** provided by the lock (lock acquisition order varies run to run)
/// — it comes from the calls of different ranks *commuting* within one
/// lookahead window:
///
/// * message and receive ids are minted from per-rank namespaces, so the
///   ids a rank draws never depend on other ranks' call timing;
/// * each message's state is only ever touched by one side per window (the
///   other side cannot observe the transition until the barrier merge
///   delivers the corresponding wire event);
/// * matching is FIFO per `(dst, src, tag)` and driven solely by the
///   destination rank;
/// * the shared counters (`sends_posted`, `recvs_completed`, fault stats)
///   are pure accumulators.
///
/// Any interleaving of different ranks' calls therefore produces the same
/// world state at the window barrier, which is what makes the PDES engine
/// bit-identical to the serial one.
pub struct SharedMpi {
    inner: std::sync::Mutex<MpiWorld>,
}

impl SharedMpi {
    /// Wrap a world for shared access.
    pub fn new(world: MpiWorld) -> Self {
        SharedMpi {
            inner: std::sync::Mutex::new(world),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MpiWorld> {
        self.inner.lock().expect("MpiWorld mutex poisoned")
    }

    /// Thread a telemetry recorder through the protocol events.
    pub fn set_recorder(&self, rec: Recorder) {
        self.lock().set_recorder(rec);
    }

    /// Install a fault plan (see [`MpiWorld::set_fault_plan`]).
    pub fn set_fault_plan(&self, plan: Arc<FaultPlan>) {
        self.lock().set_fault_plan(plan);
    }

    /// Install communication-layer knobs (see [`MpiWorld::set_comm`]).
    pub fn set_comm(&self, comm: CommConfig) {
        self.lock().set_comm(comm);
    }

    /// The installed communication-layer knobs.
    pub fn comm(&self) -> CommConfig {
        self.lock().comm()
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.lock().size()
    }

    /// See [`MpiWorld::isend`].
    #[allow(clippy::too_many_arguments)]
    pub fn isend(
        &self,
        machine: &mut MachineCtx<'_>,
        src: Rank,
        dst: Rank,
        tag: Tag,
        bytes: u64,
        payload: Option<Vec<f64>>,
        when: SimTime,
    ) -> SendHandle {
        self.lock()
            .isend(machine, src, dst, tag, bytes, payload, when)
    }

    /// See [`MpiWorld::irecv`].
    pub fn irecv(&self, rank: Rank, src: Rank, tag: Tag) -> RecvHandle {
        self.lock().irecv(rank, src, tag)
    }

    /// See [`MpiWorld::on_wire`].
    pub fn on_wire(&self, token: u64) {
        self.lock().on_wire(token);
    }

    /// See [`MpiWorld::progress`].
    pub fn progress(&self, rank: Rank, machine: &mut MachineCtx<'_>, now: SimTime) -> usize {
        self.lock().progress(rank, machine, now)
    }

    /// See [`MpiWorld::progress_on`].
    pub fn progress_on(
        &self,
        rank: Rank,
        machine: &mut MachineCtx<'_>,
        now: SimTime,
        lane: Lane,
    ) -> usize {
        self.lock().progress_on(rank, machine, now, lane)
    }

    /// See [`MpiWorld::staged`].
    pub fn staged(&self, rank: Rank) -> usize {
        self.lock().staged(rank)
    }

    /// See [`MpiWorld::next_flush_at`].
    pub fn next_flush_at(&self, rank: Rank) -> Option<SimTime> {
        self.lock().next_flush_at(rank)
    }

    /// See [`MpiWorld::send_done`].
    pub fn send_done(&self, h: SendHandle) -> bool {
        self.lock().send_done(h)
    }

    /// See [`MpiWorld::recv_done`].
    pub fn recv_done(&self, h: RecvHandle) -> bool {
        self.lock().recv_done(h)
    }

    /// See [`MpiWorld::take_payload`].
    pub fn take_payload(&self, h: RecvHandle) -> Option<Vec<f64>> {
        self.lock().take_payload(h)
    }

    /// See [`MpiWorld::all_sends_done`].
    pub fn all_sends_done(&self, sends: &[SendHandle]) -> bool {
        self.lock().all_sends_done(sends)
    }

    /// See [`MpiWorld::iprobe`].
    pub fn iprobe(&self, rank: Rank, src: Rank, tag: Tag) -> bool {
        self.lock().iprobe(rank, src, tag)
    }

    /// See [`MpiWorld::outstanding`].
    pub fn outstanding(&self, rank: Rank) -> usize {
        self.lock().outstanding(rank)
    }

    /// See [`MpiWorld::unacked`].
    pub fn unacked(&self, rank: Rank) -> usize {
        self.lock().unacked(rank)
    }

    /// See [`MpiWorld::next_deadline`].
    pub fn next_deadline(&self, rank: Rank) -> Option<SimTime> {
        self.lock().next_deadline(rank)
    }

    /// See [`MpiWorld::retire_recv`].
    pub fn retire_recv(&self, h: RecvHandle) {
        self.lock().retire_recv(h);
    }

    /// See [`MpiWorld::quiescent`].
    pub fn quiescent(&self) -> bool {
        self.lock().quiescent()
    }

    /// See [`MpiWorld::leaked`].
    pub fn leaked(&self) -> Vec<(Rank, Tag)> {
        self.lock().leaked()
    }

    /// See [`MpiWorld::compact`].
    pub fn compact(&self) {
        self.lock().compact();
    }

    /// See [`MpiWorld::handle_map_sizes`].
    pub fn handle_map_sizes(&self) -> (usize, usize) {
        self.lock().handle_map_sizes()
    }

    /// Wire-level statistic: sends posted so far.
    pub fn sends_posted(&self) -> u64 {
        self.lock().sends_posted
    }

    /// Wire-level statistic: receives completed so far.
    pub fn recvs_completed(&self) -> u64 {
        self.lock().recvs_completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_sim::{Machine, MachineConfig, MachineEvent};

    fn setup(n: usize) -> (Machine, MpiWorld) {
        (Machine::new(MachineConfig::sw26010(), n), MpiWorld::new(n))
    }

    /// Drain all machine events into the world.
    fn drain(m: &mut Machine, w: &mut MpiWorld) {
        while let Some((_, ev)) = m.pop() {
            if let MachineEvent::NetDeliver { token, .. } = ev {
                w.on_wire(token);
            }
        }
    }

    #[test]
    fn eager_send_completes_immediately_recv_needs_progress() {
        let (mut m, mut w) = setup(2);
        let s = w.isend(&mut m.ctx(0), 0, 1, 7, 100, None, SimTime::ZERO);
        assert!(w.send_done(s), "eager sends buffer and complete");
        let r = w.irecv(1, 0, 7);
        assert!(!w.recv_done(r));
        drain(&mut m, &mut w);
        // Arrived, but invisible until rank 1 progresses.
        assert!(!w.recv_done(r));
        let now = m.now();
        assert!(w.progress(1, &mut m.ctx(1), now) > 0);
        assert!(w.recv_done(r));
        assert!(w.quiescent());
    }

    #[test]
    fn rendezvous_requires_both_hosts_to_progress() {
        let (mut m, mut w) = setup(2);
        let bytes = 1_000_000; // > eager limit
        let s = w.isend(&mut m.ctx(0), 0, 1, 3, bytes, None, SimTime::ZERO);
        let r = w.irecv(1, 0, 3);
        assert!(!w.send_done(s), "rendezvous sends are not complete at post");

        // RTS arrives; receiver progress sends CTS.
        drain(&mut m, &mut w);
        let t = m.now();
        assert_eq!(w.progress(1, &mut m.ctx(1), t), 1);
        assert!(!w.send_done(s));
        assert!(!w.recv_done(r));

        // CTS arrives; *sender* progress injects the payload.
        drain(&mut m, &mut w);
        let t = m.now();
        assert_eq!(w.progress(0, &mut m.ctx(0), t), 1);
        assert!(w.send_done(s), "payload injected, buffer released");

        // Payload arrives; receiver progress completes the receive.
        drain(&mut m, &mut w);
        let t = m.now();
        assert_eq!(w.progress(1, &mut m.ctx(1), t), 1);
        assert!(w.recv_done(r));
        assert!(w.quiescent());
    }

    #[test]
    fn rendezvous_stalls_without_posted_recv() {
        let (mut m, mut w) = setup(2);
        w.isend(&mut m.ctx(0), 0, 1, 3, 1_000_000, None, SimTime::ZERO);
        drain(&mut m, &mut w);
        // Receiver progresses but has no matching irecv: nothing happens.
        let t = m.now();
        assert_eq!(w.progress(1, &mut m.ctx(1), t), 0);
        // Posting the receive unblocks the handshake.
        let r = w.irecv(1, 0, 3);
        let t = m.now();
        assert_eq!(w.progress(1, &mut m.ctx(1), t), 1);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(0, &mut m.ctx(0), t);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m.ctx(1), t);
        assert!(w.recv_done(r));
    }

    #[test]
    fn payload_travels_functionally() {
        let (mut m, mut w) = setup(2);
        let data = vec![1.5, 2.5, 3.5];
        w.isend(
            &mut m.ctx(0),
            0,
            1,
            9,
            24,
            Some(data.clone()),
            SimTime::ZERO,
        );
        let r = w.irecv(1, 0, 9);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m.ctx(1), t);
        assert!(w.recv_done(r));
        assert_eq!(w.take_payload(r), Some(data));
    }

    #[test]
    fn matching_is_fifo_per_source_and_tag() {
        let (mut m, mut w) = setup(2);
        w.isend(&mut m.ctx(0), 0, 1, 5, 8, Some(vec![1.0]), SimTime::ZERO);
        w.isend(&mut m.ctx(0), 0, 1, 5, 8, Some(vec![2.0]), SimTime::ZERO);
        let r1 = w.irecv(1, 0, 5);
        let r2 = w.irecv(1, 0, 5);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m.ctx(1), t);
        assert!(w.recv_done(r1) && w.recv_done(r2));
        // First posted receive gets the first sent message.
        assert_eq!(w.take_payload(r1), Some(vec![1.0]));
        assert_eq!(w.take_payload(r2), Some(vec![2.0]));
    }

    #[test]
    fn tags_separate_message_streams() {
        let (mut m, mut w) = setup(2);
        w.isend(&mut m.ctx(0), 0, 1, 100, 8, Some(vec![1.0]), SimTime::ZERO);
        w.isend(&mut m.ctx(0), 0, 1, 200, 8, Some(vec![2.0]), SimTime::ZERO);
        let r200 = w.irecv(1, 0, 200);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m.ctx(1), t);
        assert!(w.recv_done(r200));
        assert_eq!(w.take_payload(r200), Some(vec![2.0]));
        assert!(!w.quiescent(), "tag-100 message still unconsumed");
        let r100 = w.irecv(1, 0, 100);
        let t = m.now();
        w.progress(1, &mut m.ctx(1), t);
        assert!(w.recv_done(r100));
        assert!(w.quiescent());
    }

    #[test]
    fn compact_drops_finished_traffic() {
        let (mut m, mut w) = setup(2);
        w.isend(&mut m.ctx(0), 0, 1, 1, 8, None, SimTime::ZERO);
        let r = w.irecv(1, 0, 1);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m.ctx(1), t);
        assert!(w.recv_done(r));
        // Completed but not yet consumed: compaction must keep the handle
        // so a pending take_payload stays valid.
        w.compact();
        assert_eq!(w.recvs.len(), 1, "unconsumed receive survives compaction");
        let _ = w.take_payload(r);
        w.compact();
        assert!(w.msgs.is_empty() && w.recvs.is_empty());
        assert_eq!(w.recvs_completed, 1);
        assert!(w.recv_done(r), "compacted handle still reports done");
    }

    #[test]
    fn iprobe_and_outstanding_track_unmatched_arrivals() {
        let (mut m, mut w) = setup(2);
        let s = w.isend(&mut m.ctx(0), 0, 1, 5, 64, None, SimTime::ZERO);
        assert_eq!(w.outstanding(0), 1);
        assert_eq!(w.outstanding(1), 1);
        assert!(!w.iprobe(1, 0, 5), "not arrived yet");
        drain(&mut m, &mut w);
        assert!(w.iprobe(1, 0, 5), "arrived, unmatched");
        assert!(!w.iprobe(1, 0, 6), "wrong tag");
        assert!(!w.iprobe(0, 1, 5), "wrong direction");
        let r = w.irecv(1, 0, 5);
        let now = m.now();
        w.progress(1, &mut m.ctx(1), now);
        assert!(w.recv_done(r));
        assert!(!w.iprobe(1, 0, 5), "consumed");
        assert_eq!(w.outstanding(0), 0);
        assert!(w.all_sends_done(&[s]));
    }

    #[test]
    #[should_panic(expected = "self-sends")]
    fn self_sends_rejected() {
        let (mut m, mut w) = setup(2);
        w.isend(&mut m.ctx(1), 1, 1, 0, 8, None, SimTime::ZERO);
    }

    // ------------------------------------------------------------------
    // Tag namespace separation (control plane vs. application)
    // ------------------------------------------------------------------

    #[test]
    fn wire_token_encoding_is_injective_up_to_max_msg_id() {
        // decode ∘ encode is the identity for every representable id and
        // every protocol phase — including both ends of the id range.
        for id in [0, 1, 2, 1 << 20, MAX_MSG_ID - 1, MAX_MSG_ID] {
            for ph in [PH_RTS, PH_CTS, PH_DATA, PH_ACK] {
                assert_eq!(decode(encode(id, ph)), (id, ph));
            }
        }
        // Distinct (id, phase) pairs map to distinct tokens.
        let ids = [0u64, 1, 7, MAX_MSG_ID];
        let mut seen = std::collections::BTreeSet::new();
        for &id in &ids {
            for ph in [PH_RTS, PH_CTS, PH_DATA, PH_ACK] {
                assert!(
                    seen.insert(encode(id, ph)),
                    "token collision at ({id}, {ph})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "wire-token namespace")]
    fn message_ids_past_the_encoding_bound_are_rejected() {
        encode(MAX_MSG_ID + 1, PH_ACK);
    }

    #[test]
    #[should_panic(expected = "reserved control-plane namespace")]
    fn reserved_tags_are_rejected_at_isend() {
        let (mut m, mut w) = setup(2);
        w.isend(&mut m.ctx(0), 0, 1, APP_TAG_LIMIT, 8, None, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "reserved control-plane namespace")]
    fn reserved_tags_are_rejected_at_irecv() {
        let (_m, mut w) = setup(2);
        w.irecv(1, 0, u64::MAX);
    }

    #[test]
    fn app_tags_below_the_boundary_still_flow() {
        // Regression: the largest legal app tag is an ordinary tag — the
        // namespace check must not clip real traffic.
        let (mut m, mut w) = setup(2);
        let tag = APP_TAG_LIMIT - 1;
        w.isend(&mut m.ctx(0), 0, 1, tag, 8, Some(vec![6.5]), SimTime::ZERO);
        let r = w.irecv(1, 0, tag);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m.ctx(1), t);
        assert!(w.recv_done(r));
        assert_eq!(w.take_payload(r), Some(vec![6.5]));
    }

    // ------------------------------------------------------------------
    // Reliable (fault-plane) mode
    // ------------------------------------------------------------------

    use sw_resilience::FaultConfig;

    fn reliable(n: usize, cfg: FaultConfig) -> (Machine, MpiWorld, Arc<FaultPlan>) {
        let (mut m, mut w) = setup(n);
        let plan = Arc::new(FaultPlan::new(cfg));
        w.set_fault_plan(plan.clone());
        m.set_fault_plan(plan.clone());
        (m, w, plan)
    }

    /// Drain events and progress both ranks until the world is quiescent
    /// (or a step budget is exhausted — which fails the test).
    fn settle(m: &mut Machine, w: &mut MpiWorld, ranks: usize) {
        for _ in 0..64 {
            drain(m, w);
            let now = m.now();
            let mut acted = 0;
            for r in 0..ranks {
                acted += w.progress(r, &mut m.ctx(r), now);
            }
            if w.quiescent() && m.peek_time().is_none() {
                return;
            }
            if acted == 0 && m.peek_time().is_none() {
                // Only a future resend deadline can move things forward.
                let dl = (0..ranks).filter_map(|r| w.next_deadline(r)).min();
                match dl {
                    Some(t) => {
                        // Jump virtual time by scheduling + popping a timer.
                        m.timer_at(0, t, u64::MAX);
                        let _ = m.pop();
                    }
                    None => break,
                }
            }
        }
        panic!("world failed to settle: quiescent={}", w.quiescent());
    }

    #[test]
    fn dropped_payload_is_detected_resent_and_recovered() {
        // Force a drop on attempt 0; guarantee_recovery cleans later tries.
        let cfg = FaultConfig {
            msg_drop_ppm: 999_999,
            max_attempts: 4,
            ..FaultConfig::none(21)
        };
        let (mut m, mut w, plan) = reliable(2, cfg);
        let data = vec![4.25, -1.5];
        let s = w.isend(
            &mut m.ctx(0),
            0,
            1,
            7,
            16,
            Some(data.clone()),
            SimTime::ZERO,
        );
        let r = w.irecv(1, 0, 7);
        settle(&mut m, &mut w, 2);
        assert!(w.send_done(s) && w.recv_done(r));
        assert_eq!(w.take_payload(r), Some(data), "payload survives the drop");
        let c = plan.stats.snapshot();
        assert!(c.injected_msg_drop >= 1);
        assert_eq!(c.detected_msg, c.injected_msg_drop, "every drop detected");
        assert!(c.resends_msg >= 1);
        assert_eq!(c.recovered_msg, 1, "exactly one message recovered");
        assert_eq!(c.unrecovered, 0);
        assert!(w.quiescent(), "ack drained, nothing live");
        assert_eq!(w.unacked(0), 0);
    }

    #[test]
    fn duplicate_delivery_is_suppressed_exactly_once() {
        let cfg = FaultConfig {
            msg_dup_ppm: 999_999,
            ..FaultConfig::none(22)
        };
        let (mut m, mut w, plan) = reliable(2, cfg);
        let s = w.isend(&mut m.ctx(0), 0, 1, 5, 8, Some(vec![9.0]), SimTime::ZERO);
        let r = w.irecv(1, 0, 5);
        settle(&mut m, &mut w, 2);
        assert!(w.send_done(s) && w.recv_done(r));
        assert_eq!(w.take_payload(r), Some(vec![9.0]));
        let c = plan.stats.snapshot();
        assert_eq!(c.injected_msg_dup, 1);
        assert_eq!(
            c.duplicates_suppressed, 1,
            "two copies on the wire, one delivery, one suppression"
        );
        assert_eq!(w.recvs_completed, 1, "receive completed exactly once");
    }

    #[test]
    fn delayed_payload_arrives_late_but_intact() {
        let cfg = FaultConfig {
            msg_delay_ppm: 999_999,
            delay_ps: 5_000_000,
            ..FaultConfig::none(23)
        };
        let (mut m, mut w, plan) = reliable(2, cfg);
        w.isend(&mut m.ctx(0), 0, 1, 3, 8, Some(vec![1.0]), SimTime::ZERO);
        let r = w.irecv(1, 0, 3);
        settle(&mut m, &mut w, 2);
        assert!(w.recv_done(r));
        assert!(m.now().0 >= 5_000_000, "delivery waited out the delay");
        assert_eq!(plan.stats.snapshot().injected_msg_delay, 1);
    }

    #[test]
    fn exhausted_retry_budget_forces_delivery_and_counts_unrecovered() {
        // Hostile: every attempt drops and recovery is NOT guaranteed.
        let cfg = FaultConfig {
            msg_drop_ppm: 999_999,
            max_attempts: 2,
            guarantee_recovery: false,
            ..FaultConfig::none(24)
        };
        let (mut m, mut w, plan) = reliable(2, cfg);
        let r = w.irecv(1, 0, 1);
        w.isend(&mut m.ctx(0), 0, 1, 1, 8, Some(vec![2.0]), SimTime::ZERO);
        settle(&mut m, &mut w, 2);
        assert!(w.recv_done(r), "forced delivery still completes the run");
        assert_eq!(w.take_payload(r), Some(vec![2.0]));
        let c = plan.stats.snapshot();
        assert!(c.unrecovered >= 1, "budget exhaustion is accounted");
    }

    #[test]
    fn rendezvous_payload_goes_through_fault_plane_too() {
        let cfg = FaultConfig {
            msg_drop_ppm: 999_999,
            max_attempts: 3,
            ..FaultConfig::none(25)
        };
        let (mut m, mut w, plan) = reliable(2, cfg);
        let bytes = 1_000_000; // > eager limit: rendezvous
        let s = w.isend(&mut m.ctx(0), 0, 1, 9, bytes, None, SimTime::ZERO);
        let r = w.irecv(1, 0, 9);
        settle(&mut m, &mut w, 2);
        assert!(w.send_done(s) && w.recv_done(r));
        let c = plan.stats.snapshot();
        assert!(c.injected_msg_drop >= 1, "rendezvous payload was dropped");
        assert_eq!(c.unrecovered, 0);
        assert!(w.quiescent());
    }

    #[test]
    fn clean_plan_matches_unfaulted_protocol_shape() {
        // A fault plan that injects nothing still runs the ack layer;
        // message delivery and payloads are unchanged.
        let (mut m, mut w, plan) = reliable(2, FaultConfig::none(26));
        let s = w.isend(&mut m.ctx(0), 0, 1, 7, 8, Some(vec![3.5]), SimTime::ZERO);
        let r = w.irecv(1, 0, 7);
        assert_eq!(w.unacked(0), 1);
        settle(&mut m, &mut w, 2);
        assert!(w.send_done(s) && w.recv_done(r));
        assert_eq!(w.take_payload(r), Some(vec![3.5]));
        assert_eq!(w.unacked(0), 0);
        assert_eq!(plan.stats.snapshot().total_injected(), 0);
        assert!(w.quiescent());
    }

    // ------------------------------------------------------------------
    // Multi-endpoint routing, crossover, aggregation, progress lane
    // ------------------------------------------------------------------

    use sw_telemetry::Recorder;

    fn comm(endpoints: u32, agg_bytes: u64, agg_deadline_ps: u64) -> CommConfig {
        CommConfig {
            endpoints,
            agg_bytes,
            agg_deadline_ps,
            ..CommConfig::default()
        }
    }

    #[test]
    fn endpoint_routing_is_deterministic_and_in_range() {
        let c = comm(4, 0, 0);
        for src in 0..3usize {
            for dst in 0..3usize {
                for tag in [0u64, 7, 12345] {
                    let ep = c.route(src, dst, tag);
                    assert!(ep < 4);
                    assert_eq!(ep, c.route(src, dst, tag), "pure function");
                }
            }
        }
        // One endpoint: everything on lane 0, no hash in the path.
        let c1 = comm(1, 0, 0);
        assert_eq!(c1.route(2, 1, 99), 0);
        // The spread is non-trivial: some pair of channels lands on
        // different lanes (fold is a real hash, not a constant).
        let lanes: std::collections::BTreeSet<u32> = (0..16u64).map(|t| c.route(0, 1, t)).collect();
        assert!(lanes.len() > 1, "16 tags all hashed to one endpoint");
    }

    #[test]
    fn endpoints_deliver_the_same_payloads_as_one_lane() {
        // Same traffic, 1 vs 4 endpoints: identical payloads, identical
        // matching order — endpoints change injection timing only.
        let run = |endpoints: u32| -> Vec<Vec<f64>> {
            let (mut m, mut w) = setup(3);
            w.set_comm(comm(endpoints, 0, 0));
            let mut handles = Vec::new();
            for i in 0..6u64 {
                let src = (i % 2) as usize;
                let payload = vec![i as f64, (i * i) as f64];
                w.isend(
                    &mut m.ctx(src),
                    src,
                    2,
                    i % 3,
                    64 + i,
                    Some(payload),
                    SimTime::ZERO,
                );
                handles.push(w.irecv(2, src, i % 3));
            }
            for _ in 0..16 {
                drain(&mut m, &mut w);
                let now = m.now();
                for r in 0..3 {
                    w.progress(r, &mut m.ctx(r), now);
                }
                if w.quiescent() {
                    break;
                }
            }
            assert!(w.quiescent());
            handles
                .into_iter()
                .map(|h| w.take_payload(h).unwrap())
                .collect()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn crossover_overrides_the_machine_eager_limit() {
        // Below the machine limit but above a tiny crossover: rendezvous.
        let (mut m, mut w) = setup(2);
        w.set_comm(CommConfig {
            eager_crossover: Some(256),
            ..CommConfig::default()
        });
        let s = w.isend(&mut m.ctx(0), 0, 1, 1, 257, None, SimTime::ZERO);
        assert!(!w.send_done(s), "257 > crossover 256: rendezvous path");
        // At the threshold: eager.
        let s2 = w.isend(&mut m.ctx(0), 0, 1, 2, 256, None, SimTime::ZERO);
        assert!(w.send_done(s2), "256 <= crossover 256: eager path");
        // Above the machine limit but under a raised crossover: eager.
        let (mut m3, mut w3) = setup(2);
        let machine_limit = MachineConfig::sw26010().eager_limit_bytes as u64;
        w3.set_comm(CommConfig {
            eager_crossover: Some(machine_limit * 4),
            ..CommConfig::default()
        });
        let s3 = w3.isend(
            &mut m3.ctx(0),
            0,
            1,
            1,
            machine_limit * 2,
            None,
            SimTime::ZERO,
        );
        assert!(w3.send_done(s3), "crossover raised the eager boundary");
    }

    #[test]
    fn aggregation_flushes_by_bytes_and_unpacks_in_push_order() {
        let (mut m, mut w) = setup(2);
        w.set_comm(comm(1, 48, 1_000_000_000));
        let s1 = w.isend(&mut m.ctx(0), 0, 1, 5, 16, Some(vec![1.0]), SimTime::ZERO);
        let s2 = w.isend(&mut m.ctx(0), 0, 1, 5, 16, Some(vec![2.0]), SimTime::ZERO);
        assert!(w.send_done(s1) && w.send_done(s2), "staged sends complete");
        assert_eq!(w.staged(0), 2, "both parked below the 48-byte threshold");
        assert!(m.peek_time().is_none(), "nothing on the wire yet");
        // Third push crosses the threshold: one coalesced packet.
        w.isend(&mut m.ctx(0), 0, 1, 5, 16, Some(vec![3.0]), SimTime::ZERO);
        assert_eq!(w.staged(0), 0, "flush-by-bytes drained the buffer");
        let r1 = w.irecv(1, 0, 5);
        let r2 = w.irecv(1, 0, 5);
        let r3 = w.irecv(1, 0, 5);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m.ctx(1), t);
        // Push order preserved through the coalesced packet.
        assert_eq!(w.take_payload(r1), Some(vec![1.0]));
        assert_eq!(w.take_payload(r2), Some(vec![2.0]));
        assert_eq!(w.take_payload(r3), Some(vec![3.0]));
        assert!(w.quiescent());
    }

    #[test]
    fn aggregation_flushes_by_deadline() {
        let (mut m, mut w) = setup(2);
        let deadline = 5_000_000u64;
        w.set_comm(comm(1, 1 << 30, deadline));
        w.isend(&mut m.ctx(0), 0, 1, 3, 8, Some(vec![7.5]), SimTime::ZERO);
        assert_eq!(w.staged(0), 1);
        assert_eq!(w.next_flush_at(0), Some(SimTime(deadline)));
        // Progress before the deadline: still parked.
        w.progress(0, &mut m.ctx(0), SimTime(deadline - 1));
        assert_eq!(w.staged(0), 1);
        // Progress at the deadline: flushed.
        let acted = w.progress(0, &mut m.ctx(0), SimTime(deadline));
        assert!(acted >= 1);
        assert_eq!(w.staged(0), 0);
        assert_eq!(w.next_flush_at(0), None);
        let r = w.irecv(1, 0, 3);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m.ctx(1), t);
        assert_eq!(w.take_payload(r), Some(vec![7.5]));
        assert!(w.quiescent());
    }

    #[test]
    fn progress_on_attributes_actions_to_the_given_lane() {
        let (mut m, mut w) = setup(2);
        w.set_recorder(Recorder::new(2));
        w.isend(&mut m.ctx(0), 0, 1, 7, 8, Some(vec![1.0]), SimTime::ZERO);
        let r = w.irecv(1, 0, 7);
        drain(&mut m, &mut w);
        let now = m.now();
        w.progress_on(1, &mut m.ctx(1), now, Lane::Progress);
        assert!(w.recv_done(r));
        let snap = w.rec.snapshot();
        assert!(
            snap[1]
                .iter()
                .any(|e| e.lane == Lane::Progress && matches!(e.event, Event::MsgDelivered { .. })),
            "delivery recorded on the progress lane"
        );
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn aggregation_rejects_fault_plans() {
        let (_m, mut w) = setup(2);
        w.set_comm(comm(1, 512, 1_000));
        w.set_fault_plan(Arc::new(FaultPlan::new(FaultConfig::none(1))));
    }

    #[test]
    fn handle_maps_stay_bounded_over_10k_messages() {
        // Bugfix regression: compaction used to wait for quiescence and the
        // reliable layer kept a retired-id set forever; both maps must now
        // stay O(cadence) over a long campaign.
        let (mut m, mut w, _plan) = reliable(2, FaultConfig::none(30));
        let (mut max_msgs, mut max_recvs) = (0usize, 0usize);
        for i in 0..10_000u64 {
            w.isend(
                &mut m.ctx(0),
                0,
                1,
                1,
                8,
                Some(vec![i as f64]),
                SimTime::ZERO,
            );
            let r = w.irecv(1, 0, 1);
            // Payload over, consumed, ack back — without ever calling
            // retire_recv: cadenced compaction must bound the recv map.
            drain(&mut m, &mut w);
            let now = m.now();
            w.progress(1, &mut m.ctx(1), now);
            drain(&mut m, &mut w);
            assert_eq!(w.take_payload(r), Some(vec![i as f64]));
            let (nm, nr) = w.handle_map_sizes();
            max_msgs = max_msgs.max(nm);
            max_recvs = max_recvs.max(nr);
        }
        assert!(w.quiescent());
        assert!(max_msgs <= 4, "live messages bounded, got {max_msgs}");
        assert!(
            max_recvs <= COMPACT_CADENCE as usize + 2,
            "recv handles bounded by the compaction cadence, got {max_recvs}"
        );
    }

    #[test]
    fn probe_then_retire_agrees_under_duplicate_suppression() {
        // Bugfix regression: a suppressed duplicate must never make iprobe
        // report a message that take_payload/retire_recv can't finish.
        let cfg = FaultConfig {
            msg_dup_ppm: 999_999,
            ..FaultConfig::none(31)
        };
        let (mut m, mut w, plan) = reliable(2, cfg);
        w.isend(&mut m.ctx(0), 0, 1, 5, 8, Some(vec![4.0]), SimTime::ZERO);
        drain(&mut m, &mut w);
        assert!(w.iprobe(1, 0, 5), "arrived (twice), unmatched");
        // Probe-then-retire sequence: post, progress, take, retire.
        let r = w.irecv(1, 0, 5);
        let now = m.now();
        w.progress(1, &mut m.ctx(1), now);
        assert!(w.recv_done(r));
        assert!(!w.iprobe(1, 0, 5), "claimed: probe must go quiet");
        assert_eq!(w.take_payload(r), Some(vec![4.0]));
        w.retire_recv(r);
        // The ack (and any straggler duplicate) drains without protest.
        settle(&mut m, &mut w, 2);
        assert!(w.quiescent());
        assert!(!w.iprobe(1, 0, 5), "retired: probe stays quiet");
        assert_eq!(plan.stats.snapshot().duplicates_suppressed, 1);
        // Late wire copies of the retired id are suppressed off the minted
        // watermark, not a stored set.
        w.on_wire(encode(0, PH_DATA));
        assert_eq!(plan.stats.snapshot().duplicates_suppressed, 2);
    }

    #[test]
    #[should_panic(expected = "unknown message")]
    fn never_minted_wire_tokens_still_panic() {
        let (_m, mut w, _plan) = reliable(2, FaultConfig::none(32));
        w.on_wire(encode(99, PH_DATA));
    }
}
