//! Non-blocking point-to-point messaging with host-driven progression.
//!
//! The paper's scheduler design leans on a well-known MPI property: "in most
//! MPI implementations, the non-blocking sends and receives do not progress
//! without the help of the host processor" (§V-C, citing Denis & Trahay).
//! This layer reproduces that behaviour exactly:
//!
//! * small messages (≤ eager limit) are injected at `isend` time, but their
//!   *arrival only becomes visible* to the receiver at its next
//!   [`MpiWorld::progress`] call;
//! * large messages rendezvous: an RTS travels to the receiver, who — only
//!   while progressing, with a matching `irecv` posted — returns a CTS; the
//!   sender — only while progressing — then injects the payload.
//!
//! A synchronous scheduler that busy-spins on the completion flag makes no
//! progress calls during kernels, so rendezvous handshakes serialize after
//! compute; the asynchronous scheduler progresses while kernels run and
//! hides them. That is precisely the overlap the paper measures.
//!
//! Matching is MPI-ordered: posted receives match messages from a given
//! `(source, tag)` in message-id (send-program) order.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use sw_resilience::{FaultPlan, FaultStats, MsgFault, MsgKey};
use sw_sim::{CgId, MachineCtx, SimDur, SimTime};
use sw_telemetry::{Event, Lane, Recorder};

/// Rank in the simulated communicator (identical to the CG id: one MPI
/// process per CG, paper §V-B).
pub type Rank = CgId;

/// Message tag.
pub type Tag = u64;

/// First tag of the reserved control-plane namespace.
///
/// Application tags must be **strictly below** this value; everything at or
/// above is reserved for the library's own control traffic (present and
/// future). [`MpiWorld::isend`] and [`MpiWorld::irecv`] reject reserved
/// tags at the constructor, so an app-level tag scheme (e.g. the runtime's
/// `ghost_tag`) can never alias a control-plane stream no matter how many
/// steps, stages, or patches it multiplies together — the overflow is
/// caught here instead of silently matching the wrong message.
pub const APP_TAG_LIMIT: Tag = 1 << 62;

/// Largest message id the wire-token encoding carries injectively.
///
/// Wire tokens pack `(message id, phase)` as `id << 2 | phase`. The shift
/// discards the top two bits of the id, so ids above this bound would
/// alias: an `encode(id, PH_ACK)` for one message could decode as a
/// different message's token and retire the wrong send. [`MpiWorld::isend`]
/// refuses to allocate ids past this bound, making
/// `decode(encode(id, phase)) == (id, phase)` a total guarantee.
pub const MAX_MSG_ID: u64 = (1 << 62) - 1;

/// Size of the RTS/CTS/ACK control messages on the wire — also the
/// padding floor for eager payloads, making it the smallest packet the
/// model can emit (the static lookahead proof's per-channel minimum).
pub const CTRL_BYTES: u64 = 64;

/// Handle to a posted non-blocking send.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SendHandle(u64);

/// Handle to a posted non-blocking receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RecvHandle(u64);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MsgState {
    /// Rendezvous: RTS on the wire.
    RtsInFlight,
    /// Rendezvous: RTS at the receiver, waiting for match + progress.
    RtsArrived,
    /// Rendezvous: CTS on the wire back to the sender.
    CtsInFlight,
    /// Rendezvous: CTS at the sender, waiting for sender progress.
    CtsArrived,
    /// Payload on the wire.
    DataInFlight,
    /// Payload at the receiver, waiting for match + progress.
    DataArrived,
    /// Received; payload handed to the application.
    Consumed,
    /// Reliable mode: payload dropped by the fault plane; the sender's
    /// resend timer ([`Msg::deadline`]) is the only way forward.
    DataLost,
    /// Reliable mode: consumed at the receiver, ack in flight back to the
    /// sender; the message retires when the ack lands.
    AckWait,
}

#[derive(Debug)]
struct Msg {
    src: Rank,
    dst: Rank,
    tag: Tag,
    bytes: u64,
    payload: Option<Vec<f64>>,
    state: MsgState,
    eager: bool,
    matched_recv: Option<u64>,
    send_complete: bool,
    /// Reliable mode: payload transmission attempt, starting at 0.
    attempt: u32,
    /// Reliable mode: absolute time at which the sender declares the
    /// current attempt lost and resends (armed only on a real drop).
    deadline: Option<SimTime>,
}

#[derive(Debug)]
struct RecvReq {
    matched_msg: Option<u64>,
    complete: bool,
    payload: Option<Vec<f64>>,
}

/// The simulated communicator.
///
/// ```
/// use sw_mpi::MpiWorld;
/// use sw_sim::{Machine, MachineConfig, MachineEvent, SimTime};
///
/// let mut m = Machine::new(MachineConfig::sw26010(), 2);
/// let mut w = MpiWorld::new(2);
/// // Eager send with a functional payload.
/// let s = w.isend(&mut m.ctx(0), 0, 1, 42, 8, Some(vec![3.5]), SimTime::ZERO);
/// let r = w.irecv(1, 0, 42);
/// // Drain wire events, then let the receiving host progress the library.
/// while let Some((_, ev)) = m.pop() {
///     if let MachineEvent::NetDeliver { token, .. } = ev {
///         w.on_wire(token);
///     }
/// }
/// let now = m.now();
/// w.progress(1, &mut m.ctx(1), now);
/// assert!(w.send_done(s) && w.recv_done(r));
/// assert_eq!(w.take_payload(r), Some(vec![3.5]));
/// ```
#[derive(Debug)]
pub struct MpiWorld {
    n: usize,
    msgs: BTreeMap<u64, Msg>,
    recvs: BTreeMap<u64, RecvReq>,
    /// Per-rank index of in-flight message ids the rank may need to act on
    /// (as sender or receiver); keeps `progress` proportional to live
    /// traffic rather than run history.
    active: Vec<std::collections::BTreeSet<u64>>,
    /// Unmatched posted receives, FIFO per (dst, src, tag).
    posted: BTreeMap<(Rank, Rank, Tag), std::collections::VecDeque<u64>>,
    /// Per-source message-id sequence counters. Ids are drawn from
    /// per-rank namespaces (`id = src + n * seq`) so that concurrently
    /// advancing shards mint identical ids regardless of interleaving —
    /// the PDES bit-identity guarantee depends on it. Within one source
    /// the ids stay ascending in send-program order (MPI FIFO).
    next_msg: Vec<u64>,
    /// Per-destination receive-id sequence counters (`id = rank + n * seq`).
    next_recv: Vec<u64>,
    /// Wire-level statistics.
    pub sends_posted: u64,
    /// Completed receives.
    pub recvs_completed: u64,
    /// Telemetry sink for protocol events (disabled by default).
    rec: Recorder,
    /// Optional fault plan: when set, payload transmission goes through the
    /// *reliable* layer (fault consult at injection, ack on consumption,
    /// resend on timeout, duplicate suppression).
    faults: Option<Arc<FaultPlan>>,
    /// Fully retired message ids (reliable mode): late duplicates for these
    /// are suppressed rather than treated as protocol errors.
    retired: BTreeSet<u64>,
}

/// Decode a wire token into (message id, phase).
fn decode(token: u64) -> (u64, u8) {
    (token >> 2, (token & 3) as u8)
}
fn encode(id: u64, phase: u8) -> u64 {
    // Injectivity: ids are capped at `MAX_MSG_ID` (enforced at `isend`),
    // so the shift cannot discard bits and every (id, phase) pair maps to
    // a distinct token.
    assert!(
        id <= MAX_MSG_ID,
        "message id {id} overflows the wire-token namespace"
    );
    debug_assert!(phase < 4);
    (id << 2) | phase as u64
}
const PH_RTS: u8 = 0;
const PH_CTS: u8 = 1;
const PH_DATA: u8 = 2;
/// Reliable-mode delivery acknowledgement (receiver → sender control
/// packet; retires the message when it lands at the sender's NIC).
const PH_ACK: u8 = 3;

impl MpiWorld {
    /// A communicator of `n` ranks.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        MpiWorld {
            n,
            msgs: BTreeMap::new(),
            recvs: BTreeMap::new(),
            active: vec![std::collections::BTreeSet::new(); n],
            posted: BTreeMap::new(),
            next_msg: vec![0; n],
            next_recv: vec![0; n],
            sends_posted: 0,
            recvs_completed: 0,
            rec: Recorder::off(),
            faults: None,
            retired: BTreeSet::new(),
        }
    }

    /// Thread a telemetry recorder through the protocol events.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// Install a fault plan, switching payload transmission to the
    /// reliable (ack + resend) layer.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Post a non-blocking send of `bytes` (optionally carrying a functional
    /// payload). Send-side work begins at `when`; the caller accounts the
    /// MPE call overhead.
    #[allow(clippy::too_many_arguments)]
    pub fn isend(
        &mut self,
        machine: &mut MachineCtx<'_>,
        src: Rank,
        dst: Rank,
        tag: Tag,
        bytes: u64,
        payload: Option<Vec<f64>>,
        when: SimTime,
    ) -> SendHandle {
        assert!(src < self.n && dst < self.n, "rank out of range");
        assert_ne!(src, dst, "self-sends go through the data warehouse");
        assert!(
            tag < APP_TAG_LIMIT,
            "tag {tag:#x} lies in the reserved control-plane namespace (>= {APP_TAG_LIMIT:#x})"
        );
        let id = src as u64 + self.n as u64 * self.next_msg[src];
        assert!(
            id <= MAX_MSG_ID,
            "message id space exhausted: wire tokens would alias"
        );
        self.next_msg[src] += 1;
        self.sends_posted += 1;
        let eager = bytes <= machine.cfg().eager_limit_bytes as u64;
        self.rec.record(
            src,
            when.0,
            Lane::Mpe,
            Event::MsgPosted {
                msg: id,
                peer: dst,
                tag,
                bytes,
                eager,
            },
        );
        if let Some(m) = self.rec.metrics() {
            m.messages_posted.inc();
            m.msg_bytes.record(bytes);
        }
        let (state, send_complete) = if eager {
            // Eager: payload leaves immediately (possibly through the fault
            // plane); the library buffers it, so the send request is
            // complete as soon as it is injected.
            (MsgState::DataInFlight, true)
        } else {
            machine.net_send(src, dst, CTRL_BYTES, when, encode(id, PH_RTS));
            self.rec.record(
                src,
                when.0,
                Lane::Mpe,
                Event::RtsSent { msg: id, peer: dst },
            );
            (MsgState::RtsInFlight, false)
        };
        self.msgs.insert(
            id,
            Msg {
                src,
                dst,
                tag,
                bytes,
                payload,
                state,
                eager,
                matched_recv: None,
                send_complete,
                attempt: 0,
                deadline: None,
            },
        );
        self.active[src].insert(id);
        self.active[dst].insert(id);
        if eager {
            self.inject_data(machine, id, when, false);
        }
        SendHandle(id)
    }

    /// Put a message's payload on the wire (eager post, rendezvous grant,
    /// or resend), consulting the fault plan for this transmission attempt.
    /// With `forced` the fault consult is bypassed — the last-resort
    /// delivery after the retry budget is exhausted.
    fn inject_data(&mut self, machine: &mut MachineCtx<'_>, id: u64, when: SimTime, forced: bool) {
        let (src, dst, bytes, tag, eager, attempt) = {
            let m = &self.msgs[&id];
            (m.src, m.dst, m.bytes, m.tag, m.eager, m.attempt)
        };
        // Eager messages occupy at least a control packet on the wire.
        let wire_bytes = if eager { bytes.max(CTRL_BYTES) } else { bytes };
        let fault = if forced {
            None
        } else {
            self.faults.as_ref().and_then(|p| {
                p.msg_fault(&MsgKey {
                    src: src as u32,
                    dst: dst as u32,
                    tag,
                    attempt,
                })
            })
        };
        let m = self.msgs.get_mut(&id).unwrap();
        match fault {
            Some(MsgFault::Drop) => {
                // Nothing reaches the wire. Arm the sender's resend timer.
                let plan = self.faults.as_ref().unwrap();
                m.state = MsgState::DataLost;
                m.deadline = Some(when + SimDur(plan.msg_timeout_ps()));
                FaultStats::bump(&plan.stats.injected_msg_drop);
                self.rec.record(
                    src,
                    when.0,
                    Lane::Mpe,
                    Event::FaultInjected {
                        kind: "msg_drop",
                        id,
                    },
                );
            }
            Some(MsgFault::Duplicate) => {
                m.state = MsgState::DataInFlight;
                m.deadline = None;
                machine.net_send(src, dst, wire_bytes, when, encode(id, PH_DATA));
                machine.net_send(src, dst, wire_bytes, when, encode(id, PH_DATA));
                let plan = self.faults.as_ref().unwrap();
                FaultStats::bump(&plan.stats.injected_msg_dup);
                self.rec.record(
                    src,
                    when.0,
                    Lane::Mpe,
                    Event::FaultInjected {
                        kind: "msg_dup",
                        id,
                    },
                );
            }
            Some(MsgFault::Delay { extra_ps }) => {
                m.state = MsgState::DataInFlight;
                m.deadline = None;
                machine.net_send(
                    src,
                    dst,
                    wire_bytes,
                    when + SimDur(extra_ps),
                    encode(id, PH_DATA),
                );
                let plan = self.faults.as_ref().unwrap();
                FaultStats::bump(&plan.stats.injected_msg_delay);
                self.rec.record(
                    src,
                    when.0,
                    Lane::Mpe,
                    Event::FaultInjected {
                        kind: "msg_delay",
                        id,
                    },
                );
            }
            None => {
                m.state = MsgState::DataInFlight;
                m.deadline = None;
                machine.net_send(src, dst, wire_bytes, when, encode(id, PH_DATA));
            }
        }
    }

    /// Retire a message entirely (reliable mode: its ack landed, or a
    /// clean run consumed it). Late wire deliveries for it are suppressed.
    fn retire_msg(&mut self, id: u64) {
        if let Some(m) = self.msgs.remove(&id) {
            self.active[m.src].remove(&id);
            self.active[m.dst].remove(&id);
            if self.faults.is_some() {
                self.retired.insert(id);
            }
        }
    }

    /// Post a non-blocking receive for a message from `src` with `tag`.
    pub fn irecv(&mut self, rank: Rank, src: Rank, tag: Tag) -> RecvHandle {
        assert!(rank < self.n && src < self.n, "rank out of range");
        assert!(
            tag < APP_TAG_LIMIT,
            "tag {tag:#x} lies in the reserved control-plane namespace (>= {APP_TAG_LIMIT:#x})"
        );
        let id = rank as u64 + self.n as u64 * self.next_recv[rank];
        self.next_recv[rank] += 1;
        self.recvs.insert(
            id,
            RecvReq {
                matched_msg: None,
                complete: false,
                payload: None,
            },
        );
        self.posted
            .entry((rank, src, tag))
            .or_default()
            .push_back(id);
        RecvHandle(id)
    }

    /// Record a wire delivery (called by the controller when a
    /// `MachineEvent::NetDeliver` with this token pops). The delivery is not
    /// yet *visible* to either rank — visibility requires `progress`.
    pub fn on_wire(&mut self, token: u64) {
        let (id, phase) = decode(token);
        if self.faults.is_some() {
            // Reliable mode: duplicates, late copies, and acks are part of
            // the protocol rather than errors.
            if !self.msgs.contains_key(&id) {
                assert!(
                    self.retired.contains(&id),
                    "wire token for unknown message {id}"
                );
                // A late duplicate (or redundant resend) of a message whose
                // ack already landed: suppressed exactly like a live dup.
                if phase == PH_DATA {
                    let plan = self.faults.as_ref().unwrap();
                    FaultStats::bump(&plan.stats.duplicates_suppressed);
                }
                return;
            }
            let state = self.msgs[&id].state;
            match (phase, state) {
                (PH_RTS, MsgState::RtsInFlight) => {
                    self.msgs.get_mut(&id).unwrap().state = MsgState::RtsArrived;
                }
                (PH_CTS, MsgState::CtsInFlight) => {
                    self.msgs.get_mut(&id).unwrap().state = MsgState::CtsArrived;
                }
                (PH_DATA, MsgState::DataInFlight | MsgState::DataLost) => {
                    // DataLost → DataArrived covers a stale copy landing
                    // after the sender already declared the attempt lost:
                    // delivery is delivery.
                    self.msgs.get_mut(&id).unwrap().state = MsgState::DataArrived;
                }
                (PH_DATA, MsgState::DataArrived | MsgState::AckWait) => {
                    // Duplicate delivery: the payload is already here (or
                    // even consumed). Suppress; the receive side must see
                    // each message exactly once.
                    let plan = self.faults.as_ref().unwrap();
                    FaultStats::bump(&plan.stats.duplicates_suppressed);
                }
                (PH_ACK, MsgState::AckWait) => {
                    // Ack landed at the sender's NIC: the message is done.
                    self.retire_msg(id);
                }
                (p, s) => panic!("message {id}: phase {p} delivery in state {s:?}"),
            }
            return;
        }
        let msg = self
            .msgs
            .get_mut(&id)
            .expect("wire token for unknown message");
        msg.state = match (phase, msg.state) {
            (PH_RTS, MsgState::RtsInFlight) => MsgState::RtsArrived,
            (PH_CTS, MsgState::CtsInFlight) => MsgState::CtsArrived,
            (PH_DATA, MsgState::DataInFlight) => MsgState::DataArrived,
            (p, s) => panic!("message {id}: phase {p} delivery in state {s:?}"),
        };
    }

    /// Drive the MPI library on `rank` at `now`: match arrived messages to
    /// posted receives, answer rendezvous handshakes, inject granted
    /// payloads, and complete requests. Returns the number of protocol
    /// actions taken (0 means nothing changed). The caller accounts the MPE
    /// call cost.
    pub fn progress(&mut self, rank: Rank, machine: &mut MachineCtx<'_>, now: SimTime) -> usize {
        let mut actions = 0;
        // Deterministic iteration over this rank's live traffic only:
        // ascending message id gives MPI-FIFO matching.
        let ids: Vec<u64> = self.active[rank].iter().copied().collect();
        for id in ids {
            let (src, dst, tag, state, matched, eager) = {
                let m = &self.msgs[&id];
                (m.src, m.dst, m.tag, m.state, m.matched_recv, m.eager)
            };
            match state {
                MsgState::RtsArrived if dst == rank => {
                    // Match (or use an existing match) and grant the send.
                    let recv = matched.or_else(|| self.match_recv(id, dst, src, tag));
                    if let Some(r) = recv {
                        self.msgs.get_mut(&id).unwrap().matched_recv = Some(r);
                        machine.net_send(dst, src, CTRL_BYTES, now, encode(id, PH_CTS));
                        self.msgs.get_mut(&id).unwrap().state = MsgState::CtsInFlight;
                        self.rec.record(
                            dst,
                            now.0,
                            Lane::Mpe,
                            Event::CtsSent { msg: id, peer: src },
                        );
                        actions += 1;
                    }
                }
                MsgState::CtsArrived if src == rank => {
                    // Rendezvous grant: payload through the fault plane.
                    self.inject_data(machine, id, now, false);
                    let m = self.msgs.get_mut(&id).unwrap();
                    // Rendezvous send buffer is released once injected (a
                    // dropped injection still buffers for resend).
                    m.send_complete = true;
                    actions += 1;
                }
                MsgState::DataLost if src == rank => {
                    // Reliable mode: the sender's ack deadline expired —
                    // detect and resend with exponential backoff, or force
                    // delivery once the retry budget is spent.
                    let deadline = self.msgs[&id].deadline.expect("lost msg without deadline");
                    if now >= deadline {
                        let plan = self.faults.as_ref().unwrap().clone();
                        FaultStats::bump(&plan.stats.detected_msg);
                        self.rec.record(
                            src,
                            now.0,
                            Lane::Mpe,
                            Event::FaultDetected {
                                kind: "msg_timeout",
                                id,
                            },
                        );
                        let attempt = {
                            let m = self.msgs.get_mut(&id).unwrap();
                            m.attempt += 1;
                            m.attempt
                        };
                        if attempt >= plan.max_attempts() {
                            // Retry budget exhausted: the recoverable path
                            // failed. Degrade gracefully — force the
                            // payload through, bypassing the fault consult,
                            // and account the fault as unrecovered.
                            FaultStats::bump(&plan.stats.unrecovered);
                            self.inject_data(machine, id, now, true);
                        } else {
                            FaultStats::bump(&plan.stats.resends_msg);
                            let when = now + SimDur(plan.backoff_ps(attempt));
                            self.inject_data(machine, id, when, false);
                        }
                        actions += 1;
                    }
                }
                MsgState::DataArrived if dst == rank => {
                    let recv = matched.or_else(|| self.match_recv(id, dst, src, tag));
                    if let Some(r) = recv {
                        let m = self.msgs.get_mut(&id).unwrap();
                        m.matched_recv = Some(r);
                        m.state = MsgState::Consumed;
                        let payload = m.payload.take();
                        let attempt = m.attempt;
                        debug_assert!(eager || m.send_complete);
                        let req = self.recvs.get_mut(&r).unwrap();
                        req.complete = true;
                        req.payload = payload;
                        self.recvs_completed += 1;
                        self.rec.record(
                            dst,
                            now.0,
                            Lane::Mpe,
                            Event::MsgDelivered {
                                msg: id,
                                peer: src,
                                tag,
                                bytes: self.msgs[&id].bytes,
                            },
                        );
                        actions += 1;
                        if let Some(plan) = self.faults.as_ref() {
                            // Reliable mode: acknowledge; the message stays
                            // live (suppressing duplicates) until the ack
                            // lands at the sender.
                            if attempt > 0 {
                                FaultStats::bump(&plan.stats.recovered_msg);
                                self.rec.record(
                                    dst,
                                    now.0,
                                    Lane::Mpe,
                                    Event::FaultRecovered {
                                        kind: "msg_resend",
                                        id,
                                    },
                                );
                            }
                            self.msgs.get_mut(&id).unwrap().state = MsgState::AckWait;
                            machine.net_send(dst, src, CTRL_BYTES, now, encode(id, PH_ACK));
                        } else {
                            // Fully finished: retire from the live indexes
                            // (the eager/rendezvous send side is complete
                            // by now).
                            self.retire_msg(id);
                        }
                    }
                }
                _ => {}
            }
        }
        self.rec.record(
            rank,
            now.0,
            Lane::Mpe,
            Event::ProgressCall {
                actions: actions as u64,
            },
        );
        if let Some(m) = self.rec.metrics() {
            m.progress_calls.inc();
        }
        actions
    }

    /// Pop the oldest unmatched posted receive on `rank` for `(src, tag)`.
    fn match_recv(&mut self, msg: u64, rank: Rank, src: Rank, tag: Tag) -> Option<u64> {
        let id = self.posted.get_mut(&(rank, src, tag))?.pop_front()?;
        self.recvs.get_mut(&id).unwrap().matched_msg = Some(msg);
        Some(id)
    }

    /// Has this send's buffer been handed to the network? (Observable only
    /// after a `progress` call on the sending rank, as in real MPI `Test`.)
    pub fn send_done(&self, h: SendHandle) -> bool {
        self.msgs.get(&h.0).is_none_or(|m| m.send_complete)
    }

    /// Has this receive completed?
    pub fn recv_done(&self, h: RecvHandle) -> bool {
        self.recvs[&h.0].complete
    }

    /// Take the functional payload of a completed receive.
    ///
    /// # Panics
    /// Panics if the receive has not completed.
    pub fn take_payload(&mut self, h: RecvHandle) -> Option<Vec<f64>> {
        let r = self.recvs.get_mut(&h.0).expect("unknown recv");
        assert!(r.complete, "take_payload before completion");
        r.payload.take()
    }

    /// Whether every send in `sends` has completed (MPI `Testall` shape).
    pub fn all_sends_done(&self, sends: &[SendHandle]) -> bool {
        sends.iter().all(|&h| self.send_done(h))
    }

    /// Whether an unmatched message from `src` with `tag` is waiting at
    /// `rank` (MPI `Iprobe` shape): its payload has arrived (eager) or its
    /// RTS has (rendezvous), but no posted receive has claimed it.
    pub fn iprobe(&self, rank: Rank, src: Rank, tag: Tag) -> bool {
        self.msgs.values().any(|m| {
            m.dst == rank
                && m.src == src
                && m.tag == tag
                && m.matched_recv.is_none()
                && matches!(m.state, MsgState::RtsArrived | MsgState::DataArrived)
        })
    }

    /// Messages still live (in flight or awaiting consumption) that involve
    /// `rank` as sender or receiver.
    pub fn outstanding(&self, rank: Rank) -> usize {
        self.active[rank].len()
    }

    /// Reliable mode: sends from `rank` whose delivery has not yet been
    /// acknowledged (including dropped payloads awaiting resend). A rank
    /// must not end its step while this is non-zero, or a lost payload
    /// could strand its receiver forever.
    pub fn unacked(&self, rank: Rank) -> usize {
        self.active[rank]
            .iter()
            .filter(|id| {
                self.msgs
                    .get(id)
                    .is_some_and(|m| m.src == rank && !matches!(m.state, MsgState::Consumed))
            })
            .count()
    }

    /// Reliable mode: the earliest resend deadline among `rank`'s lost
    /// payloads — the scheduler arranges an MPE wakeup timer for it so the
    /// detection path runs even when no other event would wake the rank.
    pub fn next_deadline(&self, rank: Rank) -> Option<SimTime> {
        self.active[rank]
            .iter()
            .filter_map(|id| {
                let m = self.msgs.get(id)?;
                if m.src == rank && m.state == MsgState::DataLost {
                    m.deadline
                } else {
                    None
                }
            })
            .min()
    }

    /// Free the bookkeeping of a completed receive (after the payload has
    /// been consumed). Keeps long runs O(live traffic).
    pub fn retire_recv(&mut self, h: RecvHandle) {
        if let Some(r) = self.recvs.get(&h.0) {
            assert!(r.complete, "retiring an incomplete receive");
            self.recvs.remove(&h.0);
        }
    }

    /// True when no message is still in flight or awaiting consumption
    /// (quiescence check between timesteps). Fully finished messages are
    /// retired eagerly, so this checks emptiness of the live set.
    pub fn quiescent(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Outstanding handles at the end of a run, by `(rank, tag)`: one entry
    /// per live message (attributed to the *sending* rank) and one per
    /// posted-but-never-matched receive (attributed to the receiving rank).
    /// A clean run returns an empty vector; anything else is a leak the
    /// controller surfaces in `RunReport` instead of letting it vanish
    /// silently.
    pub fn leaked(&self) -> Vec<(Rank, Tag)> {
        let mut out: Vec<(Rank, Tag)> = self.msgs.values().map(|m| (m.src, m.tag)).collect();
        for (&(rank, _src, tag), q) in &self.posted {
            out.extend(q.iter().map(|_| (rank, tag)));
        }
        out.sort_unstable();
        out
    }

    /// Drop completed receives (fully finished messages are already retired
    /// eagerly by `progress`).
    pub fn compact(&mut self) {
        self.recvs.retain(|_, r| !r.complete);
    }
}

/// A [`MpiWorld`] shared by concurrently advancing rank shards.
///
/// The world sits behind a mutex; every method locks for the duration of
/// exactly one library call. Determinism under the PDES window protocol is
/// **not** provided by the lock (lock acquisition order varies run to run)
/// — it comes from the calls of different ranks *commuting* within one
/// lookahead window:
///
/// * message and receive ids are minted from per-rank namespaces, so the
///   ids a rank draws never depend on other ranks' call timing;
/// * each message's state is only ever touched by one side per window (the
///   other side cannot observe the transition until the barrier merge
///   delivers the corresponding wire event);
/// * matching is FIFO per `(dst, src, tag)` and driven solely by the
///   destination rank;
/// * the shared counters (`sends_posted`, `recvs_completed`, fault stats)
///   are pure accumulators.
///
/// Any interleaving of different ranks' calls therefore produces the same
/// world state at the window barrier, which is what makes the PDES engine
/// bit-identical to the serial one.
pub struct SharedMpi {
    inner: std::sync::Mutex<MpiWorld>,
}

impl SharedMpi {
    /// Wrap a world for shared access.
    pub fn new(world: MpiWorld) -> Self {
        SharedMpi {
            inner: std::sync::Mutex::new(world),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MpiWorld> {
        self.inner.lock().expect("MpiWorld mutex poisoned")
    }

    /// Thread a telemetry recorder through the protocol events.
    pub fn set_recorder(&self, rec: Recorder) {
        self.lock().set_recorder(rec);
    }

    /// Install a fault plan (see [`MpiWorld::set_fault_plan`]).
    pub fn set_fault_plan(&self, plan: Arc<FaultPlan>) {
        self.lock().set_fault_plan(plan);
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.lock().size()
    }

    /// See [`MpiWorld::isend`].
    #[allow(clippy::too_many_arguments)]
    pub fn isend(
        &self,
        machine: &mut MachineCtx<'_>,
        src: Rank,
        dst: Rank,
        tag: Tag,
        bytes: u64,
        payload: Option<Vec<f64>>,
        when: SimTime,
    ) -> SendHandle {
        self.lock()
            .isend(machine, src, dst, tag, bytes, payload, when)
    }

    /// See [`MpiWorld::irecv`].
    pub fn irecv(&self, rank: Rank, src: Rank, tag: Tag) -> RecvHandle {
        self.lock().irecv(rank, src, tag)
    }

    /// See [`MpiWorld::on_wire`].
    pub fn on_wire(&self, token: u64) {
        self.lock().on_wire(token);
    }

    /// See [`MpiWorld::progress`].
    pub fn progress(&self, rank: Rank, machine: &mut MachineCtx<'_>, now: SimTime) -> usize {
        self.lock().progress(rank, machine, now)
    }

    /// See [`MpiWorld::send_done`].
    pub fn send_done(&self, h: SendHandle) -> bool {
        self.lock().send_done(h)
    }

    /// See [`MpiWorld::recv_done`].
    pub fn recv_done(&self, h: RecvHandle) -> bool {
        self.lock().recv_done(h)
    }

    /// See [`MpiWorld::take_payload`].
    pub fn take_payload(&self, h: RecvHandle) -> Option<Vec<f64>> {
        self.lock().take_payload(h)
    }

    /// See [`MpiWorld::all_sends_done`].
    pub fn all_sends_done(&self, sends: &[SendHandle]) -> bool {
        self.lock().all_sends_done(sends)
    }

    /// See [`MpiWorld::iprobe`].
    pub fn iprobe(&self, rank: Rank, src: Rank, tag: Tag) -> bool {
        self.lock().iprobe(rank, src, tag)
    }

    /// See [`MpiWorld::outstanding`].
    pub fn outstanding(&self, rank: Rank) -> usize {
        self.lock().outstanding(rank)
    }

    /// See [`MpiWorld::unacked`].
    pub fn unacked(&self, rank: Rank) -> usize {
        self.lock().unacked(rank)
    }

    /// See [`MpiWorld::next_deadline`].
    pub fn next_deadline(&self, rank: Rank) -> Option<SimTime> {
        self.lock().next_deadline(rank)
    }

    /// See [`MpiWorld::retire_recv`].
    pub fn retire_recv(&self, h: RecvHandle) {
        self.lock().retire_recv(h);
    }

    /// See [`MpiWorld::quiescent`].
    pub fn quiescent(&self) -> bool {
        self.lock().quiescent()
    }

    /// See [`MpiWorld::leaked`].
    pub fn leaked(&self) -> Vec<(Rank, Tag)> {
        self.lock().leaked()
    }

    /// See [`MpiWorld::compact`].
    pub fn compact(&self) {
        self.lock().compact();
    }

    /// Wire-level statistic: sends posted so far.
    pub fn sends_posted(&self) -> u64 {
        self.lock().sends_posted
    }

    /// Wire-level statistic: receives completed so far.
    pub fn recvs_completed(&self) -> u64 {
        self.lock().recvs_completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_sim::{Machine, MachineConfig, MachineEvent};

    fn setup(n: usize) -> (Machine, MpiWorld) {
        (Machine::new(MachineConfig::sw26010(), n), MpiWorld::new(n))
    }

    /// Drain all machine events into the world.
    fn drain(m: &mut Machine, w: &mut MpiWorld) {
        while let Some((_, ev)) = m.pop() {
            if let MachineEvent::NetDeliver { token, .. } = ev {
                w.on_wire(token);
            }
        }
    }

    #[test]
    fn eager_send_completes_immediately_recv_needs_progress() {
        let (mut m, mut w) = setup(2);
        let s = w.isend(&mut m.ctx(0), 0, 1, 7, 100, None, SimTime::ZERO);
        assert!(w.send_done(s), "eager sends buffer and complete");
        let r = w.irecv(1, 0, 7);
        assert!(!w.recv_done(r));
        drain(&mut m, &mut w);
        // Arrived, but invisible until rank 1 progresses.
        assert!(!w.recv_done(r));
        let now = m.now();
        assert!(w.progress(1, &mut m.ctx(1), now) > 0);
        assert!(w.recv_done(r));
        assert!(w.quiescent());
    }

    #[test]
    fn rendezvous_requires_both_hosts_to_progress() {
        let (mut m, mut w) = setup(2);
        let bytes = 1_000_000; // > eager limit
        let s = w.isend(&mut m.ctx(0), 0, 1, 3, bytes, None, SimTime::ZERO);
        let r = w.irecv(1, 0, 3);
        assert!(!w.send_done(s), "rendezvous sends are not complete at post");

        // RTS arrives; receiver progress sends CTS.
        drain(&mut m, &mut w);
        let t = m.now();
        assert_eq!(w.progress(1, &mut m.ctx(1), t), 1);
        assert!(!w.send_done(s));
        assert!(!w.recv_done(r));

        // CTS arrives; *sender* progress injects the payload.
        drain(&mut m, &mut w);
        let t = m.now();
        assert_eq!(w.progress(0, &mut m.ctx(0), t), 1);
        assert!(w.send_done(s), "payload injected, buffer released");

        // Payload arrives; receiver progress completes the receive.
        drain(&mut m, &mut w);
        let t = m.now();
        assert_eq!(w.progress(1, &mut m.ctx(1), t), 1);
        assert!(w.recv_done(r));
        assert!(w.quiescent());
    }

    #[test]
    fn rendezvous_stalls_without_posted_recv() {
        let (mut m, mut w) = setup(2);
        w.isend(&mut m.ctx(0), 0, 1, 3, 1_000_000, None, SimTime::ZERO);
        drain(&mut m, &mut w);
        // Receiver progresses but has no matching irecv: nothing happens.
        let t = m.now();
        assert_eq!(w.progress(1, &mut m.ctx(1), t), 0);
        // Posting the receive unblocks the handshake.
        let r = w.irecv(1, 0, 3);
        let t = m.now();
        assert_eq!(w.progress(1, &mut m.ctx(1), t), 1);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(0, &mut m.ctx(0), t);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m.ctx(1), t);
        assert!(w.recv_done(r));
    }

    #[test]
    fn payload_travels_functionally() {
        let (mut m, mut w) = setup(2);
        let data = vec![1.5, 2.5, 3.5];
        w.isend(
            &mut m.ctx(0),
            0,
            1,
            9,
            24,
            Some(data.clone()),
            SimTime::ZERO,
        );
        let r = w.irecv(1, 0, 9);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m.ctx(1), t);
        assert!(w.recv_done(r));
        assert_eq!(w.take_payload(r), Some(data));
    }

    #[test]
    fn matching_is_fifo_per_source_and_tag() {
        let (mut m, mut w) = setup(2);
        w.isend(&mut m.ctx(0), 0, 1, 5, 8, Some(vec![1.0]), SimTime::ZERO);
        w.isend(&mut m.ctx(0), 0, 1, 5, 8, Some(vec![2.0]), SimTime::ZERO);
        let r1 = w.irecv(1, 0, 5);
        let r2 = w.irecv(1, 0, 5);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m.ctx(1), t);
        assert!(w.recv_done(r1) && w.recv_done(r2));
        // First posted receive gets the first sent message.
        assert_eq!(w.take_payload(r1), Some(vec![1.0]));
        assert_eq!(w.take_payload(r2), Some(vec![2.0]));
    }

    #[test]
    fn tags_separate_message_streams() {
        let (mut m, mut w) = setup(2);
        w.isend(&mut m.ctx(0), 0, 1, 100, 8, Some(vec![1.0]), SimTime::ZERO);
        w.isend(&mut m.ctx(0), 0, 1, 200, 8, Some(vec![2.0]), SimTime::ZERO);
        let r200 = w.irecv(1, 0, 200);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m.ctx(1), t);
        assert!(w.recv_done(r200));
        assert_eq!(w.take_payload(r200), Some(vec![2.0]));
        assert!(!w.quiescent(), "tag-100 message still unconsumed");
        let r100 = w.irecv(1, 0, 100);
        let t = m.now();
        w.progress(1, &mut m.ctx(1), t);
        assert!(w.recv_done(r100));
        assert!(w.quiescent());
    }

    #[test]
    fn compact_drops_finished_traffic() {
        let (mut m, mut w) = setup(2);
        w.isend(&mut m.ctx(0), 0, 1, 1, 8, None, SimTime::ZERO);
        let r = w.irecv(1, 0, 1);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m.ctx(1), t);
        assert!(w.recv_done(r));
        w.compact();
        assert!(w.msgs.is_empty() && w.recvs.is_empty());
        assert_eq!(w.recvs_completed, 1);
    }

    #[test]
    fn iprobe_and_outstanding_track_unmatched_arrivals() {
        let (mut m, mut w) = setup(2);
        let s = w.isend(&mut m.ctx(0), 0, 1, 5, 64, None, SimTime::ZERO);
        assert_eq!(w.outstanding(0), 1);
        assert_eq!(w.outstanding(1), 1);
        assert!(!w.iprobe(1, 0, 5), "not arrived yet");
        drain(&mut m, &mut w);
        assert!(w.iprobe(1, 0, 5), "arrived, unmatched");
        assert!(!w.iprobe(1, 0, 6), "wrong tag");
        assert!(!w.iprobe(0, 1, 5), "wrong direction");
        let r = w.irecv(1, 0, 5);
        let now = m.now();
        w.progress(1, &mut m.ctx(1), now);
        assert!(w.recv_done(r));
        assert!(!w.iprobe(1, 0, 5), "consumed");
        assert_eq!(w.outstanding(0), 0);
        assert!(w.all_sends_done(&[s]));
    }

    #[test]
    #[should_panic(expected = "self-sends")]
    fn self_sends_rejected() {
        let (mut m, mut w) = setup(2);
        w.isend(&mut m.ctx(1), 1, 1, 0, 8, None, SimTime::ZERO);
    }

    // ------------------------------------------------------------------
    // Tag namespace separation (control plane vs. application)
    // ------------------------------------------------------------------

    #[test]
    fn wire_token_encoding_is_injective_up_to_max_msg_id() {
        // decode ∘ encode is the identity for every representable id and
        // every protocol phase — including both ends of the id range.
        for id in [0, 1, 2, 1 << 20, MAX_MSG_ID - 1, MAX_MSG_ID] {
            for ph in [PH_RTS, PH_CTS, PH_DATA, PH_ACK] {
                assert_eq!(decode(encode(id, ph)), (id, ph));
            }
        }
        // Distinct (id, phase) pairs map to distinct tokens.
        let ids = [0u64, 1, 7, MAX_MSG_ID];
        let mut seen = std::collections::BTreeSet::new();
        for &id in &ids {
            for ph in [PH_RTS, PH_CTS, PH_DATA, PH_ACK] {
                assert!(
                    seen.insert(encode(id, ph)),
                    "token collision at ({id}, {ph})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "wire-token namespace")]
    fn message_ids_past_the_encoding_bound_are_rejected() {
        encode(MAX_MSG_ID + 1, PH_ACK);
    }

    #[test]
    #[should_panic(expected = "reserved control-plane namespace")]
    fn reserved_tags_are_rejected_at_isend() {
        let (mut m, mut w) = setup(2);
        w.isend(&mut m.ctx(0), 0, 1, APP_TAG_LIMIT, 8, None, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "reserved control-plane namespace")]
    fn reserved_tags_are_rejected_at_irecv() {
        let (_m, mut w) = setup(2);
        w.irecv(1, 0, u64::MAX);
    }

    #[test]
    fn app_tags_below_the_boundary_still_flow() {
        // Regression: the largest legal app tag is an ordinary tag — the
        // namespace check must not clip real traffic.
        let (mut m, mut w) = setup(2);
        let tag = APP_TAG_LIMIT - 1;
        w.isend(&mut m.ctx(0), 0, 1, tag, 8, Some(vec![6.5]), SimTime::ZERO);
        let r = w.irecv(1, 0, tag);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m.ctx(1), t);
        assert!(w.recv_done(r));
        assert_eq!(w.take_payload(r), Some(vec![6.5]));
    }

    // ------------------------------------------------------------------
    // Reliable (fault-plane) mode
    // ------------------------------------------------------------------

    use sw_resilience::FaultConfig;

    fn reliable(n: usize, cfg: FaultConfig) -> (Machine, MpiWorld, Arc<FaultPlan>) {
        let (mut m, mut w) = setup(n);
        let plan = Arc::new(FaultPlan::new(cfg));
        w.set_fault_plan(plan.clone());
        m.set_fault_plan(plan.clone());
        (m, w, plan)
    }

    /// Drain events and progress both ranks until the world is quiescent
    /// (or a step budget is exhausted — which fails the test).
    fn settle(m: &mut Machine, w: &mut MpiWorld, ranks: usize) {
        for _ in 0..64 {
            drain(m, w);
            let now = m.now();
            let mut acted = 0;
            for r in 0..ranks {
                acted += w.progress(r, &mut m.ctx(r), now);
            }
            if w.quiescent() && m.peek_time().is_none() {
                return;
            }
            if acted == 0 && m.peek_time().is_none() {
                // Only a future resend deadline can move things forward.
                let dl = (0..ranks).filter_map(|r| w.next_deadline(r)).min();
                match dl {
                    Some(t) => {
                        // Jump virtual time by scheduling + popping a timer.
                        m.timer_at(0, t, u64::MAX);
                        let _ = m.pop();
                    }
                    None => break,
                }
            }
        }
        panic!("world failed to settle: quiescent={}", w.quiescent());
    }

    #[test]
    fn dropped_payload_is_detected_resent_and_recovered() {
        // Force a drop on attempt 0; guarantee_recovery cleans later tries.
        let cfg = FaultConfig {
            msg_drop_ppm: 999_999,
            max_attempts: 4,
            ..FaultConfig::none(21)
        };
        let (mut m, mut w, plan) = reliable(2, cfg);
        let data = vec![4.25, -1.5];
        let s = w.isend(
            &mut m.ctx(0),
            0,
            1,
            7,
            16,
            Some(data.clone()),
            SimTime::ZERO,
        );
        let r = w.irecv(1, 0, 7);
        settle(&mut m, &mut w, 2);
        assert!(w.send_done(s) && w.recv_done(r));
        assert_eq!(w.take_payload(r), Some(data), "payload survives the drop");
        let c = plan.stats.snapshot();
        assert!(c.injected_msg_drop >= 1);
        assert_eq!(c.detected_msg, c.injected_msg_drop, "every drop detected");
        assert!(c.resends_msg >= 1);
        assert_eq!(c.recovered_msg, 1, "exactly one message recovered");
        assert_eq!(c.unrecovered, 0);
        assert!(w.quiescent(), "ack drained, nothing live");
        assert_eq!(w.unacked(0), 0);
    }

    #[test]
    fn duplicate_delivery_is_suppressed_exactly_once() {
        let cfg = FaultConfig {
            msg_dup_ppm: 999_999,
            ..FaultConfig::none(22)
        };
        let (mut m, mut w, plan) = reliable(2, cfg);
        let s = w.isend(&mut m.ctx(0), 0, 1, 5, 8, Some(vec![9.0]), SimTime::ZERO);
        let r = w.irecv(1, 0, 5);
        settle(&mut m, &mut w, 2);
        assert!(w.send_done(s) && w.recv_done(r));
        assert_eq!(w.take_payload(r), Some(vec![9.0]));
        let c = plan.stats.snapshot();
        assert_eq!(c.injected_msg_dup, 1);
        assert_eq!(
            c.duplicates_suppressed, 1,
            "two copies on the wire, one delivery, one suppression"
        );
        assert_eq!(w.recvs_completed, 1, "receive completed exactly once");
    }

    #[test]
    fn delayed_payload_arrives_late_but_intact() {
        let cfg = FaultConfig {
            msg_delay_ppm: 999_999,
            delay_ps: 5_000_000,
            ..FaultConfig::none(23)
        };
        let (mut m, mut w, plan) = reliable(2, cfg);
        w.isend(&mut m.ctx(0), 0, 1, 3, 8, Some(vec![1.0]), SimTime::ZERO);
        let r = w.irecv(1, 0, 3);
        settle(&mut m, &mut w, 2);
        assert!(w.recv_done(r));
        assert!(m.now().0 >= 5_000_000, "delivery waited out the delay");
        assert_eq!(plan.stats.snapshot().injected_msg_delay, 1);
    }

    #[test]
    fn exhausted_retry_budget_forces_delivery_and_counts_unrecovered() {
        // Hostile: every attempt drops and recovery is NOT guaranteed.
        let cfg = FaultConfig {
            msg_drop_ppm: 999_999,
            max_attempts: 2,
            guarantee_recovery: false,
            ..FaultConfig::none(24)
        };
        let (mut m, mut w, plan) = reliable(2, cfg);
        let r = w.irecv(1, 0, 1);
        w.isend(&mut m.ctx(0), 0, 1, 1, 8, Some(vec![2.0]), SimTime::ZERO);
        settle(&mut m, &mut w, 2);
        assert!(w.recv_done(r), "forced delivery still completes the run");
        assert_eq!(w.take_payload(r), Some(vec![2.0]));
        let c = plan.stats.snapshot();
        assert!(c.unrecovered >= 1, "budget exhaustion is accounted");
    }

    #[test]
    fn rendezvous_payload_goes_through_fault_plane_too() {
        let cfg = FaultConfig {
            msg_drop_ppm: 999_999,
            max_attempts: 3,
            ..FaultConfig::none(25)
        };
        let (mut m, mut w, plan) = reliable(2, cfg);
        let bytes = 1_000_000; // > eager limit: rendezvous
        let s = w.isend(&mut m.ctx(0), 0, 1, 9, bytes, None, SimTime::ZERO);
        let r = w.irecv(1, 0, 9);
        settle(&mut m, &mut w, 2);
        assert!(w.send_done(s) && w.recv_done(r));
        let c = plan.stats.snapshot();
        assert!(c.injected_msg_drop >= 1, "rendezvous payload was dropped");
        assert_eq!(c.unrecovered, 0);
        assert!(w.quiescent());
    }

    #[test]
    fn clean_plan_matches_unfaulted_protocol_shape() {
        // A fault plan that injects nothing still runs the ack layer;
        // message delivery and payloads are unchanged.
        let (mut m, mut w, plan) = reliable(2, FaultConfig::none(26));
        let s = w.isend(&mut m.ctx(0), 0, 1, 7, 8, Some(vec![3.5]), SimTime::ZERO);
        let r = w.irecv(1, 0, 7);
        assert_eq!(w.unacked(0), 1);
        settle(&mut m, &mut w, 2);
        assert!(w.send_done(s) && w.recv_done(r));
        assert_eq!(w.take_payload(r), Some(vec![3.5]));
        assert_eq!(w.unacked(0), 0);
        assert_eq!(plan.stats.snapshot().total_injected(), 0);
        assert!(w.quiescent());
    }
}
