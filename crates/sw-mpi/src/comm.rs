//! Non-blocking point-to-point messaging with host-driven progression.
//!
//! The paper's scheduler design leans on a well-known MPI property: "in most
//! MPI implementations, the non-blocking sends and receives do not progress
//! without the help of the host processor" (§V-C, citing Denis & Trahay).
//! This layer reproduces that behaviour exactly:
//!
//! * small messages (≤ eager limit) are injected at `isend` time, but their
//!   *arrival only becomes visible* to the receiver at its next
//!   [`MpiWorld::progress`] call;
//! * large messages rendezvous: an RTS travels to the receiver, who — only
//!   while progressing, with a matching `irecv` posted — returns a CTS; the
//!   sender — only while progressing — then injects the payload.
//!
//! A synchronous scheduler that busy-spins on the completion flag makes no
//! progress calls during kernels, so rendezvous handshakes serialize after
//! compute; the asynchronous scheduler progresses while kernels run and
//! hides them. That is precisely the overlap the paper measures.
//!
//! Matching is MPI-ordered: posted receives match messages from a given
//! `(source, tag)` in message-id (send-program) order.

use std::collections::BTreeMap;

use sw_sim::{CgId, Machine, SimTime};
use sw_telemetry::{Event, Lane, Recorder};

/// Rank in the simulated communicator (identical to the CG id: one MPI
/// process per CG, paper §V-B).
pub type Rank = CgId;

/// Message tag.
pub type Tag = u64;

/// Size of the RTS/CTS control messages on the wire.
const CTRL_BYTES: u64 = 64;

/// Handle to a posted non-blocking send.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SendHandle(u64);

/// Handle to a posted non-blocking receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RecvHandle(u64);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MsgState {
    /// Rendezvous: RTS on the wire.
    RtsInFlight,
    /// Rendezvous: RTS at the receiver, waiting for match + progress.
    RtsArrived,
    /// Rendezvous: CTS on the wire back to the sender.
    CtsInFlight,
    /// Rendezvous: CTS at the sender, waiting for sender progress.
    CtsArrived,
    /// Payload on the wire.
    DataInFlight,
    /// Payload at the receiver, waiting for match + progress.
    DataArrived,
    /// Received; payload handed to the application.
    Consumed,
}

#[derive(Debug)]
struct Msg {
    src: Rank,
    dst: Rank,
    tag: Tag,
    bytes: u64,
    payload: Option<Vec<f64>>,
    state: MsgState,
    eager: bool,
    matched_recv: Option<u64>,
    send_complete: bool,
}

#[derive(Debug)]
struct RecvReq {
    matched_msg: Option<u64>,
    complete: bool,
    payload: Option<Vec<f64>>,
}

/// The simulated communicator.
///
/// ```
/// use sw_mpi::MpiWorld;
/// use sw_sim::{Machine, MachineConfig, MachineEvent, SimTime};
///
/// let mut m = Machine::new(MachineConfig::sw26010(), 2);
/// let mut w = MpiWorld::new(2);
/// // Eager send with a functional payload.
/// let s = w.isend(&mut m, 0, 1, 42, 8, Some(vec![3.5]), SimTime::ZERO);
/// let r = w.irecv(1, 0, 42);
/// // Drain wire events, then let the receiving host progress the library.
/// while let Some((_, ev)) = m.pop() {
///     if let MachineEvent::NetDeliver { token, .. } = ev {
///         w.on_wire(token);
///     }
/// }
/// let now = m.now();
/// w.progress(1, &mut m, now);
/// assert!(w.send_done(s) && w.recv_done(r));
/// assert_eq!(w.take_payload(r), Some(vec![3.5]));
/// ```
#[derive(Debug)]
pub struct MpiWorld {
    n: usize,
    msgs: BTreeMap<u64, Msg>,
    recvs: BTreeMap<u64, RecvReq>,
    /// Per-rank index of in-flight message ids the rank may need to act on
    /// (as sender or receiver); keeps `progress` proportional to live
    /// traffic rather than run history.
    active: Vec<std::collections::BTreeSet<u64>>,
    /// Unmatched posted receives, FIFO per (dst, src, tag).
    posted: BTreeMap<(Rank, Rank, Tag), std::collections::VecDeque<u64>>,
    next_msg: u64,
    next_recv: u64,
    /// Wire-level statistics.
    pub sends_posted: u64,
    /// Completed receives.
    pub recvs_completed: u64,
    /// Telemetry sink for protocol events (disabled by default).
    rec: Recorder,
}

/// Decode a wire token into (message id, phase).
fn decode(token: u64) -> (u64, u8) {
    (token >> 2, (token & 3) as u8)
}
fn encode(id: u64, phase: u8) -> u64 {
    (id << 2) | phase as u64
}
const PH_RTS: u8 = 0;
const PH_CTS: u8 = 1;
const PH_DATA: u8 = 2;

impl MpiWorld {
    /// A communicator of `n` ranks.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        MpiWorld {
            n,
            msgs: BTreeMap::new(),
            recvs: BTreeMap::new(),
            active: vec![std::collections::BTreeSet::new(); n],
            posted: BTreeMap::new(),
            next_msg: 0,
            next_recv: 0,
            sends_posted: 0,
            recvs_completed: 0,
            rec: Recorder::off(),
        }
    }

    /// Thread a telemetry recorder through the protocol events.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Post a non-blocking send of `bytes` (optionally carrying a functional
    /// payload). Send-side work begins at `when`; the caller accounts the
    /// MPE call overhead.
    #[allow(clippy::too_many_arguments)]
    pub fn isend(
        &mut self,
        machine: &mut Machine,
        src: Rank,
        dst: Rank,
        tag: Tag,
        bytes: u64,
        payload: Option<Vec<f64>>,
        when: SimTime,
    ) -> SendHandle {
        assert!(src < self.n && dst < self.n, "rank out of range");
        assert_ne!(src, dst, "self-sends go through the data warehouse");
        let id = self.next_msg;
        self.next_msg += 1;
        self.sends_posted += 1;
        let eager = bytes <= machine.cfg().eager_limit_bytes as u64;
        self.rec.record(
            src,
            when.0,
            Lane::Mpe,
            Event::MsgPosted {
                msg: id,
                peer: dst,
                tag,
                bytes,
                eager,
            },
        );
        if let Some(m) = self.rec.metrics() {
            m.messages_posted.inc();
            m.msg_bytes.record(bytes);
        }
        let (state, send_complete) = if eager {
            // Eager: payload leaves immediately; the library buffers it, so
            // the send request is complete as soon as it is injected.
            machine.net_send(src, dst, bytes.max(CTRL_BYTES), when, encode(id, PH_DATA));
            (MsgState::DataInFlight, true)
        } else {
            machine.net_send(src, dst, CTRL_BYTES, when, encode(id, PH_RTS));
            self.rec.record(
                src,
                when.0,
                Lane::Mpe,
                Event::RtsSent { msg: id, peer: dst },
            );
            (MsgState::RtsInFlight, false)
        };
        self.msgs.insert(
            id,
            Msg {
                src,
                dst,
                tag,
                bytes,
                payload,
                state,
                eager,
                matched_recv: None,
                send_complete,
            },
        );
        self.active[src].insert(id);
        self.active[dst].insert(id);
        SendHandle(id)
    }

    /// Post a non-blocking receive for a message from `src` with `tag`.
    pub fn irecv(&mut self, rank: Rank, src: Rank, tag: Tag) -> RecvHandle {
        assert!(rank < self.n && src < self.n, "rank out of range");
        let id = self.next_recv;
        self.next_recv += 1;
        self.recvs.insert(
            id,
            RecvReq {
                matched_msg: None,
                complete: false,
                payload: None,
            },
        );
        self.posted
            .entry((rank, src, tag))
            .or_default()
            .push_back(id);
        RecvHandle(id)
    }

    /// Record a wire delivery (called by the controller when a
    /// `MachineEvent::NetDeliver` with this token pops). The delivery is not
    /// yet *visible* to either rank — visibility requires `progress`.
    pub fn on_wire(&mut self, token: u64) {
        let (id, phase) = decode(token);
        let msg = self
            .msgs
            .get_mut(&id)
            .expect("wire token for unknown message");
        msg.state = match (phase, msg.state) {
            (PH_RTS, MsgState::RtsInFlight) => MsgState::RtsArrived,
            (PH_CTS, MsgState::CtsInFlight) => MsgState::CtsArrived,
            (PH_DATA, MsgState::DataInFlight) => MsgState::DataArrived,
            (p, s) => panic!("message {id}: phase {p} delivery in state {s:?}"),
        };
    }

    /// Drive the MPI library on `rank` at `now`: match arrived messages to
    /// posted receives, answer rendezvous handshakes, inject granted
    /// payloads, and complete requests. Returns the number of protocol
    /// actions taken (0 means nothing changed). The caller accounts the MPE
    /// call cost.
    pub fn progress(&mut self, rank: Rank, machine: &mut Machine, now: SimTime) -> usize {
        let mut actions = 0;
        // Deterministic iteration over this rank's live traffic only:
        // ascending message id gives MPI-FIFO matching.
        let ids: Vec<u64> = self.active[rank].iter().copied().collect();
        for id in ids {
            let (src, dst, tag, state, matched, eager) = {
                let m = &self.msgs[&id];
                (m.src, m.dst, m.tag, m.state, m.matched_recv, m.eager)
            };
            match state {
                MsgState::RtsArrived if dst == rank => {
                    // Match (or use an existing match) and grant the send.
                    let recv = matched.or_else(|| self.match_recv(id, dst, src, tag));
                    if let Some(r) = recv {
                        self.msgs.get_mut(&id).unwrap().matched_recv = Some(r);
                        machine.net_send(dst, src, CTRL_BYTES, now, encode(id, PH_CTS));
                        self.msgs.get_mut(&id).unwrap().state = MsgState::CtsInFlight;
                        self.rec.record(
                            dst,
                            now.0,
                            Lane::Mpe,
                            Event::CtsSent { msg: id, peer: src },
                        );
                        actions += 1;
                    }
                }
                MsgState::CtsArrived if src == rank => {
                    let bytes = self.msgs[&id].bytes;
                    machine.net_send(src, dst, bytes, now, encode(id, PH_DATA));
                    let m = self.msgs.get_mut(&id).unwrap();
                    m.state = MsgState::DataInFlight;
                    // Rendezvous send buffer is released once injected.
                    m.send_complete = true;
                    actions += 1;
                }
                MsgState::DataArrived if dst == rank => {
                    let recv = matched.or_else(|| self.match_recv(id, dst, src, tag));
                    if let Some(r) = recv {
                        let m = self.msgs.get_mut(&id).unwrap();
                        m.matched_recv = Some(r);
                        m.state = MsgState::Consumed;
                        let payload = m.payload.take();
                        debug_assert!(eager || m.send_complete);
                        let req = self.recvs.get_mut(&r).unwrap();
                        req.complete = true;
                        req.payload = payload;
                        self.recvs_completed += 1;
                        self.rec.record(
                            dst,
                            now.0,
                            Lane::Mpe,
                            Event::MsgDelivered {
                                msg: id,
                                peer: src,
                                tag,
                                bytes: self.msgs[&id].bytes,
                            },
                        );
                        actions += 1;
                        // Fully finished: retire from the live indexes (the
                        // eager/rendezvous send side is complete by now).
                        self.active[src].remove(&id);
                        self.active[dst].remove(&id);
                        self.msgs.remove(&id);
                    }
                }
                _ => {}
            }
        }
        self.rec.record(
            rank,
            now.0,
            Lane::Mpe,
            Event::ProgressCall {
                actions: actions as u64,
            },
        );
        if let Some(m) = self.rec.metrics() {
            m.progress_calls.inc();
        }
        actions
    }

    /// Pop the oldest unmatched posted receive on `rank` for `(src, tag)`.
    fn match_recv(&mut self, msg: u64, rank: Rank, src: Rank, tag: Tag) -> Option<u64> {
        let id = self.posted.get_mut(&(rank, src, tag))?.pop_front()?;
        self.recvs.get_mut(&id).unwrap().matched_msg = Some(msg);
        Some(id)
    }

    /// Has this send's buffer been handed to the network? (Observable only
    /// after a `progress` call on the sending rank, as in real MPI `Test`.)
    pub fn send_done(&self, h: SendHandle) -> bool {
        self.msgs.get(&h.0).is_none_or(|m| m.send_complete)
    }

    /// Has this receive completed?
    pub fn recv_done(&self, h: RecvHandle) -> bool {
        self.recvs[&h.0].complete
    }

    /// Take the functional payload of a completed receive.
    ///
    /// # Panics
    /// Panics if the receive has not completed.
    pub fn take_payload(&mut self, h: RecvHandle) -> Option<Vec<f64>> {
        let r = self.recvs.get_mut(&h.0).expect("unknown recv");
        assert!(r.complete, "take_payload before completion");
        r.payload.take()
    }

    /// Whether every send in `sends` has completed (MPI `Testall` shape).
    pub fn all_sends_done(&self, sends: &[SendHandle]) -> bool {
        sends.iter().all(|&h| self.send_done(h))
    }

    /// Whether an unmatched message from `src` with `tag` is waiting at
    /// `rank` (MPI `Iprobe` shape): its payload has arrived (eager) or its
    /// RTS has (rendezvous), but no posted receive has claimed it.
    pub fn iprobe(&self, rank: Rank, src: Rank, tag: Tag) -> bool {
        self.msgs.values().any(|m| {
            m.dst == rank
                && m.src == src
                && m.tag == tag
                && m.matched_recv.is_none()
                && matches!(m.state, MsgState::RtsArrived | MsgState::DataArrived)
        })
    }

    /// Messages still live (in flight or awaiting consumption) that involve
    /// `rank` as sender or receiver.
    pub fn outstanding(&self, rank: Rank) -> usize {
        self.active[rank].len()
    }

    /// Free the bookkeeping of a completed receive (after the payload has
    /// been consumed). Keeps long runs O(live traffic).
    pub fn retire_recv(&mut self, h: RecvHandle) {
        if let Some(r) = self.recvs.get(&h.0) {
            assert!(r.complete, "retiring an incomplete receive");
            self.recvs.remove(&h.0);
        }
    }

    /// True when no message is still in flight or awaiting consumption
    /// (quiescence check between timesteps). Fully finished messages are
    /// retired eagerly, so this checks emptiness of the live set.
    pub fn quiescent(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Outstanding handles at the end of a run, by `(rank, tag)`: one entry
    /// per live message (attributed to the *sending* rank) and one per
    /// posted-but-never-matched receive (attributed to the receiving rank).
    /// A clean run returns an empty vector; anything else is a leak the
    /// controller surfaces in `RunReport` instead of letting it vanish
    /// silently.
    pub fn leaked(&self) -> Vec<(Rank, Tag)> {
        let mut out: Vec<(Rank, Tag)> = self.msgs.values().map(|m| (m.src, m.tag)).collect();
        for (&(rank, _src, tag), q) in &self.posted {
            out.extend(q.iter().map(|_| (rank, tag)));
        }
        out.sort_unstable();
        out
    }

    /// Drop completed receives (fully finished messages are already retired
    /// eagerly by `progress`).
    pub fn compact(&mut self) {
        self.recvs.retain(|_, r| !r.complete);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_sim::{MachineConfig, MachineEvent};

    fn setup(n: usize) -> (Machine, MpiWorld) {
        (Machine::new(MachineConfig::sw26010(), n), MpiWorld::new(n))
    }

    /// Drain all machine events into the world.
    fn drain(m: &mut Machine, w: &mut MpiWorld) {
        while let Some((_, ev)) = m.pop() {
            if let MachineEvent::NetDeliver { token, .. } = ev {
                w.on_wire(token);
            }
        }
    }

    #[test]
    fn eager_send_completes_immediately_recv_needs_progress() {
        let (mut m, mut w) = setup(2);
        let s = w.isend(&mut m, 0, 1, 7, 100, None, SimTime::ZERO);
        assert!(w.send_done(s), "eager sends buffer and complete");
        let r = w.irecv(1, 0, 7);
        assert!(!w.recv_done(r));
        drain(&mut m, &mut w);
        // Arrived, but invisible until rank 1 progresses.
        assert!(!w.recv_done(r));
        let now = m.now();
        assert!(w.progress(1, &mut m, now) > 0);
        assert!(w.recv_done(r));
        assert!(w.quiescent());
    }

    #[test]
    fn rendezvous_requires_both_hosts_to_progress() {
        let (mut m, mut w) = setup(2);
        let bytes = 1_000_000; // > eager limit
        let s = w.isend(&mut m, 0, 1, 3, bytes, None, SimTime::ZERO);
        let r = w.irecv(1, 0, 3);
        assert!(!w.send_done(s), "rendezvous sends are not complete at post");

        // RTS arrives; receiver progress sends CTS.
        drain(&mut m, &mut w);
        let t = m.now();
        assert_eq!(w.progress(1, &mut m, t), 1);
        assert!(!w.send_done(s));
        assert!(!w.recv_done(r));

        // CTS arrives; *sender* progress injects the payload.
        drain(&mut m, &mut w);
        let t = m.now();
        assert_eq!(w.progress(0, &mut m, t), 1);
        assert!(w.send_done(s), "payload injected, buffer released");

        // Payload arrives; receiver progress completes the receive.
        drain(&mut m, &mut w);
        let t = m.now();
        assert_eq!(w.progress(1, &mut m, t), 1);
        assert!(w.recv_done(r));
        assert!(w.quiescent());
    }

    #[test]
    fn rendezvous_stalls_without_posted_recv() {
        let (mut m, mut w) = setup(2);
        w.isend(&mut m, 0, 1, 3, 1_000_000, None, SimTime::ZERO);
        drain(&mut m, &mut w);
        // Receiver progresses but has no matching irecv: nothing happens.
        let t = m.now();
        assert_eq!(w.progress(1, &mut m, t), 0);
        // Posting the receive unblocks the handshake.
        let r = w.irecv(1, 0, 3);
        let t = m.now();
        assert_eq!(w.progress(1, &mut m, t), 1);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(0, &mut m, t);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m, t);
        assert!(w.recv_done(r));
    }

    #[test]
    fn payload_travels_functionally() {
        let (mut m, mut w) = setup(2);
        let data = vec![1.5, 2.5, 3.5];
        w.isend(&mut m, 0, 1, 9, 24, Some(data.clone()), SimTime::ZERO);
        let r = w.irecv(1, 0, 9);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m, t);
        assert!(w.recv_done(r));
        assert_eq!(w.take_payload(r), Some(data));
    }

    #[test]
    fn matching_is_fifo_per_source_and_tag() {
        let (mut m, mut w) = setup(2);
        w.isend(&mut m, 0, 1, 5, 8, Some(vec![1.0]), SimTime::ZERO);
        w.isend(&mut m, 0, 1, 5, 8, Some(vec![2.0]), SimTime::ZERO);
        let r1 = w.irecv(1, 0, 5);
        let r2 = w.irecv(1, 0, 5);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m, t);
        assert!(w.recv_done(r1) && w.recv_done(r2));
        // First posted receive gets the first sent message.
        assert_eq!(w.take_payload(r1), Some(vec![1.0]));
        assert_eq!(w.take_payload(r2), Some(vec![2.0]));
    }

    #[test]
    fn tags_separate_message_streams() {
        let (mut m, mut w) = setup(2);
        w.isend(&mut m, 0, 1, 100, 8, Some(vec![1.0]), SimTime::ZERO);
        w.isend(&mut m, 0, 1, 200, 8, Some(vec![2.0]), SimTime::ZERO);
        let r200 = w.irecv(1, 0, 200);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m, t);
        assert!(w.recv_done(r200));
        assert_eq!(w.take_payload(r200), Some(vec![2.0]));
        assert!(!w.quiescent(), "tag-100 message still unconsumed");
        let r100 = w.irecv(1, 0, 100);
        let t = m.now();
        w.progress(1, &mut m, t);
        assert!(w.recv_done(r100));
        assert!(w.quiescent());
    }

    #[test]
    fn compact_drops_finished_traffic() {
        let (mut m, mut w) = setup(2);
        w.isend(&mut m, 0, 1, 1, 8, None, SimTime::ZERO);
        let r = w.irecv(1, 0, 1);
        drain(&mut m, &mut w);
        let t = m.now();
        w.progress(1, &mut m, t);
        assert!(w.recv_done(r));
        w.compact();
        assert!(w.msgs.is_empty() && w.recvs.is_empty());
        assert_eq!(w.recvs_completed, 1);
    }

    #[test]
    fn iprobe_and_outstanding_track_unmatched_arrivals() {
        let (mut m, mut w) = setup(2);
        let s = w.isend(&mut m, 0, 1, 5, 64, None, SimTime::ZERO);
        assert_eq!(w.outstanding(0), 1);
        assert_eq!(w.outstanding(1), 1);
        assert!(!w.iprobe(1, 0, 5), "not arrived yet");
        drain(&mut m, &mut w);
        assert!(w.iprobe(1, 0, 5), "arrived, unmatched");
        assert!(!w.iprobe(1, 0, 6), "wrong tag");
        assert!(!w.iprobe(0, 1, 5), "wrong direction");
        let r = w.irecv(1, 0, 5);
        let now = m.now();
        w.progress(1, &mut m, now);
        assert!(w.recv_done(r));
        assert!(!w.iprobe(1, 0, 5), "consumed");
        assert_eq!(w.outstanding(0), 0);
        assert!(w.all_sends_done(&[s]));
    }

    #[test]
    #[should_panic(expected = "self-sends")]
    fn self_sends_rejected() {
        let (mut m, mut w) = setup(2);
        w.isend(&mut m, 1, 1, 0, 8, None, SimTime::ZERO);
    }
}
