//! Simulated MPI for the TaihuLight reproduction.
//!
//! Provides the messaging substrate the Sunway-specific Uintah schedulers
//! are built on (paper §V): non-blocking point-to-point sends/receives whose
//! progression requires the host MPE to enter the library ([`comm`]), plus
//! closed-form modeled collectives for the per-timestep reductions
//! ([`collective`]).

#![warn(missing_docs)]
pub mod collective;
pub mod comm;

pub use collective::{ModeledAllreduce, ModeledBarrier, ModeledBcast, ReduceOp};
pub use comm::{
    CommConfig, EndpointId, MpiWorld, Rank, RecvHandle, SendHandle, SharedMpi, Tag, APP_TAG_LIMIT,
    CTRL_BYTES, MAX_MSG_ID,
};
