//! Property tests of the simulated MPI layer: matching order, payload
//! integrity, and eventual delivery under arbitrary interleavings.

use proptest::prelude::*;
use sw_mpi::MpiWorld;
use sw_sim::{Machine, MachineConfig, MachineEvent, SimTime};

/// Pump all pending machine events into the world.
fn drain(m: &mut Machine, w: &mut MpiWorld) {
    while let Some((_, ev)) = m.pop() {
        if let MachineEvent::NetDeliver { token, .. } = ev {
            w.on_wire(token);
        }
    }
}

/// Progress every rank until nothing changes and no events remain.
fn settle(m: &mut Machine, w: &mut MpiWorld, n: usize) {
    loop {
        drain(m, w);
        let now = m.now();
        let acted: usize = (0..n).map(|r| w.progress(r, &mut m.ctx(r), now)).sum();
        if acted == 0 && m.peek_time().is_none() {
            break;
        }
    }
}

proptest! {
    /// Any batch of sends with matching receives completes, with payloads
    /// delivered FIFO per (src, dst, tag) channel — for eager and rendezvous
    /// sizes alike.
    #[test]
    fn all_messages_deliver_in_channel_order(
        spec in prop::collection::vec((0usize..3, 0usize..3, 0u64..3, 1u64..40_000), 1..25)
    ) {
        let n = 4;
        let mut m = Machine::new(MachineConfig::sw26010(), n);
        let mut w = MpiWorld::new(n);
        // Post all sends with sequence-stamped payloads.
        let mut per_channel: std::collections::BTreeMap<(usize, usize, u64), Vec<f64>> =
            Default::default();
        for (i, &(src_raw, dst_raw, tag, bytes)) in spec.iter().enumerate() {
            let src = src_raw;
            let dst = if dst_raw == src { (dst_raw + 1) % n } else { dst_raw };
            let stamp = i as f64;
            w.isend(&mut m.ctx(src), src, dst, tag, bytes, Some(vec![stamp]), SimTime::ZERO);
            per_channel.entry((src, dst, tag)).or_default().push(stamp);
        }
        // Post matching receives (channel by channel, FIFO) and settle.
        let mut handles = Vec::new();
        for (&(src, dst, tag), stamps) in &per_channel {
            for _ in stamps {
                handles.push(((src, dst, tag), w.irecv(dst, src, tag)));
            }
        }
        settle(&mut m, &mut w, n);
        prop_assert!(w.quiescent(), "all traffic must finish");
        // Payloads must arrive in the exact order sent per channel.
        let mut got: std::collections::BTreeMap<(usize, usize, u64), Vec<f64>> = Default::default();
        for (ch, h) in handles {
            prop_assert!(w.recv_done(h));
            got.entry(ch).or_default().push(w.take_payload(h).unwrap()[0]);
        }
        for (ch, stamps) in per_channel {
            prop_assert_eq!(&got[&ch], &stamps, "channel {:?}", ch);
        }
    }

    /// Receives posted *after* arrival still match (the unexpected-message
    /// queue), in send order.
    #[test]
    fn late_receives_match_the_unexpected_queue(
        count in 1usize..8,
        bytes in 1u64..50_000,
    ) {
        let mut m = Machine::new(MachineConfig::sw26010(), 2);
        let mut w = MpiWorld::new(2);
        for i in 0..count {
            w.isend(&mut m.ctx(0), 0, 1, 9, bytes, Some(vec![i as f64]), SimTime::ZERO);
        }
        // Let everything that can move without receives move.
        settle(&mut m, &mut w, 2);
        prop_assert!(!w.quiescent());
        let handles: Vec<_> = (0..count).map(|_| w.irecv(1, 0, 9)).collect();
        settle(&mut m, &mut w, 2);
        for (i, h) in handles.into_iter().enumerate() {
            prop_assert!(w.recv_done(h));
            prop_assert_eq!(w.take_payload(h).unwrap(), vec![i as f64]);
        }
        prop_assert!(w.quiescent());
    }

    /// A send is never reported complete before it legally can be: for
    /// rendezvous sizes, only after the receiver posted and both sides
    /// progressed.
    #[test]
    fn rendezvous_send_completion_requires_handshake(bytes in 20_000u64..1_000_000) {
        let mut m = Machine::new(MachineConfig::sw26010(), 2);
        let mut w = MpiWorld::new(2);
        let s = w.isend(&mut m.ctx(0), 0, 1, 1, bytes, None, SimTime::ZERO);
        prop_assert!(!w.send_done(s));
        // Sender progressing alone can never complete it.
        for _ in 0..3 {
            drain(&mut m, &mut w);
            let now = m.now();
            w.progress(0, &mut m.ctx(0), now);
        }
        prop_assert!(!w.send_done(s));
        let r = w.irecv(1, 0, 1);
        settle(&mut m, &mut w, 2);
        prop_assert!(w.send_done(s));
        prop_assert!(w.recv_done(r));
    }
}
