//! Machine-model configuration, calibrated to the SW26010 / Sunway
//! TaihuLight parameters published in the paper (Table II, §IV) and to the
//! paper's own measured effective rates (§VII).
//!
//! Peak numbers come straight from the paper; *effective* rates are
//! calibrated backwards from the paper's results (e.g. the best observed
//! floating-point efficiency is 1.17% of CG peak, so the effective per-CPE
//! kernel throughput on the Burgers stencil is on the order of 0.1 Gflop/s —
//! software-emulated exponentials, cacheless CPEs, and un-overlapped DMA
//! dominate). EXPERIMENTS.md discusses the calibration in detail.

use serde::{Deserialize, Serialize};

use crate::time::SimDur;

/// All tunable parameters of the SW26010/TaihuLight machine model.
///
/// `PartialEq` is bitwise over the `f64` rates (no epsilon): two configs
/// are "equal" exactly when they produce identical cost formulas, which is
/// what the campaign cache's config identity needs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    // ---- topology (paper Table II, Fig 3) ----
    /// Computing Processing Elements per core group.
    pub cpes_per_cg: usize,
    /// Local Data Memory per CPE, bytes (64 KB scratchpad, §IV-A).
    pub ldm_bytes: usize,

    // ---- peak rates (paper §IV-A) ----
    /// MPE peak, Gflop/s (23.2).
    pub mpe_peak_gflops: f64,
    /// Per-CPE peak, Gflop/s (742.4 / 64 = 11.6).
    pub cpe_peak_gflops: f64,

    // ---- effective kernel rates (calibrated, §VII-E) ----
    /// Effective per-CPE throughput for a scalar (non-vectorized) stencil
    /// kernel with software exponentials, Gflop/s.
    pub cpe_scalar_gflops: f64,
    /// Effective per-CPE throughput for the SIMD-vectorized kernel, Gflop/s.
    /// The paper observes vectorization halving compute time (§VII-B).
    pub cpe_simd_gflops: f64,
    /// Effective MPE throughput for the same kernel run host-only, Gflop/s.
    /// Calibrated so CPE offload yields the paper's 2.7–6.0x boost (§VII-D).
    pub mpe_eff_gflops: f64,
    /// Extra per-exponential stall when the IEEE-conforming (slow) exp
    /// library is used instead of the fast one (§VI-C).
    pub accurate_exp_stall: SimDur,

    // ---- memory system (paper Table II: 4 * 128bit DDR3-2133) ----
    /// Aggregate main-memory bandwidth of one CG, GB/s.
    pub mem_bw_gbs: f64,
    /// Peak DMA bandwidth a single CPE can sustain, GB/s (row-strided tile
    /// transfers are far below the stream peak).
    pub dma_cpe_peak_gbs: f64,
    /// Start-up latency of one DMA descriptor (athread_get/put).
    pub dma_latency: SimDur,
    /// Effective bandwidth of MPE-side data motion (ghost packing, data-
    /// warehouse copies), GB/s. The MPE is a single weak core.
    pub mpe_copy_gbs: f64,

    // ---- interconnect (paper Table II) ----
    /// One-way point-to-point bandwidth, GB/s (16 GB/s bidirectional).
    pub net_bw_gbs: f64,
    /// Point-to-point latency (~1 us).
    pub net_latency: SimDur,
    /// Messages at or below this size use the eager protocol; larger ones
    /// rendezvous (and therefore need receiver-side progression).
    pub eager_limit_bytes: usize,

    // ---- runtime overheads (calibrated; see DESIGN.md §5) ----
    /// MPE cost of one MPI library call (isend/irecv/test).
    pub mpi_call_overhead: SimDur,
    /// Fixed MPE cost to prepare/dispatch one task (task-graph bookkeeping).
    pub mpe_task_overhead: SimDur,
    /// MPE data-warehouse bookkeeping per cell of the task's footprint; this
    /// is the work the asynchronous scheduler hides under kernel execution.
    pub mpe_task_per_cell: SimDur,
    /// athread spawn/offload cost per kernel (§IV-B: "lightweight").
    pub offload_spawn: SimDur,
    /// How often the asynchronous MPE checks the completion flag between its
    /// other jobs (§V-C step 3b: "checks the completion flag at times").
    /// Expected detection delay of a finished kernel is about one interval.
    pub flag_poll_interval: SimDur,
    /// Fractional slowdown of an offloaded kernel while the MPE busy-spins on
    /// the main-memory completion flag (synchronous mode only): the spin's
    /// uncached loads contend with CPE traffic at the memory controller.
    /// Calibrated to the paper's Tables VI/VII improvements.
    pub sync_spin_slowdown: f64,
}

/// Typed rejection of an unrepresentable machine configuration.
///
/// Every field a cost formula divides by (or a scheduler tiles against) is
/// gated here, so an adversarial config fails at [`MachineConfig::validate`]
/// with a named constraint instead of producing NaN durations, zero-CPE
/// divisions, or untileable LDM budgets deep inside a run.
#[derive(Clone, Debug, PartialEq)]
pub enum MachineConfigError {
    /// `cpes_per_cg` is zero — no CPE cluster to tile for.
    ZeroCpes,
    /// `ldm_bytes` is zero — no scratchpad to stage tiles in.
    ZeroLdm,
    /// A rate or factor that formulas divide by (or multiply times into)
    /// is non-positive or non-finite.
    BadRate {
        /// Field name.
        which: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `sync_spin_slowdown` is negative or non-finite (0 disables it).
    BadSpinSlowdown {
        /// The offending value.
        value: f64,
    },
}

impl core::fmt::Display for MachineConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MachineConfigError::ZeroCpes => write!(f, "cpes_per_cg must be >= 1"),
            MachineConfigError::ZeroLdm => write!(f, "ldm_bytes must be >= 1"),
            MachineConfigError::BadRate { which, value } => {
                write!(f, "{which} = {value} must be finite and positive")
            }
            MachineConfigError::BadSpinSlowdown { value } => {
                write!(f, "sync_spin_slowdown = {value} must be finite and >= 0")
            }
        }
    }
}

impl std::error::Error for MachineConfigError {}

impl MachineConfig {
    /// The calibrated SW26010 / TaihuLight model used for all reproductions.
    pub fn sw26010() -> Self {
        MachineConfig {
            cpes_per_cg: 64,
            ldm_bytes: 64 * 1024,
            mpe_peak_gflops: 23.2,
            cpe_peak_gflops: 11.6,
            cpe_scalar_gflops: 0.095,
            cpe_simd_gflops: 0.19,
            mpe_eff_gflops: 1.0,
            accurate_exp_stall: SimDur::from_ns(120.0),
            mem_bw_gbs: 34.1,
            dma_cpe_peak_gbs: 2.0,
            dma_latency: SimDur::from_us(1.0),
            mpe_copy_gbs: 2.0,
            net_bw_gbs: 8.0,
            net_latency: SimDur::from_us(1.0),
            eager_limit_bytes: 16 * 1024,
            mpi_call_overhead: SimDur::from_us(1.5),
            mpe_task_overhead: SimDur::from_us(120.0),
            mpe_task_per_cell: SimDur::from_ns(9.0),
            offload_spawn: SimDur::from_us(8.0),
            flag_poll_interval: SimDur::from_us(900.0),
            sync_spin_slowdown: 0.06,
        }
    }

    /// A tiny, fast configuration for unit tests: identical structure, much
    /// smaller constants so tests exercising many events stay quick.
    pub fn test_tiny() -> Self {
        MachineConfig {
            cpes_per_cg: 4,
            ldm_bytes: 8 * 1024,
            flag_poll_interval: SimDur::from_us(10.0),
            ..Self::sw26010()
        }
    }

    /// Constructor-level validation: reject configurations whose values
    /// would wrap, divide by zero, or produce non-finite durations inside
    /// the cost formulas. [`crate::Machine::new`] runs this, so an invalid
    /// machine cannot be constructed (previously these were implicit
    /// assumptions guarded, at best, by `debug_assert!`).
    pub fn validate(&self) -> Result<(), MachineConfigError> {
        if self.cpes_per_cg == 0 {
            return Err(MachineConfigError::ZeroCpes);
        }
        if self.ldm_bytes == 0 {
            return Err(MachineConfigError::ZeroLdm);
        }
        let rates = [
            ("mpe_peak_gflops", self.mpe_peak_gflops),
            ("cpe_peak_gflops", self.cpe_peak_gflops),
            ("cpe_scalar_gflops", self.cpe_scalar_gflops),
            ("cpe_simd_gflops", self.cpe_simd_gflops),
            ("mpe_eff_gflops", self.mpe_eff_gflops),
            ("mem_bw_gbs", self.mem_bw_gbs),
            ("dma_cpe_peak_gbs", self.dma_cpe_peak_gbs),
            ("mpe_copy_gbs", self.mpe_copy_gbs),
            ("net_bw_gbs", self.net_bw_gbs),
        ];
        for (which, value) in rates {
            if !value.is_finite() || value <= 0.0 {
                return Err(MachineConfigError::BadRate { which, value });
            }
        }
        if !self.sync_spin_slowdown.is_finite() || self.sync_spin_slowdown < 0.0 {
            return Err(MachineConfigError::BadSpinSlowdown {
                value: self.sync_spin_slowdown,
            });
        }
        Ok(())
    }

    /// Theoretical peak of one CG, Gflop/s (MPE + CPE cluster).
    pub fn cg_peak_gflops(&self) -> f64 {
        self.mpe_peak_gflops + self.cpe_peak_gflops * self.cpes_per_cg as f64
    }

    /// Effective DMA bandwidth seen by one CPE when `active` CPEs transfer
    /// concurrently: the per-CPE engine peak, capped by a fair share of the
    /// CG memory bandwidth.
    pub fn dma_bw_per_cpe(&self, active: usize) -> f64 {
        debug_assert!(active >= 1);
        self.dma_cpe_peak_gbs.min(self.mem_bw_gbs / active as f64)
    }

    /// Duration of one synchronous DMA transfer of `bytes` with `active`
    /// concurrent CPEs.
    pub fn dma_time(&self, bytes: u64, active: usize) -> SimDur {
        self.dma_latency + SimDur::from_secs_f64(bytes as f64 / (self.dma_bw_per_cpe(active) * 1e9))
    }

    /// Compute time for `flops` at a `gflops` effective rate.
    pub fn compute_time(flops: u64, gflops: f64) -> SimDur {
        assert!(gflops > 0.0);
        SimDur::from_secs_f64(flops as f64 / (gflops * 1e9))
    }

    /// MPE time to move `bytes` (pack/unpack/copy through the data
    /// warehouse).
    pub fn mpe_copy_time(&self, bytes: u64) -> SimDur {
        SimDur::from_secs_f64(bytes as f64 / (self.mpe_copy_gbs * 1e9))
    }

    /// Wire time of a point-to-point message of `bytes` (latency + serial
    /// transfer at the one-way link bandwidth).
    pub fn net_time(&self, bytes: u64) -> SimDur {
        self.net_latency + SimDur::from_secs_f64(bytes as f64 / (self.net_bw_gbs * 1e9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_match_paper_table_ii() {
        let c = MachineConfig::sw26010();
        // CPE cluster: 742.4 Gflop/s; CG: 765.6; node (4 CGs): 3.06 Tflop/s.
        assert!((c.cpe_peak_gflops * 64.0 - 742.4).abs() < 1e-9);
        assert!((c.cg_peak_gflops() - 765.6).abs() < 1e-9);
        assert!((4.0 * c.cg_peak_gflops() - 3062.4).abs() < 1e-9);
        assert_eq!(c.ldm_bytes, 65536);
        assert_eq!(c.cpes_per_cg, 64);
    }

    #[test]
    fn dma_bandwidth_contention() {
        let c = MachineConfig::sw26010();
        // One CPE alone gets its engine peak.
        assert_eq!(c.dma_bw_per_cpe(1), c.dma_cpe_peak_gbs);
        // All 64 share the memory controller fairly.
        let shared = c.dma_bw_per_cpe(64);
        assert!((shared - c.mem_bw_gbs / 64.0).abs() < 1e-12);
        assert!(shared < c.dma_cpe_peak_gbs);
    }

    #[test]
    fn dma_time_includes_latency() {
        let c = MachineConfig::sw26010();
        let t0 = c.dma_time(0, 1);
        assert_eq!(t0, c.dma_latency);
        let t = c.dma_time(2_000_000, 1); // 2 MB at 2 GB/s = 1 ms
        assert!((t.as_secs_f64() - (1e-6 + 1e-3)).abs() < 1e-9);
    }

    #[test]
    fn compute_time_scales_linearly() {
        let t1 = MachineConfig::compute_time(1_000_000, 1.0);
        let t2 = MachineConfig::compute_time(2_000_000, 1.0);
        assert_eq!(t2, t1 * 2);
        assert!((t1.as_secs_f64() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn net_time_matches_table_ii() {
        let c = MachineConfig::sw26010();
        // Latency-only for a zero-byte message.
        assert_eq!(c.net_time(0), c.net_latency);
        // 8 MB at 8 GB/s one-way = 1 ms + 1 us.
        let t = c.net_time(8_000_000);
        assert!((t.as_secs_f64() - 1.001e-3).abs() < 1e-9);
    }

    #[test]
    fn validation_accepts_the_shipped_presets_and_names_violations() {
        assert_eq!(MachineConfig::sw26010().validate(), Ok(()));
        assert_eq!(MachineConfig::test_tiny().validate(), Ok(()));
        let mut c = MachineConfig::sw26010();
        c.cpes_per_cg = 0;
        assert_eq!(c.validate(), Err(MachineConfigError::ZeroCpes));
        let mut c = MachineConfig::sw26010();
        c.ldm_bytes = 0;
        assert_eq!(c.validate(), Err(MachineConfigError::ZeroLdm));
        let mut c = MachineConfig::sw26010();
        c.net_bw_gbs = 0.0;
        assert!(matches!(
            c.validate(),
            Err(MachineConfigError::BadRate {
                which: "net_bw_gbs",
                ..
            })
        ));
        let mut c = MachineConfig::sw26010();
        c.cpe_scalar_gflops = f64::NAN;
        assert!(matches!(
            c.validate(),
            Err(MachineConfigError::BadRate { .. })
        ));
        let mut c = MachineConfig::sw26010();
        c.sync_spin_slowdown = -0.1;
        assert!(matches!(
            c.validate(),
            Err(MachineConfigError::BadSpinSlowdown { .. })
        ));
    }

    #[test]
    fn test_config_differs_only_where_documented() {
        let t = MachineConfig::test_tiny();
        let p = MachineConfig::sw26010();
        assert_eq!(t.cpes_per_cg, 4);
        assert_eq!(t.ldm_bytes, 8 * 1024);
        assert_eq!(t.mem_bw_gbs, p.mem_bw_gbs);
        assert_eq!(t.sync_spin_slowdown, p.sync_spin_slowdown);
    }
}
