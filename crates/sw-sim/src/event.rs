//! Deterministic discrete-event queue.
//!
//! Events fire in `(time, insertion sequence)` order, so two events scheduled
//! for the same instant always fire in the order they were scheduled —
//! repeated runs of the simulator are bit-reproducible regardless of payload
//! type or platform.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDur, SimTime};

struct Entry<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, o: &Self) -> bool {
        self.at == o.at && self.seq == o.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl<E> Ord for Entry<E> {
    // Reversed so the BinaryHeap max-heap pops the earliest event first.
    fn cmp(&self, o: &Self) -> Ordering {
        (o.at, o.seq).cmp(&(self.at, self.seq))
    }
}

/// A priority queue of timestamped events with a monotonically advancing
/// virtual clock.
///
/// ```
/// use sw_sim::{EventQueue, SimDur, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime(20), "late");
/// q.schedule_in(SimDur(5), "early");
/// assert_eq!(q.pop(), Some((SimTime(5), "early")));
/// assert_eq!(q.now(), SimTime(5));
/// assert_eq!(q.pop(), Some((SimTime(20), "late")));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `ev` at the absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — the clock never runs backwards.
    pub fn schedule_at(&mut self, at: SimTime, ev: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        self.heap.push(Entry {
            at,
            seq: self.seq,
            ev,
        });
        self.seq += 1;
    }

    /// Schedule `ev` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: SimDur, ev: E) {
        self.schedule_at(self.now + delay, ev);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now);
        self.now = e.at;
        self.popped += 1;
        Some((e.at, e.ev))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events popped so far (simulation-size statistic).
    pub fn popped(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), "c");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(20), "b");
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDur(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(7));
        // schedule_in is relative to the advanced clock.
        q.schedule_in(SimDur(3), ());
        assert_eq!(q.peek_time(), Some(SimTime(10)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), ());
        q.pop();
        q.schedule_at(SimTime(5), ());
    }

    #[test]
    fn counters_and_emptiness() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(SimTime(1), ());
        q.schedule_at(SimTime(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert_eq!(q.popped(), 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_schedule_pop_is_deterministic() {
        // Two structurally identical runs give identical traces.
        let run = || {
            let mut q = EventQueue::new();
            let mut trace = vec![];
            q.schedule_at(SimTime(2), 0u32);
            q.schedule_at(SimTime(1), 1);
            while let Some((t, e)) = q.pop() {
                trace.push((t, e));
                if e < 4 {
                    q.schedule_in(SimDur(2), e + 2);
                    q.schedule_in(SimDur(2), e + 100);
                }
            }
            trace
        };
        assert_eq!(run(), run());
    }
}
