//! Bounded exploration of the window protocol's interleaving space.
//!
//! Within one lookahead window the shards drain independently; the only
//! way two ranks can interact is through a cross-CG message in flight
//! between them (the communicator's operations for unrelated ranks
//! commute). Two drain orders of a window are therefore *trace
//! equivalent* — in the Mazurkiewicz sense classical DPOR reduces over —
//! exactly when every pair of ranks connected by a message edge drains in
//! the same relative order. The equivalence classes of the `n!` drain
//! permutations are the **acyclic orientations** of the window's
//! undirected interaction graph: a permutation induces an orientation
//! (each edge points from the earlier rank to the later one), and every
//! acyclic orientation is realized by one of its topological orders.
//!
//! [`WindowGraph`] builds that graph from the `(src, dst)` pairs logged by
//! `Machine::take_merge_log` and enumerates one representative drain order
//! per class. The explorer re-runs the simulation once per representative
//! and asserts bit-identical warehouse state — exhausting the reduced
//! interleaving space instead of sampling it.

/// Undirected interaction graph of one lookahead window: a node per rank,
/// an edge per rank pair that exchanged at least one cross-CG message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowGraph {
    /// Normalized `(lo, hi)` edges, deduplicated and sorted.
    edges: Vec<(usize, usize)>,
}

impl WindowGraph {
    /// Build the graph from the raw `(src, dst)` message pairs of one
    /// window's barrier merge. Direction and multiplicity are irrelevant
    /// for dependence, so edges are normalized and deduplicated;
    /// self-deliveries never reach the outbox but are dropped defensively.
    pub fn from_messages(msgs: &[(usize, usize)]) -> Self {
        let mut edges: Vec<(usize, usize)> = msgs
            .iter()
            .filter(|(a, b)| a != b)
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        edges.sort_unstable();
        edges.dedup();
        WindowGraph { edges }
    }

    /// The normalized edge set.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of dependence edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of acyclic orientations — the count of non-equivalent drain
    /// orders of this window (1 for an edgeless graph: all orders commute).
    pub fn n_classes(&self) -> usize {
        self.class_orders(usize::MAX, 0).len().max(1)
    }

    /// One representative drain order (a permutation of `0..n_ranks`) per
    /// acyclic orientation of the graph, at most `cap` of them. Each order
    /// is a deterministic smallest-rank-first topological sort of its
    /// orientation, so the all-edges-forward class yields the ascending
    /// baseline order the serial engine uses.
    pub fn class_orders(&self, cap: usize, n_ranks: usize) -> Vec<Vec<usize>> {
        let e = self.edges.len();
        if e == 0 || cap == 0 {
            return Vec::new();
        }
        // 2^E orientations; small windows only — the explorer caps E.
        assert!(
            e < usize::BITS as usize,
            "window graph too large to explore"
        );
        let n = n_ranks.max(self.edges.iter().map(|&(_, b)| b + 1).max().unwrap_or(0));
        let mut orders = Vec::new();
        for mask in 0usize..(1 << e) {
            // Bit i clear: edge i points lo -> hi (the baseline direction).
            let oriented: Vec<(usize, usize)> = self
                .edges
                .iter()
                .enumerate()
                .map(|(i, &(lo, hi))| {
                    if mask & (1 << i) == 0 {
                        (lo, hi)
                    } else {
                        (hi, lo)
                    }
                })
                .collect();
            if let Some(order) = toposort(n, &oriented) {
                orders.push(order);
                if orders.len() >= cap {
                    break;
                }
            }
        }
        orders
    }
}

/// Deterministic (smallest-node-first) Kahn topological sort over nodes
/// `0..n`; `None` when the orientation is cyclic (not a valid schedule).
fn toposort(n: usize, edges: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut indeg = vec![0usize; n];
    let mut succ = vec![Vec::new(); n];
    for &(a, b) in edges {
        indeg[b] += 1;
        succ[a].push(b);
    }
    let mut ready: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&v) = ready.iter().min() {
        ready.retain(|&u| u != v);
        order.push(v);
        for &w in &succ[v] {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                ready.push(w);
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_and_dedups_messages() {
        let g = WindowGraph::from_messages(&[(1, 0), (0, 1), (2, 1), (3, 3)]);
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
        assert_eq!(g.n_edges(), 2);
    }

    #[test]
    fn path_graph_has_2_pow_e_classes() {
        // A path is a tree: every orientation is acyclic.
        let g = WindowGraph::from_messages(&[(0, 1), (1, 2), (2, 3)]);
        let orders = g.class_orders(usize::MAX, 4);
        assert_eq!(orders.len(), 8);
        assert_eq!(g.n_classes(), 8);
        // The all-forward class is the ascending baseline.
        assert!(orders.contains(&vec![0, 1, 2, 3]));
        // Each representative is a permutation of 0..4.
        for o in &orders {
            let mut s = o.clone();
            s.sort_unstable();
            assert_eq!(s, vec![0, 1, 2, 3]);
        }
        // Distinct classes induce distinct edge orientations.
        let sig = |o: &[usize]| -> Vec<bool> {
            let pos: Vec<usize> = {
                let mut p = vec![0; o.len()];
                for (i, &r) in o.iter().enumerate() {
                    p[r] = i;
                }
                p
            };
            g.edges().iter().map(|&(a, b)| pos[a] < pos[b]).collect()
        };
        let mut sigs: Vec<_> = orders.iter().map(|o| sig(o)).collect();
        sigs.sort();
        sigs.dedup();
        assert_eq!(sigs.len(), 8, "one representative per orientation");
    }

    #[test]
    fn cyclic_orientations_are_excluded() {
        // Triangle: 8 orientations, 2 cyclic, 6 classes.
        let g = WindowGraph::from_messages(&[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.n_classes(), 6);
    }

    #[test]
    fn edgeless_graph_has_one_class_and_no_reruns() {
        let g = WindowGraph::from_messages(&[]);
        assert_eq!(g.n_classes(), 1);
        assert!(g.class_orders(usize::MAX, 4).is_empty());
    }

    #[test]
    fn cap_limits_enumeration() {
        let g = WindowGraph::from_messages(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.class_orders(3, 4).len(), 3);
    }
}
