//! Emulation of the SW26010's precise floating-point hardware counters.
//!
//! The paper counts the model problem's flops "directly using precise
//! hardware counters on SW26010" (§III-A, Table I) and uses the same counters
//! for the floating-point-performance figures (§VII-E). Counters here are
//! per-CG and categorized so the harness can report the exponential
//! contribution separately, as Table I's discussion does.

use serde::{Deserialize, Serialize};

/// Category a floating-point operation is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlopCategory {
    /// Stencil arithmetic of the kernel body.
    Stencil,
    /// Software-emulated exponentials (≈215 of the ~311 flops/cell).
    Exp,
    /// Coefficient evaluation (the non-exp part of the phi calls).
    Coeff,
    /// Boundary-condition fills.
    Boundary,
    /// Everything else (reductions, initialization).
    Other,
}

/// Per-CG flop counters, mirroring the per-CPE hardware counters summed over
/// a core group.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FlopCounters {
    stencil: u64,
    exp: u64,
    coeff: u64,
    boundary: u64,
    other: u64,
}

impl FlopCounters {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` flops in `cat`.
    #[inline]
    pub fn add(&mut self, cat: FlopCategory, n: u64) {
        match cat {
            FlopCategory::Stencil => self.stencil += n,
            FlopCategory::Exp => self.exp += n,
            FlopCategory::Coeff => self.coeff += n,
            FlopCategory::Boundary => self.boundary += n,
            FlopCategory::Other => self.other += n,
        }
    }

    /// Read one category.
    pub fn get(&self, cat: FlopCategory) -> u64 {
        match cat {
            FlopCategory::Stencil => self.stencil,
            FlopCategory::Exp => self.exp,
            FlopCategory::Coeff => self.coeff,
            FlopCategory::Boundary => self.boundary,
            FlopCategory::Other => self.other,
        }
    }

    /// Total across all categories (what the raw hardware counter reads).
    pub fn total(&self) -> u64 {
        self.stencil + self.exp + self.coeff + self.boundary + self.other
    }

    /// Zero all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Merge another counter set into this one (summing CGs to a machine
    /// total).
    pub fn merge(&mut self, o: &FlopCounters) {
        self.stencil += o.stencil;
        self.exp += o.exp;
        self.coeff += o.coeff;
        self.boundary += o.boundary;
        self.other += o.other;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_accumulate_independently() {
        let mut c = FlopCounters::new();
        c.add(FlopCategory::Exp, 215);
        c.add(FlopCategory::Stencil, 30);
        c.add(FlopCategory::Coeff, 66);
        c.add(FlopCategory::Exp, 5);
        assert_eq!(c.get(FlopCategory::Exp), 220);
        assert_eq!(c.get(FlopCategory::Stencil), 30);
        assert_eq!(c.get(FlopCategory::Boundary), 0);
        assert_eq!(c.total(), 316);
    }

    #[test]
    fn reset_and_merge() {
        let mut a = FlopCounters::new();
        a.add(FlopCategory::Other, 7);
        let mut b = FlopCounters::new();
        b.add(FlopCategory::Other, 3);
        b.add(FlopCategory::Boundary, 10);
        a.merge(&b);
        assert_eq!(a.total(), 20);
        a.reset();
        assert_eq!(a.total(), 0);
    }
}
