//! The per-CPE Local Data Memory (LDM): a 64 KB user-controlled scratchpad.
//!
//! CPEs are cacheless; the application must move data explicitly between
//! main memory and the LDM and use only the LDM as working memory
//! (paper §IV-A). [`LdmAlloc`] is a bump allocator over the scratchpad that
//! *enforces* the capacity limit — a kernel whose tile working set exceeds
//! 64 KB fails loudly rather than silently reading main memory, which is the
//! discipline the tile-size selection of §VI-A exists to satisfy.

use std::fmt;

/// Error returned when an allocation would overflow the scratchpad.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LdmOverflow {
    /// Bytes requested by the failing allocation.
    pub requested: usize,
    /// Bytes already in use.
    pub in_use: usize,
    /// Scratchpad capacity.
    pub capacity: usize,
}

impl fmt::Display for LdmOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LDM overflow: requested {} B with {} B already in use of {} B",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for LdmOverflow {}

/// Bump allocator over one CPE's scratchpad.
///
/// Allocations hand out owned `f64` buffers (the simulator has no reason to
/// model addresses) while the allocator tracks the byte budget exactly as the
/// hardware would. `reset` frees everything at once, matching the per-tile
/// reuse pattern of the CPE tile scheduler.
#[derive(Debug)]
pub struct LdmAlloc {
    capacity: usize,
    used: usize,
    high_water: usize,
}

impl LdmAlloc {
    /// Allocator over `capacity` bytes (64 KB on SW26010).
    pub fn new(capacity: usize) -> Self {
        LdmAlloc {
            capacity,
            used: 0,
            high_water: 0,
        }
    }

    /// Reserve `n` doubles of working memory; returns a zeroed buffer.
    pub fn alloc_f64(&mut self, n: usize) -> Result<Vec<f64>, LdmOverflow> {
        self.reserve(n * 8)?;
        Ok(vec![0.0; n])
    }

    /// Reserve raw bytes without materializing a buffer (model-mode sizing
    /// checks).
    pub fn reserve(&mut self, bytes: usize) -> Result<(), LdmOverflow> {
        if self.used + bytes > self.capacity {
            return Err(LdmOverflow {
                requested: bytes,
                in_use: self.used,
                capacity: self.capacity,
            });
        }
        self.used += bytes;
        self.high_water = self.high_water.max(self.used);
        Ok(())
    }

    /// Free everything (end of tile).
    pub fn reset(&mut self) {
        self.used = 0;
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Largest occupancy ever observed (the paper reports the Burgers tile
    /// working set as 41.3 KB of the 64 KB LDM, §VI-A).
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enforces_capacity() {
        let mut ldm = LdmAlloc::new(1024);
        let a = ldm.alloc_f64(64).unwrap(); // 512 B
        assert_eq!(a.len(), 64);
        assert_eq!(ldm.used(), 512);
        let err = ldm.alloc_f64(128).unwrap_err(); // would need 1024 more
        assert_eq!(err.in_use, 512);
        assert_eq!(err.requested, 1024);
        assert_eq!(err.capacity, 1024);
        // Exactly filling is fine.
        ldm.alloc_f64(64).unwrap();
        assert_eq!(ldm.used(), 1024);
    }

    #[test]
    fn reset_frees_and_high_water_persists() {
        let mut ldm = LdmAlloc::new(4096);
        ldm.alloc_f64(256).unwrap(); // 2048
        ldm.reset();
        assert_eq!(ldm.used(), 0);
        ldm.alloc_f64(64).unwrap();
        assert_eq!(ldm.high_water(), 2048);
    }

    #[test]
    fn burgers_tile_fits_paper_ldm() {
        // Paper §VI-A: tile 16x16x8 with one ghost layer; u (ghosted) plus
        // u_new (interior) is the working set and must fit in 64 KB.
        let mut ldm = LdmAlloc::new(64 * 1024);
        let ghosted = 18 * 18 * 10;
        let interior = 16 * 16 * 8;
        ldm.alloc_f64(ghosted).unwrap();
        ldm.alloc_f64(interior).unwrap();
        // ~42 KB: close to the paper's 41.3 KB figure.
        assert!(ldm.used() > 40 * 1024 && ldm.used() < 44 * 1024);
    }

    #[test]
    fn error_displays() {
        let e = LdmOverflow {
            requested: 10,
            in_use: 5,
            capacity: 12,
        };
        assert!(e.to_string().contains("LDM overflow"));
    }
}
