//! Deterministic discrete-event model of the Sunway SW26010 processor and
//! the TaihuLight interconnect.
//!
//! There is no Sunway toolchain or hardware available to this reproduction
//! (see DESIGN.md §2), so the machine the paper ports Uintah to is itself
//! built here as a calibrated simulator:
//!
//! * [`time`] / [`event`] — virtual time and a deterministic event queue;
//! * [`config`] — the SW26010/TaihuLight parameters (paper Table II) plus
//!   calibrated effective rates;
//! * [`machine`] — core groups (MPE + CPE cluster + NIC), each advanced by
//!   its own event queue and logical clock (conservative-PDES shards);
//! * [`mpe`] — serial busy-time accounting for the single management core;
//! * [`explore`] — the DPOR explorer's window message graph: equivalence
//!   classes of per-window drain orders (DESIGN.md §15);
//! * [`ldm`] — the capacity-enforcing 64 KB scratchpad allocator;
//! * [`flops`] — emulation of the precise per-CG floating-point counters.
//!
//! Structured tracing lives in `sw-telemetry` (the old stringly `Trace`
//! shim was removed once its last callers migrated to the `Recorder`);
//! deterministic fault injection consults an optional
//! [`sw_resilience::FaultPlan`] at the machine's DMA boundary.
//!
//! Higher layers (`sw-athread`, `sw-mpi`, `uintah-core`) mint opaque tokens,
//! drive the machine through [`machine::Machine`]'s primitives, and interpret
//! the [`machine::MachineEvent`]s that pop.

#![warn(missing_docs)]
pub mod config;
pub mod event;
pub mod explore;
pub mod flops;
pub mod ldm;
pub mod machine;
pub mod mpe;
pub mod noise;
pub mod time;

pub use config::{MachineConfig, MachineConfigError};
pub use event::EventQueue;
pub use explore::WindowGraph;
pub use flops::{FlopCategory, FlopCounters};
pub use ldm::{LdmAlloc, LdmOverflow};
pub use machine::{Cg, CgId, LookaheadViolation, Machine, MachineCtx, MachineEvent, MachineStats};
pub use mpe::MpeClock;
pub use noise::{KernelNoise, SplitMix64};
pub use time::{SimDur, SimTime};
