//! The machine: a set of core groups connected by the TaihuLight network.
//!
//! Since the conservative-PDES rework each core group owns its *own*
//! event queue and logical clock (a [`Shard`]); cross-CG traffic leaves a
//! shard through an **outbox** and is merged into the destination shard's
//! queue at a deterministic barrier. Rank-local layers act on the machine
//! through a [`MachineCtx`] — a borrow of exactly one shard plus the
//! immutable machine-wide state — which is what makes it sound to advance
//! many CGs concurrently on scoped threads.
//!
//! The machine layer knows about *hardware* happenings only; semantic layers
//! mint opaque tokens and interpret them when the corresponding
//! [`MachineEvent`] pops:
//!
//! * `sw-athread` mints kernel tokens and handles [`MachineEvent::KernelDone`],
//! * `sw-mpi` mints message tokens and handles [`MachineEvent::NetDeliver`],
//! * schedulers mint timer tokens and handle [`MachineEvent::Timer`].
//!
//! The pre-PDES whole-machine API (`pop`, `peek_time`, `net_send`, …) is
//! kept as a facade over the shards: it scans for the globally earliest
//! event and drains outboxes eagerly, so single-threaded callers and tests
//! observe one deterministic global timeline.

use std::sync::Arc;

use sw_resilience::{FaultPlan, FaultStats, OffloadKey};
use sw_telemetry::{Event, Lane, Recorder};

use crate::config::MachineConfig;
use crate::event::EventQueue;
use crate::flops::FlopCounters;
use crate::mpe::MpeClock;
use crate::noise::KernelNoise;
use crate::time::{SimDur, SimTime};

/// Index of a core group (used as the node/rank id: the paper uses CGs as
/// separate computing nodes, §IV-A).
pub type CgId = usize;

/// Hardware-level events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachineEvent {
    /// A CPE kernel finished and its completion flag was incremented to done.
    KernelDone {
        /// CG whose CPE cluster finished.
        cg: CgId,
        /// Token minted by the offloading layer.
        token: u64,
    },
    /// A network message fully arrived at the destination NIC.
    NetDeliver {
        /// Destination CG.
        dst: CgId,
        /// Token minted by the sending layer.
        token: u64,
    },
    /// A wakeup timer for a CG's MPE (completion-flag polls etc.).
    Timer {
        /// CG to wake.
        cg: CgId,
        /// Token minted by the scheduling layer.
        token: u64,
    },
}

/// State of one core group.
#[derive(Debug)]
pub struct Cg {
    /// The management element's serial clock.
    pub mpe: MpeClock,
    /// Emulated floating-point hardware counters (summed over the CG).
    pub counters: FlopCounters,
    /// End of the latest-finishing kernel on the cluster (slot occupancy is
    /// enforced by the athread layer, which may split the cluster into
    /// groups — paper §IX future work).
    cpe_busy_until: SimTime,
    /// Injection serialization points of this CG's NIC, one per endpoint
    /// lane (grown on demand; endpoint 0 is the classic single lane).
    /// Distinct lanes inject concurrently — the multi-endpoint model of
    /// the communication layer maps each simulated MPI endpoint onto its
    /// own lane so a bulk transfer cannot head-of-line-block control
    /// packets routed to a different endpoint.
    nic_free_at: Vec<SimTime>,
    /// Accumulated CPE-cluster busy time.
    cpe_busy_total: SimDur,
}

impl Cg {
    fn new() -> Self {
        Cg {
            mpe: MpeClock::new(),
            counters: FlopCounters::new(),
            cpe_busy_until: SimTime::ZERO,
            nic_free_at: Vec::new(),
            cpe_busy_total: SimDur::ZERO,
        }
    }

    /// When the CPE cluster finishes its current kernel.
    pub fn cpe_busy_until(&self) -> SimTime {
        self.cpe_busy_until
    }

    /// Total CPE-cluster busy time (utilization statistic).
    pub fn cpe_busy_total(&self) -> SimDur {
        self.cpe_busy_total
    }
}

/// Aggregate machine statistics.
#[derive(Clone, Debug, Default)]
pub struct MachineStats {
    /// Kernels offloaded to CPE clusters.
    pub kernels: u64,
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Total payload bytes sent on the network.
    pub net_bytes: u64,
    /// Timer events scheduled.
    pub timers: u64,
}

impl MachineStats {
    fn merge(&mut self, o: &MachineStats) {
        self.kernels += o.kernels;
        self.messages += o.messages;
        self.net_bytes += o.net_bytes;
        self.timers += o.timers;
    }
}

/// A message crossing shard boundaries: `(deliver, dst, token)`, parked in
/// the source shard's outbox until the next barrier merge.
type Outbound = (SimTime, CgId, u64);

/// One core group's slice of the machine: its event queue/logical clock,
/// hardware state, seeded noise stream, and outbox of cross-CG deliveries.
struct Shard {
    queue: EventQueue<MachineEvent>,
    cg: Cg,
    /// Per-shard noise stream so concurrent shards draw independently and
    /// deterministically (seed is mixed with the CG id).
    noise: Option<KernelNoise>,
    speed: f64,
    stats: MachineStats,
    outbox: Vec<Outbound>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            queue: EventQueue::new(),
            cg: Cg::new(),
            noise: None,
            speed: 1.0,
            stats: MachineStats::default(),
            outbox: Vec::new(),
        }
    }
}

/// Mix a machine-level noise seed with a CG id. CG 0 maps to the seed
/// unchanged, so single-CG noise streams match the pre-shard machine.
fn mix_seed(seed: u64, cg: CgId) -> u64 {
    seed ^ (cg as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A cross-CG delivery that lands *inside* the lookahead window just
/// drained — the conservative-PDES contract broken. Returned (typed, not
/// panicked) by [`Machine::merge_outboxes`] so pre-run checkers and the
/// controller can observe it gracefully; the panicking `Simulation::run`
/// API converts it back into the historical panic message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookaheadViolation {
    /// Source CG whose outbox held the offending message.
    pub src: CgId,
    /// Destination CG the message was addressed to.
    pub dst: CgId,
    /// Opaque message token (the communicator's wire id).
    pub token: u64,
    /// Modeled delivery instant.
    pub at: SimTime,
    /// End of the window that was already drained.
    pub window_end: SimTime,
}

impl std::fmt::Display for LookaheadViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lookahead violation: message from CG {} delivers at {}, \
             inside the window ending at {}",
            self.src, self.at, self.window_end
        )
    }
}

impl std::error::Error for LookaheadViolation {}

/// The simulated machine: `n` CGs plus the interconnect.
///
/// ```
/// use sw_sim::{Machine, MachineConfig, MachineEvent, SimDur, SimTime};
///
/// let mut m = Machine::new(MachineConfig::sw26010(), 2);
/// // Offload a 100us kernel to CG 0 and send 1 KiB from CG 0 to CG 1.
/// let done = m.offload_kernel(0, SimTime::ZERO, SimDur::from_us(100.0), 7);
/// m.net_send(0, 1, 1024, SimTime::ZERO, 9);
/// // The message (1us latency + wire time) pops before the kernel.
/// let (t1, ev1) = m.pop().unwrap();
/// assert!(matches!(ev1, MachineEvent::NetDeliver { dst: 1, token: 9 }));
/// let (t2, ev2) = m.pop().unwrap();
/// assert_eq!(t2, done);
/// assert!(matches!(ev2, MachineEvent::KernelDone { cg: 0, token: 7 }));
/// assert!(t1 < t2);
/// ```
pub struct Machine {
    cfg: MachineConfig,
    shards: Vec<Shard>,
    /// Telemetry sink for hardware-level events (disabled by default; the
    /// controller threads the run's recorder in via [`Machine::set_recorder`]).
    rec: Recorder,
    /// Optional fault plan consulted at the DMA boundary
    /// ([`Machine::offload_kernel_keyed`]) and for rank-level NIC jitter.
    faults: Option<Arc<FaultPlan>>,
    /// Noise parameters, kept so late-constructed shards could reuse them
    /// and so [`Machine::set_noise`] stays idempotent per shard.
    noise: Option<(f64, u64)>,
    /// When `Some`, every cross-shard delivery merged by
    /// [`Machine::merge_outboxes`] is appended as `(src, dst)` — the
    /// window-interaction edges the DPOR explorer builds its dependency
    /// graphs from. Drained with [`Machine::take_merge_log`].
    merge_log: Option<Vec<(CgId, CgId)>>,
    /// When set, phase B of [`Machine::merge_outboxes`] (the per-destination
    /// appends) runs on scoped threads. Off by default; the controller
    /// enables it for multi-threaded PDES runs. Bit-identical to the serial
    /// merge by construction — see `merge_outboxes`.
    parallel_merge: bool,
}

impl Machine {
    /// A machine of `n_cgs` core groups with configuration `cfg`.
    pub fn new(cfg: MachineConfig, n_cgs: usize) -> Self {
        assert!(n_cgs >= 1);
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid machine configuration: {e}"));
        Machine {
            cfg,
            shards: (0..n_cgs).map(|_| Shard::new()).collect(),
            rec: Recorder::off(),
            faults: None,
            noise: None,
            merge_log: None,
            parallel_merge: false,
        }
    }

    /// Thread a telemetry recorder through the machine's hardware events.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// The machine's telemetry recorder (disabled unless set/enabled).
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// Thread a fault plan through the machine's DMA and NIC boundaries.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// The machine's fault plan, when one is installed.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Enable seeded kernel-duration noise of up to `frac`.
    ///
    /// Each CG draws from its own stream (seed mixed with the CG id), so
    /// noise stays bit-reproducible when shards advance concurrently.
    pub fn set_noise(&mut self, frac: f64, seed: u64) {
        self.noise = (frac > 0.0).then_some((frac, seed));
        for (cg, shard) in self.shards.iter_mut().enumerate() {
            shard.noise = (frac > 0.0).then(|| KernelNoise::new(frac, mix_seed(seed, cg)));
        }
    }

    /// Set one CG's relative speed (e.g. 0.5 = half as fast).
    ///
    /// # Panics
    /// Panics on non-positive speeds.
    pub fn set_cg_speed(&mut self, cg: CgId, speed: f64) {
        assert!(speed > 0.0, "speed must be positive");
        self.shards[cg].speed = speed;
    }

    /// A CG's relative speed.
    pub fn cg_speed(&self, cg: CgId) -> f64 {
        self.shards[cg].speed
    }

    /// The machine configuration.
    pub fn cfg(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of core groups.
    pub fn n_cgs(&self) -> usize {
        self.shards.len()
    }

    /// Current virtual time: the furthest-advanced shard clock.
    pub fn now(&self) -> SimTime {
        self.shards
            .iter()
            .map(|s| s.queue.now())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// One shard's logical clock.
    pub fn shard_now(&self, cg: CgId) -> SimTime {
        self.shards[cg].queue.now()
    }

    /// Timestamp of one shard's next queued event (outboxes not included).
    pub fn shard_peek(&self, cg: CgId) -> Option<SimTime> {
        self.shards[cg].queue.peek_time()
    }

    /// Pop the globally earliest hardware event, advancing that shard's
    /// clock. Outboxes are merged first so cross-CG messages are visible;
    /// ties across shards break by CG id (within a shard, by schedule
    /// order), which keeps the facade timeline deterministic.
    pub fn pop(&mut self) -> Option<(SimTime, MachineEvent)> {
        self.merge_outboxes(None)
            .expect("merge without a window floor cannot violate lookahead");
        let rank = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(r, s)| s.queue.peek_time().map(|t| (t, r)))
            .min()?
            .1;
        self.shards[rank].queue.pop()
    }

    /// Timestamp of the next pending event anywhere (queues and outboxes).
    pub fn peek_time(&self) -> Option<SimTime> {
        let queued = self.shards.iter().filter_map(|s| s.queue.peek_time());
        let outbound = self
            .shards
            .iter()
            .flat_map(|s| s.outbox.iter().map(|&(at, _, _)| at));
        queued.chain(outbound).min()
    }

    /// Merge every shard's outbox into the destination queues, in source
    /// rank order and outbox push order — the deterministic barrier of the
    /// window protocol. With `floor = Some(end)` (the window end), a
    /// delivery scheduled before `end` is a **lookahead violation**: the
    /// conservative contract promised no cross-CG message could land inside
    /// the window just drained. The violation is returned as a typed error
    /// (the static lookahead proof in `sw-analyze` rules it out pre-run);
    /// on `Err` **no** delivery has been applied and every outbox is left
    /// intact, so checkers can inspect the offending state.
    ///
    /// Internally the merge is *bucket-then-append*: a serial phase A scans
    /// outboxes in src-major/push order (validating the floor, feeding the
    /// merge log, and bucketing each delivery by destination), then phase B
    /// appends each destination's bucket to that shard's queue. Because
    /// phase A fixes the per-destination order and phase B touches each
    /// destination queue exactly once, the appends are independent across
    /// destinations — [`Machine::set_parallel_merge`] runs them on scoped
    /// threads with bit-identical results.
    pub fn merge_outboxes(&mut self, floor: Option<SimTime>) -> Result<(), LookaheadViolation> {
        // Phase A (serial): validate all-or-nothing, log, and bucket in
        // src-major/push order so every destination's append order is the
        // documented deterministic one.
        if let Some(end) = floor {
            for (src, shard) in self.shards.iter().enumerate() {
                for &(at, dst, token) in &shard.outbox {
                    if at < end {
                        return Err(LookaheadViolation {
                            src,
                            dst,
                            token,
                            at,
                            window_end: end,
                        });
                    }
                }
            }
        }
        let mut buckets: Vec<Vec<(SimTime, u64)>> = vec![Vec::new(); self.shards.len()];
        let mut any = false;
        for src in 0..self.shards.len() {
            if self.shards[src].outbox.is_empty() {
                continue;
            }
            any = true;
            let outbox = std::mem::take(&mut self.shards[src].outbox);
            for (at, dst, token) in outbox {
                if let Some(log) = &mut self.merge_log {
                    log.push((src, dst));
                }
                buckets[dst].push((at, token));
            }
        }
        if !any {
            return Ok(());
        }
        // Phase B: per-destination appends — disjoint mutable state, so the
        // parallel path is a plain fan-out with no ordering decisions left.
        if self.parallel_merge {
            rayon::scope(|s| {
                for (dst, (shard, bucket)) in self.shards.iter_mut().zip(buckets).enumerate() {
                    if bucket.is_empty() {
                        continue;
                    }
                    s.spawn(move || {
                        for (at, token) in bucket {
                            shard
                                .queue
                                .schedule_at(at, MachineEvent::NetDeliver { dst, token });
                        }
                    });
                }
            });
        } else {
            for (dst, (shard, bucket)) in self.shards.iter_mut().zip(buckets).enumerate() {
                for (at, token) in bucket {
                    shard
                        .queue
                        .schedule_at(at, MachineEvent::NetDeliver { dst, token });
                }
            }
        }
        Ok(())
    }

    /// Run phase B of [`Machine::merge_outboxes`] (the per-destination
    /// appends) on scoped threads. Off by default; bit-identical either
    /// way because the serial phase A already fixed every destination's
    /// append order.
    pub fn set_parallel_merge(&mut self, on: bool) {
        self.parallel_merge = on;
    }

    /// Start (or stop) logging the `(src, dst)` pair of every merged
    /// cross-shard delivery. The DPOR explorer uses the per-window logs as
    /// interaction edges; off by default (zero cost).
    pub fn set_merge_log(&mut self, on: bool) {
        self.merge_log = on.then(Vec::new);
    }

    /// Drain the merge log accumulated since the last call (empty when
    /// logging is off).
    pub fn take_merge_log(&mut self) -> Vec<(CgId, CgId)> {
        self.merge_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// True when any shard still has an undelivered outbox entry.
    pub fn has_outbound(&self) -> bool {
        self.shards.iter().any(|s| !s.outbox.is_empty())
    }

    /// Events processed so far, summed over shards.
    pub fn events_popped(&self) -> u64 {
        self.shards.iter().map(|s| s.queue.popped()).sum()
    }

    /// Aggregate statistics, summed over shards.
    pub fn stats(&self) -> MachineStats {
        let mut total = MachineStats::default();
        for s in &self.shards {
            total.merge(&s.stats);
        }
        total
    }

    /// Access a CG.
    pub fn cg(&self, id: CgId) -> &Cg {
        &self.shards[id].cg
    }

    /// Mutably access a CG.
    pub fn cg_mut(&mut self, id: CgId) -> &mut Cg {
        &mut self.shards[id].cg
    }

    /// Sum the flop counters of all CGs.
    pub fn total_flops(&self) -> FlopCounters {
        let mut total = FlopCounters::new();
        for s in &self.shards {
            total.merge(&s.cg.counters);
        }
        total
    }

    /// Borrow one shard as a [`MachineCtx`] — the machine handle a rank's
    /// layers (athread, MPI, scheduler) act through.
    pub fn ctx(&mut self, rank: CgId) -> MachineCtx<'_> {
        let n_cgs = self.shards.len();
        MachineCtx {
            rank,
            n_cgs,
            cfg: &self.cfg,
            shard: &mut self.shards[rank],
            rec: &self.rec,
            faults: self.faults.as_ref(),
        }
    }

    /// Borrow **all** shards as disjoint [`MachineCtx`]s at once, for the
    /// PDES engine to hand out across scoped threads.
    pub fn ctxs(&mut self) -> Vec<MachineCtx<'_>> {
        let n_cgs = self.shards.len();
        let cfg = &self.cfg;
        let rec = &self.rec;
        let faults = self.faults.as_ref();
        self.shards
            .iter_mut()
            .enumerate()
            .map(|(rank, shard)| MachineCtx {
                rank,
                n_cgs,
                cfg,
                shard,
                rec,
                faults,
            })
            .collect()
    }

    /// Run a kernel on (a group of) `cg`'s CPE cluster for `dur`, starting
    /// no earlier than `start`. Facade over [`MachineCtx::offload_kernel`].
    pub fn offload_kernel(&mut self, cg: CgId, start: SimTime, dur: SimDur, token: u64) -> SimTime {
        self.ctx(cg)
            .offload_kernel_keyed(cg, start, dur, token, None)
            .expect("unkeyed offloads never fault")
    }

    /// [`Machine::offload_kernel`] with an optional fault-plan key. Facade
    /// over [`MachineCtx::offload_kernel_keyed`].
    pub fn offload_kernel_keyed(
        &mut self,
        cg: CgId,
        start: SimTime,
        dur: SimDur,
        token: u64,
        key: Option<&OffloadKey>,
    ) -> Option<SimTime> {
        self.ctx(cg)
            .offload_kernel_keyed(cg, start, dur, token, key)
    }

    /// Inject a message of `bytes` from `src` to `dst`. Facade over
    /// [`MachineCtx::net_send`] that merges the outbox immediately, so the
    /// delivery is visible to the next [`Machine::pop`].
    pub fn net_send(
        &mut self,
        src: CgId,
        dst: CgId,
        bytes: u64,
        when: SimTime,
        token: u64,
    ) -> SimTime {
        let deliver = self.ctx(src).net_send(src, dst, bytes, when, token);
        self.merge_outboxes(None)
            .expect("merge without a window floor cannot violate lookahead");
        deliver
    }

    /// Schedule a wakeup timer for `cg` at `at` (clamped to its clock).
    pub fn timer_at(&mut self, cg: CgId, at: SimTime, token: u64) {
        self.ctx(cg).timer_at(cg, at, token);
    }
}

/// A single shard's view of the machine: everything a rank's semantic
/// layers may touch while that rank is being advanced (possibly on a
/// worker thread, concurrently with other shards).
///
/// The method names mirror [`Machine`]'s, so layer code reads identically;
/// CG-indexed methods assert the index is this context's own rank — the
/// only cross-rank action a shard may take is [`MachineCtx::net_send`],
/// which parks the delivery in the outbox for the barrier merge.
pub struct MachineCtx<'a> {
    rank: CgId,
    n_cgs: usize,
    cfg: &'a MachineConfig,
    shard: &'a mut Shard,
    rec: &'a Recorder,
    faults: Option<&'a Arc<FaultPlan>>,
}

impl MachineCtx<'_> {
    /// The rank this context is bound to.
    pub fn rank(&self) -> CgId {
        self.rank
    }

    /// Reborrow this context with a shorter lifetime — hand a by-value
    /// `MachineCtx` to a callee (e.g. a `StepCtx`) without giving up the
    /// original.
    pub fn reborrow(&mut self) -> MachineCtx<'_> {
        MachineCtx {
            rank: self.rank,
            n_cgs: self.n_cgs,
            cfg: self.cfg,
            shard: &mut *self.shard,
            rec: self.rec,
            faults: self.faults,
        }
    }

    /// Number of core groups in the whole machine.
    pub fn n_cgs(&self) -> usize {
        self.n_cgs
    }

    /// The machine configuration.
    pub fn cfg(&self) -> &MachineConfig {
        self.cfg
    }

    /// This shard's logical clock.
    pub fn now(&self) -> SimTime {
        self.shard.queue.now()
    }

    /// The telemetry recorder.
    pub fn recorder(&self) -> &Recorder {
        self.rec
    }

    /// The fault plan, when one is installed.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults
    }

    /// This shard's CG state. `id` must be this context's rank.
    pub fn cg(&self, id: CgId) -> &Cg {
        assert_eq!(id, self.rank, "shard ctx may only touch its own CG");
        &self.shard.cg
    }

    /// Mutable CG state. `id` must be this context's rank.
    pub fn cg_mut(&mut self, id: CgId) -> &mut Cg {
        assert_eq!(id, self.rank, "shard ctx may only touch its own CG");
        &mut self.shard.cg
    }

    /// This CG's relative speed. `id` must be this context's rank.
    pub fn cg_speed(&self, id: CgId) -> f64 {
        assert_eq!(id, self.rank, "shard ctx may only touch its own CG");
        self.shard.speed
    }

    /// Timestamp of this shard's next queued event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.shard.queue.peek_time()
    }

    /// Pop this shard's next event if it fires strictly before `bound`
    /// (the current window end), advancing the shard clock.
    pub fn pop_before(&mut self, bound: SimTime) -> Option<(SimTime, MachineEvent)> {
        if self.shard.queue.peek_time()? < bound {
            self.shard.queue.pop()
        } else {
            None
        }
    }

    /// Run a kernel on this CG's CPE cluster (see [`Machine::offload_kernel`]).
    pub fn offload_kernel(&mut self, cg: CgId, start: SimTime, dur: SimDur, token: u64) -> SimTime {
        self.offload_kernel_keyed(cg, start, dur, token, None)
            .expect("unkeyed offloads never fault")
    }

    /// [`MachineCtx::offload_kernel`] with an optional fault-plan key.
    ///
    /// When a fault plan is installed and `key` is provided, the plan may
    /// inject a **DMA transfer error**: the kernel never starts, no
    /// [`MachineEvent::KernelDone`] is scheduled, and `None` is returned.
    /// The caller (athread layer) keeps the slot occupied until its MPE
    /// deadline detector fires — exactly like a silent slot death.
    pub fn offload_kernel_keyed(
        &mut self,
        cg: CgId,
        start: SimTime,
        dur: SimDur,
        token: u64,
        key: Option<&OffloadKey>,
    ) -> Option<SimTime> {
        assert_eq!(cg, self.rank, "shard ctx may only offload to its own CG");
        let begin = start.max(self.shard.queue.now());
        if let (Some(plan), Some(k)) = (self.faults, key) {
            if plan.dma_fault(k) {
                FaultStats::bump(&plan.stats.injected_dma_error);
                self.rec.record(
                    cg,
                    begin.0,
                    Lane::Cpe(0),
                    Event::FaultInjected {
                        kind: "dma_error",
                        id: token,
                    },
                );
                return None;
            }
        }
        let mut dur = dur.scale(1.0 / self.shard.speed);
        if let Some(noise) = &mut self.shard.noise {
            dur = dur.scale(noise.draw());
        }
        let end = begin + dur;
        self.shard.cg.cpe_busy_until = self.shard.cg.cpe_busy_until.max(end);
        self.shard.cg.cpe_busy_total += dur;
        self.shard.stats.kernels += 1;
        self.shard
            .queue
            .schedule_at(end, MachineEvent::KernelDone { cg, token });
        Some(end)
    }

    /// Inject a message of `bytes` from `src` (this rank) to `dst`, with
    /// the send-side work beginning no earlier than `when`. Injection
    /// serializes on the source NIC; delivery is injection end plus wire
    /// time plus latency. The delivery is parked in this shard's outbox — it
    /// reaches `dst`'s queue at the next barrier merge — and its time is
    /// returned. Delivery can never precede `now + net_latency`, which is
    /// exactly the lookahead the PDES window protocol relies on.
    ///
    /// Sends on the default endpoint lane 0; multi-endpoint senders use
    /// [`MachineCtx::net_send_ep`].
    pub fn net_send(
        &mut self,
        src: CgId,
        dst: CgId,
        bytes: u64,
        when: SimTime,
        token: u64,
    ) -> SimTime {
        self.net_send_ep(src, dst, bytes, when, token, 0)
    }

    /// [`MachineCtx::net_send`] on a specific NIC endpoint lane.
    ///
    /// Each lane is its own injection serialization point (grown on
    /// demand), so packets on different endpoints of one CG inject
    /// concurrently; packets on the *same* endpoint still serialize in
    /// send order. Wire time, latency, jitter, and the lookahead floor
    /// (`now + net_latency`) are identical across lanes — endpoints widen
    /// injection bandwidth, they never shorten a delivery.
    pub fn net_send_ep(
        &mut self,
        src: CgId,
        dst: CgId,
        bytes: u64,
        when: SimTime,
        token: u64,
        ep: u32,
    ) -> SimTime {
        assert_eq!(src, self.rank, "shard ctx may only send from its own CG");
        assert!(dst < self.n_cgs, "bad destination CG {dst}");
        let lanes = &mut self.shard.cg.nic_free_at;
        if lanes.len() <= ep as usize {
            lanes.resize(ep as usize + 1, SimTime::ZERO);
        }
        let inject_start = when.max(lanes[ep as usize]).max(self.shard.queue.now());
        let inject_dur = SimDur::from_secs_f64(bytes as f64 / (self.cfg.net_bw_gbs * 1e9));
        let inject_end = inject_start + inject_dur;
        self.shard.cg.nic_free_at[ep as usize] = inject_end;
        // Rank-level NIC jitter: a jittered source pays constant extra
        // latency on every packet it injects (models a hot/slow node).
        let jitter = self
            .faults
            .and_then(|p| p.jitter_ps(src as u32))
            .map_or(SimDur::ZERO, SimDur);
        let deliver = inject_end + self.cfg.net_latency + jitter;
        self.shard.stats.messages += 1;
        self.shard.stats.net_bytes += bytes;
        self.rec.record(
            src,
            inject_start.0,
            Lane::Wire,
            Event::MsgOnWire {
                msg: token,
                src,
                dst,
                bytes,
                deliver_ps: deliver.0,
            },
        );
        if dst == src {
            // Self-delivery stays shard-local (no barrier needed).
            self.shard
                .queue
                .schedule_at(deliver, MachineEvent::NetDeliver { dst, token });
        } else {
            self.shard.outbox.push((deliver, dst, token));
        }
        deliver
    }

    /// Schedule a wakeup timer for this CG at `at` (clamped to its clock).
    pub fn timer_at(&mut self, cg: CgId, at: SimTime, token: u64) {
        assert_eq!(cg, self.rank, "shard ctx may only arm its own timers");
        self.shard.stats.timers += 1;
        let at = at.max(self.shard.queue.now());
        self.shard
            .queue
            .schedule_at(at, MachineEvent::Timer { cg, token });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(n: usize) -> Machine {
        Machine::new(MachineConfig::sw26010(), n)
    }

    #[test]
    fn kernels_may_overlap_on_group_slots() {
        let mut m = machine(1);
        let e1 = m.offload_kernel(0, SimTime(0), SimDur(100), 1);
        assert_eq!(e1, SimTime(100));
        // A second kernel (another CPE group) runs concurrently.
        let e2 = m.offload_kernel(0, SimTime(10), SimDur(50), 2);
        assert_eq!(e2, SimTime(60));
        assert_eq!(m.cg(0).cpe_busy_total(), SimDur(150));
        assert_eq!(m.cg(0).cpe_busy_until(), SimTime(100));
        let (t1, ev1) = m.pop().unwrap();
        assert_eq!(
            (t1, ev1),
            (SimTime(60), MachineEvent::KernelDone { cg: 0, token: 2 })
        );
        let (t2, _) = m.pop().unwrap();
        assert_eq!(t2, SimTime(100));
    }

    #[test]
    fn messages_serialize_on_source_nic() {
        let mut m = machine(2);
        let bytes = 8_000_000_000; // 1 s of injection at 8 GB/s
        let d1 = m.net_send(0, 1, bytes, SimTime(0), 1);
        let d2 = m.net_send(0, 1, bytes, SimTime(0), 2);
        // Second injection starts after the first finishes.
        assert_eq!(d2.since(d1), SimDur::from_secs_f64(1.0));
        assert_eq!(m.stats().messages, 2);
        assert_eq!(m.stats().net_bytes, 2 * bytes);
    }

    #[test]
    fn delivery_includes_latency() {
        let mut m = machine(2);
        let d = m.net_send(0, 1, 0, SimTime(0), 7);
        assert_eq!(d, SimTime::ZERO + m.cfg().net_latency);
        let (t, ev) = m.pop().unwrap();
        assert_eq!(t, d);
        assert_eq!(ev, MachineEvent::NetDeliver { dst: 1, token: 7 });
    }

    #[test]
    fn different_nics_do_not_contend() {
        let mut m = machine(3);
        let bytes = 8_000_000_000;
        let d1 = m.net_send(0, 2, bytes, SimTime(0), 1);
        let d2 = m.net_send(1, 2, bytes, SimTime(0), 2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut m = machine(1);
        m.timer_at(0, SimTime(50), 5);
        m.timer_at(0, SimTime(25), 4);
        let (t, ev) = m.pop().unwrap();
        assert_eq!(t, SimTime(25));
        assert_eq!(ev, MachineEvent::Timer { cg: 0, token: 4 });
        assert_eq!(m.stats().timers, 2);
    }

    #[test]
    fn slow_cg_stretches_kernels() {
        let mut m = machine(2);
        m.set_cg_speed(1, 0.5);
        let e0 = m.offload_kernel(0, SimTime(0), SimDur(100), 1);
        let e1 = m.offload_kernel(1, SimTime(0), SimDur(100), 2);
        assert_eq!(e0, SimTime(100));
        assert_eq!(e1, SimTime(200), "half-speed CG takes twice as long");
    }

    #[test]
    fn noise_is_seeded_and_bounded() {
        let run = |seed: u64| {
            let mut m = machine(1);
            m.set_noise(0.10, seed);
            (0..20)
                .map(|i| m.offload_kernel(0, SimTime(0), SimDur(1000), i).0)
                .collect::<Vec<u64>>()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a, b, "same seed, same stretch");
        assert_ne!(a, run(6), "different seed, different stretch");
        assert!(a.iter().all(|&e| (1000..=1100).contains(&e)), "{a:?}");
        assert!(a.iter().any(|&e| e != 1000), "noise must do something");
    }

    #[test]
    fn per_cg_noise_streams_are_independent() {
        // Two CGs running identical kernels draw different (but seeded)
        // stretches, and the draws do not depend on interleaving order.
        let mut m = machine(2);
        m.set_noise(0.10, 42);
        let a0 = m.offload_kernel(0, SimTime(0), SimDur(1000), 1);
        let b0 = m.offload_kernel(1, SimTime(0), SimDur(1000), 2);
        let mut m2 = machine(2);
        m2.set_noise(0.10, 42);
        // Reverse the offload order: per-CG streams must be unaffected.
        let b1 = m2.offload_kernel(1, SimTime(0), SimDur(1000), 2);
        let a1 = m2.offload_kernel(0, SimTime(0), SimDur(1000), 1);
        assert_eq!(a0, a1, "CG 0 stream independent of interleaving");
        assert_eq!(b0, b1, "CG 1 stream independent of interleaving");
        assert_ne!(a0, b0, "distinct CGs draw from distinct streams");
    }

    #[test]
    fn recorder_is_off_by_default_then_captures_wire_events() {
        let mut m = machine(2);
        m.offload_kernel(0, SimTime(0), SimDur(10), 1);
        assert!(
            m.recorder().snapshot().iter().all(|b| b.is_empty()),
            "off by default"
        );
        m.set_recorder(Recorder::new(2));
        m.net_send(0, 1, 64, SimTime(0), 3);
        let sends = m.recorder().snapshot()[0]
            .iter()
            .filter(|r| matches!(r.event, Event::MsgOnWire { .. }))
            .count();
        assert_eq!(sends, 1);
    }

    #[test]
    fn dma_fault_suppresses_kernel_completion() {
        use sw_resilience::FaultConfig;
        let mut m = machine(1);
        let plan = Arc::new(FaultPlan::new(FaultConfig {
            dma_error_ppm: 999_999,
            guarantee_recovery: false,
            ..FaultConfig::none(3)
        }));
        m.set_fault_plan(plan.clone());
        m.set_recorder(Recorder::new(1));
        let key = OffloadKey {
            rank: 0,
            patch: 0,
            stage: 0,
            step: 0,
            attempt: 0,
        };
        let end = m.offload_kernel_keyed(0, SimTime(0), SimDur(100), 1, Some(&key));
        assert_eq!(end, None, "DMA fault: kernel never runs");
        assert!(m.pop().is_none(), "no KernelDone scheduled");
        assert_eq!(plan.stats.snapshot().injected_dma_error, 1);
        let injected = m.recorder().snapshot()[0]
            .iter()
            .filter(|r| {
                matches!(
                    r.event,
                    Event::FaultInjected {
                        kind: "dma_error",
                        ..
                    }
                )
            })
            .count();
        assert_eq!(injected, 1);
        // Unkeyed offloads are exempt even with a hostile plan installed.
        let end = m.offload_kernel(0, SimTime(0), SimDur(100), 2);
        assert_eq!(end, SimTime(100));
    }

    #[test]
    fn jittered_rank_pays_constant_extra_latency() {
        use sw_resilience::FaultConfig;
        let mut m = machine(2);
        let plan = Arc::new(FaultPlan::new(FaultConfig {
            rank_jitter_ppm: 999_999, // every rank jittered
            jitter_ps: 777,
            ..FaultConfig::none(1)
        }));
        m.set_fault_plan(plan);
        let d = m.net_send(0, 1, 0, SimTime(0), 7);
        assert_eq!(d, SimTime::ZERO + m.cfg().net_latency + SimDur(777));
    }

    #[test]
    fn recorder_captures_wire_events_typed() {
        use sw_telemetry::Event;
        let mut m = machine(2);
        m.set_recorder(Recorder::new(2));
        let deliver = m.net_send(0, 1, 64, SimTime(0), 3);
        let snap = m.recorder().snapshot();
        assert_eq!(snap[0].len(), 1, "wire event lands on the source rank");
        match &snap[0][0].event {
            Event::MsgOnWire {
                msg,
                src,
                dst,
                bytes,
                deliver_ps,
            } => {
                assert_eq!((*msg, *src, *dst, *bytes), (3, 0, 1, 64));
                assert_eq!(*deliver_ps, deliver.0);
            }
            other => panic!("expected MsgOnWire, got {other:?}"),
        }
    }

    #[test]
    fn flop_counters_aggregate() {
        use crate::flops::FlopCategory;
        let mut m = machine(2);
        m.cg_mut(0).counters.add(FlopCategory::Exp, 100);
        m.cg_mut(1).counters.add(FlopCategory::Exp, 50);
        m.cg_mut(1).counters.add(FlopCategory::Stencil, 25);
        assert_eq!(m.total_flops().total(), 175);
    }

    #[test]
    #[should_panic(expected = "bad destination")]
    fn rejects_bad_destination() {
        let mut m = machine(2);
        m.net_send(0, 5, 10, SimTime(0), 0);
    }

    #[test]
    fn outbox_parks_cross_shard_deliveries_until_merge() {
        let mut m = machine(2);
        let deliver = m.ctx(0).net_send(0, 1, 64, SimTime(0), 9);
        assert!(m.has_outbound(), "ctx sends park in the outbox");
        assert_eq!(m.shard_peek(1), None, "not yet visible to the target");
        assert_eq!(m.peek_time(), Some(deliver), "but visible to the facade");
        m.merge_outboxes(None).unwrap();
        assert_eq!(m.shard_peek(1), Some(deliver));
        assert!(!m.has_outbound());
    }

    #[test]
    fn merge_rejects_deliveries_inside_the_window() {
        let mut m = machine(2);
        let deliver = m.ctx(0).net_send(0, 1, 0, SimTime(0), 9);
        // Claim a window that extends past the delivery: conservative
        // contract broken, the merge must refuse with a typed violation
        // carrying the channel diagnostics.
        let end = deliver + SimDur(1);
        let v = m.merge_outboxes(Some(end)).unwrap_err();
        assert_eq!((v.src, v.dst, v.token), (0, 1, 9));
        assert_eq!((v.at, v.window_end), (deliver, end));
        assert!(v.to_string().contains("lookahead violation"));
        // A floor at the delivery instant is legal: `at >= end` holds.
        let mut ok = machine(2);
        let d = ok.ctx(0).net_send(0, 1, 0, SimTime(0), 9);
        ok.merge_outboxes(Some(d)).unwrap();
        assert_eq!(ok.shard_peek(1), Some(d));
    }

    #[test]
    fn endpoint_lanes_inject_concurrently_but_serialize_within_a_lane() {
        let mut m = machine(2);
        let bytes = 8_000_000_000; // 1 s of injection at 8 GB/s
        let d0 = m.ctx(0).net_send_ep(0, 1, bytes, SimTime(0), 1, 0);
        let d1 = m.ctx(0).net_send_ep(0, 1, bytes, SimTime(0), 2, 1);
        assert_eq!(d0, d1, "distinct lanes of one NIC do not contend");
        let d2 = m.ctx(0).net_send_ep(0, 1, bytes, SimTime(0), 3, 1);
        assert_eq!(
            d2.since(d1),
            SimDur::from_secs_f64(1.0),
            "same lane still serializes in send order"
        );
        // net_send is exactly lane 0.
        let d3 = m.ctx(0).net_send(0, 1, bytes, SimTime(0), 4);
        assert_eq!(d3.since(d0), SimDur::from_secs_f64(1.0));
    }

    #[test]
    fn parallel_merge_is_bit_identical_to_the_serial_merge() {
        // Same traffic through both merge modes: every destination queue
        // must pop the identical (time, event) sequence, and the merge log
        // must record the identical src-major edge order.
        let traffic: &[(CgId, CgId, u64, u64)] = &[
            (0, 1, 64, 1),
            (0, 2, 8_000_000_000, 2),
            (1, 2, 64, 3),
            (2, 0, 128, 4),
            (0, 1, 64, 5),
            (3, 1, 256, 6),
            (1, 0, 64, 7),
        ];
        let run = |parallel: bool| {
            let mut m = machine(4);
            m.set_parallel_merge(parallel);
            m.set_merge_log(true);
            for &(src, dst, bytes, token) in traffic {
                m.ctx(src).net_send(src, dst, bytes, SimTime(0), token);
            }
            m.merge_outboxes(None).unwrap();
            let log = m.take_merge_log();
            let mut popped = Vec::new();
            while let Some(ev) = m.pop() {
                popped.push(ev);
            }
            (log, popped)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn merge_violation_applies_nothing() {
        // All-or-nothing: a floor violation must leave every outbox intact
        // and every destination queue untouched — including deliveries from
        // sources *before* the offending one in merge order.
        let mut m = machine(3);
        let ok = m.ctx(0).net_send(0, 2, 0, SimTime(0), 1);
        m.ctx(1).net_send(1, 2, 0, SimTime(0), 2);
        let end = ok + SimDur(1);
        assert!(m.merge_outboxes(Some(end)).is_err());
        assert!(m.has_outbound(), "outboxes survive a refused merge");
        assert_eq!(m.shard_peek(2), None, "no delivery was applied");
    }

    #[test]
    fn merge_log_captures_window_edges() {
        let mut m = machine(3);
        m.set_merge_log(true);
        m.ctx(0).net_send(0, 1, 64, SimTime(0), 1);
        m.ctx(2).net_send(2, 1, 64, SimTime(0), 2);
        m.merge_outboxes(None).unwrap();
        assert_eq!(m.take_merge_log(), vec![(0, 1), (2, 1)]);
        assert!(m.take_merge_log().is_empty(), "take drains the log");
        m.set_merge_log(false);
        m.ctx(0).net_send(0, 2, 64, SimTime(0), 3);
        m.merge_outboxes(None).unwrap();
        assert!(m.take_merge_log().is_empty(), "logging off records nothing");
    }

    #[test]
    fn ctx_guards_foreign_cg_access() {
        let mut m = machine(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.ctx(0).cg_mut(1);
        }));
        assert!(r.is_err(), "ctx must not reach into another shard's CG");
    }
}
