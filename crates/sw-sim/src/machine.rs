//! The machine: a set of core groups connected by the TaihuLight network,
//! advanced by one deterministic event queue.
//!
//! The machine layer knows about *hardware* happenings only; semantic layers
//! mint opaque tokens and interpret them when the corresponding
//! [`MachineEvent`] pops:
//!
//! * `sw-athread` mints kernel tokens and handles [`MachineEvent::KernelDone`],
//! * `sw-mpi` mints message tokens and handles [`MachineEvent::NetDeliver`],
//! * schedulers mint timer tokens and handle [`MachineEvent::Timer`].

use std::sync::Arc;

use sw_resilience::{FaultPlan, FaultStats, OffloadKey};
use sw_telemetry::{Event, Lane, Recorder};

use crate::config::MachineConfig;
use crate::event::EventQueue;
use crate::flops::FlopCounters;
use crate::mpe::MpeClock;
use crate::noise::KernelNoise;
use crate::time::{SimDur, SimTime};

/// Index of a core group (used as the node/rank id: the paper uses CGs as
/// separate computing nodes, §IV-A).
pub type CgId = usize;

/// Hardware-level events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachineEvent {
    /// A CPE kernel finished and its completion flag was incremented to done.
    KernelDone {
        /// CG whose CPE cluster finished.
        cg: CgId,
        /// Token minted by the offloading layer.
        token: u64,
    },
    /// A network message fully arrived at the destination NIC.
    NetDeliver {
        /// Destination CG.
        dst: CgId,
        /// Token minted by the sending layer.
        token: u64,
    },
    /// A wakeup timer for a CG's MPE (completion-flag polls etc.).
    Timer {
        /// CG to wake.
        cg: CgId,
        /// Token minted by the scheduling layer.
        token: u64,
    },
}

/// State of one core group.
#[derive(Debug)]
pub struct Cg {
    /// The management element's serial clock.
    pub mpe: MpeClock,
    /// Emulated floating-point hardware counters (summed over the CG).
    pub counters: FlopCounters,
    /// End of the latest-finishing kernel on the cluster (slot occupancy is
    /// enforced by the athread layer, which may split the cluster into
    /// groups — paper §IX future work).
    cpe_busy_until: SimTime,
    /// Injection serialization point of this CG's NIC.
    nic_free_at: SimTime,
    /// Accumulated CPE-cluster busy time.
    cpe_busy_total: SimDur,
}

impl Cg {
    fn new() -> Self {
        Cg {
            mpe: MpeClock::new(),
            counters: FlopCounters::new(),
            cpe_busy_until: SimTime::ZERO,
            nic_free_at: SimTime::ZERO,
            cpe_busy_total: SimDur::ZERO,
        }
    }

    /// When the CPE cluster finishes its current kernel.
    pub fn cpe_busy_until(&self) -> SimTime {
        self.cpe_busy_until
    }

    /// Total CPE-cluster busy time (utilization statistic).
    pub fn cpe_busy_total(&self) -> SimDur {
        self.cpe_busy_total
    }
}

/// Aggregate machine statistics.
#[derive(Clone, Debug, Default)]
pub struct MachineStats {
    /// Kernels offloaded to CPE clusters.
    pub kernels: u64,
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Total payload bytes sent on the network.
    pub net_bytes: u64,
    /// Timer events scheduled.
    pub timers: u64,
}

/// The simulated machine: `n` CGs plus the interconnect.
///
/// ```
/// use sw_sim::{Machine, MachineConfig, MachineEvent, SimDur, SimTime};
///
/// let mut m = Machine::new(MachineConfig::sw26010(), 2);
/// // Offload a 100us kernel to CG 0 and send 1 KiB from CG 0 to CG 1.
/// let done = m.offload_kernel(0, SimTime::ZERO, SimDur::from_us(100.0), 7);
/// m.net_send(0, 1, 1024, SimTime::ZERO, 9);
/// // The message (1us latency + wire time) pops before the kernel.
/// let (t1, ev1) = m.pop().unwrap();
/// assert!(matches!(ev1, MachineEvent::NetDeliver { dst: 1, token: 9 }));
/// let (t2, ev2) = m.pop().unwrap();
/// assert_eq!(t2, done);
/// assert!(matches!(ev2, MachineEvent::KernelDone { cg: 0, token: 7 }));
/// assert!(t1 < t2);
/// ```
pub struct Machine {
    cfg: MachineConfig,
    queue: EventQueue<MachineEvent>,
    cgs: Vec<Cg>,
    stats: MachineStats,
    /// Optional seeded kernel-duration noise ("instabilities in the
    /// machine", paper §VII-A).
    noise: Option<KernelNoise>,
    /// Per-CG relative speed (1.0 = nominal); a slow CG stretches every
    /// kernel it runs. Gives the measurement-driven load balancer real
    /// imbalance to correct.
    cg_speed: Vec<f64>,
    /// Telemetry sink for hardware-level events (disabled by default; the
    /// controller threads the run's recorder in via [`Machine::set_recorder`]).
    rec: Recorder,
    /// Optional fault plan consulted at the DMA boundary
    /// ([`Machine::offload_kernel_keyed`]) and for rank-level NIC jitter.
    faults: Option<Arc<FaultPlan>>,
}

impl Machine {
    /// A machine of `n_cgs` core groups with configuration `cfg`.
    pub fn new(cfg: MachineConfig, n_cgs: usize) -> Self {
        assert!(n_cgs >= 1);
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid machine configuration: {e}"));
        Machine {
            cfg,
            queue: EventQueue::new(),
            cgs: (0..n_cgs).map(|_| Cg::new()).collect(),
            stats: MachineStats::default(),
            noise: None,
            cg_speed: vec![1.0; n_cgs],
            rec: Recorder::off(),
            faults: None,
        }
    }

    /// Thread a telemetry recorder through the machine's hardware events.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// The machine's telemetry recorder (disabled unless set/enabled).
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// Thread a fault plan through the machine's DMA and NIC boundaries.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// The machine's fault plan, when one is installed.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Enable seeded kernel-duration noise of up to `frac`.
    pub fn set_noise(&mut self, frac: f64, seed: u64) {
        self.noise = (frac > 0.0).then(|| KernelNoise::new(frac, seed));
    }

    /// Set one CG's relative speed (e.g. 0.5 = half as fast).
    ///
    /// # Panics
    /// Panics on non-positive speeds.
    pub fn set_cg_speed(&mut self, cg: CgId, speed: f64) {
        assert!(speed > 0.0, "speed must be positive");
        self.cg_speed[cg] = speed;
    }

    /// A CG's relative speed.
    pub fn cg_speed(&self, cg: CgId) -> f64 {
        self.cg_speed[cg]
    }

    /// The machine configuration.
    pub fn cfg(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of core groups.
    pub fn n_cgs(&self) -> usize {
        self.cgs.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Pop the next hardware event, advancing virtual time.
    pub fn pop(&mut self) -> Option<(SimTime, MachineEvent)> {
        self.queue.pop()
    }

    /// Timestamp of the next pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Events processed so far.
    pub fn events_popped(&self) -> u64 {
        self.queue.popped()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Access a CG.
    pub fn cg(&self, id: CgId) -> &Cg {
        &self.cgs[id]
    }

    /// Mutably access a CG.
    pub fn cg_mut(&mut self, id: CgId) -> &mut Cg {
        &mut self.cgs[id]
    }

    /// Sum the flop counters of all CGs.
    pub fn total_flops(&self) -> FlopCounters {
        let mut total = FlopCounters::new();
        for cg in &self.cgs {
            total.merge(&cg.counters);
        }
        total
    }

    /// Run a kernel on (a group of) `cg`'s CPE cluster for `dur`, starting
    /// no earlier than `start`. Concurrent kernels are allowed — whether the
    /// cluster is whole or split into groups is the athread layer's policy
    /// (the paper runs one kernel at a time; CPE grouping is §IX future
    /// work). Schedules [`MachineEvent::KernelDone`] and returns its fire
    /// time.
    pub fn offload_kernel(&mut self, cg: CgId, start: SimTime, dur: SimDur, token: u64) -> SimTime {
        self.offload_kernel_keyed(cg, start, dur, token, None)
            .expect("unkeyed offloads never fault")
    }

    /// [`Machine::offload_kernel`] with an optional fault-plan key.
    ///
    /// When a fault plan is installed and `key` is provided, the plan may
    /// inject a **DMA transfer error**: the kernel never starts, no
    /// [`MachineEvent::KernelDone`] is scheduled, and `None` is returned.
    /// The caller (athread layer) keeps the slot occupied until its MPE
    /// deadline detector fires — exactly like a silent slot death.
    pub fn offload_kernel_keyed(
        &mut self,
        cg: CgId,
        start: SimTime,
        dur: SimDur,
        token: u64,
        key: Option<&OffloadKey>,
    ) -> Option<SimTime> {
        let begin = start.max(self.queue.now());
        if let (Some(plan), Some(k)) = (self.faults.as_ref(), key) {
            if plan.dma_fault(k) {
                FaultStats::bump(&plan.stats.injected_dma_error);
                self.rec.record(
                    cg,
                    begin.0,
                    Lane::Cpe(0),
                    Event::FaultInjected {
                        kind: "dma_error",
                        id: token,
                    },
                );
                return None;
            }
        }
        let mut dur = dur.scale(1.0 / self.cg_speed[cg]);
        if let Some(noise) = &mut self.noise {
            dur = dur.scale(noise.draw());
        }
        let slot = &mut self.cgs[cg];
        let end = begin + dur;
        slot.cpe_busy_until = slot.cpe_busy_until.max(end);
        slot.cpe_busy_total += dur;
        self.stats.kernels += 1;
        self.queue
            .schedule_at(end, MachineEvent::KernelDone { cg, token });
        Some(end)
    }

    /// Inject a message of `bytes` from `src` to `dst`, with the send-side
    /// work beginning no earlier than `when`. Injection serializes on the
    /// source NIC; delivery is injection end + wire time. Schedules
    /// [`MachineEvent::NetDeliver`] and returns the delivery time.
    pub fn net_send(
        &mut self,
        src: CgId,
        dst: CgId,
        bytes: u64,
        when: SimTime,
        token: u64,
    ) -> SimTime {
        assert!(dst < self.cgs.len(), "bad destination CG {dst}");
        let inject_start = when.max(self.cgs[src].nic_free_at).max(self.queue.now());
        let inject_dur = SimDur::from_secs_f64(bytes as f64 / (self.cfg.net_bw_gbs * 1e9));
        let inject_end = inject_start + inject_dur;
        self.cgs[src].nic_free_at = inject_end;
        // Rank-level NIC jitter: a jittered source pays constant extra
        // latency on every packet it injects (models a hot/slow node).
        let jitter = self
            .faults
            .as_ref()
            .and_then(|p| p.jitter_ps(src as u32))
            .map_or(SimDur::ZERO, SimDur);
        let deliver = inject_end + self.cfg.net_latency + jitter;
        self.stats.messages += 1;
        self.stats.net_bytes += bytes;
        self.rec.record(
            src,
            inject_start.0,
            Lane::Wire,
            Event::MsgOnWire {
                msg: token,
                src,
                dst,
                bytes,
                deliver_ps: deliver.0,
            },
        );
        self.queue
            .schedule_at(deliver, MachineEvent::NetDeliver { dst, token });
        deliver
    }

    /// Schedule a wakeup timer for `cg` at `at`.
    pub fn timer_at(&mut self, cg: CgId, at: SimTime, token: u64) {
        self.stats.timers += 1;
        self.queue
            .schedule_at(at.max(self.queue.now()), MachineEvent::Timer { cg, token });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(n: usize) -> Machine {
        Machine::new(MachineConfig::sw26010(), n)
    }

    #[test]
    fn kernels_may_overlap_on_group_slots() {
        let mut m = machine(1);
        let e1 = m.offload_kernel(0, SimTime(0), SimDur(100), 1);
        assert_eq!(e1, SimTime(100));
        // A second kernel (another CPE group) runs concurrently.
        let e2 = m.offload_kernel(0, SimTime(10), SimDur(50), 2);
        assert_eq!(e2, SimTime(60));
        assert_eq!(m.cg(0).cpe_busy_total(), SimDur(150));
        assert_eq!(m.cg(0).cpe_busy_until(), SimTime(100));
        let (t1, ev1) = m.pop().unwrap();
        assert_eq!(
            (t1, ev1),
            (SimTime(60), MachineEvent::KernelDone { cg: 0, token: 2 })
        );
        let (t2, _) = m.pop().unwrap();
        assert_eq!(t2, SimTime(100));
    }

    #[test]
    fn messages_serialize_on_source_nic() {
        let mut m = machine(2);
        let bytes = 8_000_000_000; // 1 s of injection at 8 GB/s
        let d1 = m.net_send(0, 1, bytes, SimTime(0), 1);
        let d2 = m.net_send(0, 1, bytes, SimTime(0), 2);
        // Second injection starts after the first finishes.
        assert_eq!(d2.since(d1), SimDur::from_secs_f64(1.0));
        assert_eq!(m.stats().messages, 2);
        assert_eq!(m.stats().net_bytes, 2 * bytes);
    }

    #[test]
    fn delivery_includes_latency() {
        let mut m = machine(2);
        let d = m.net_send(0, 1, 0, SimTime(0), 7);
        assert_eq!(d, SimTime::ZERO + m.cfg().net_latency);
        let (t, ev) = m.pop().unwrap();
        assert_eq!(t, d);
        assert_eq!(ev, MachineEvent::NetDeliver { dst: 1, token: 7 });
    }

    #[test]
    fn different_nics_do_not_contend() {
        let mut m = machine(3);
        let bytes = 8_000_000_000;
        let d1 = m.net_send(0, 2, bytes, SimTime(0), 1);
        let d2 = m.net_send(1, 2, bytes, SimTime(0), 2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut m = machine(1);
        m.timer_at(0, SimTime(50), 5);
        m.timer_at(0, SimTime(25), 4);
        let (t, ev) = m.pop().unwrap();
        assert_eq!(t, SimTime(25));
        assert_eq!(ev, MachineEvent::Timer { cg: 0, token: 4 });
        assert_eq!(m.stats().timers, 2);
    }

    #[test]
    fn slow_cg_stretches_kernels() {
        let mut m = machine(2);
        m.set_cg_speed(1, 0.5);
        let e0 = m.offload_kernel(0, SimTime(0), SimDur(100), 1);
        let e1 = m.offload_kernel(1, SimTime(0), SimDur(100), 2);
        assert_eq!(e0, SimTime(100));
        assert_eq!(e1, SimTime(200), "half-speed CG takes twice as long");
    }

    #[test]
    fn noise_is_seeded_and_bounded() {
        let run = |seed: u64| {
            let mut m = machine(1);
            m.set_noise(0.10, seed);
            (0..20)
                .map(|i| m.offload_kernel(0, SimTime(0), SimDur(1000), i).0)
                .collect::<Vec<u64>>()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a, b, "same seed, same stretch");
        assert_ne!(a, run(6), "different seed, different stretch");
        assert!(a.iter().all(|&e| (1000..=1100).contains(&e)), "{a:?}");
        assert!(a.iter().any(|&e| e != 1000), "noise must do something");
    }

    #[test]
    fn recorder_is_off_by_default_then_captures_wire_events() {
        let mut m = machine(2);
        m.offload_kernel(0, SimTime(0), SimDur(10), 1);
        assert!(
            m.recorder().snapshot().iter().all(|b| b.is_empty()),
            "off by default"
        );
        m.set_recorder(Recorder::new(2));
        m.net_send(0, 1, 64, SimTime(0), 3);
        let sends = m.recorder().snapshot()[0]
            .iter()
            .filter(|r| matches!(r.event, Event::MsgOnWire { .. }))
            .count();
        assert_eq!(sends, 1);
    }

    #[test]
    fn dma_fault_suppresses_kernel_completion() {
        use sw_resilience::FaultConfig;
        let mut m = machine(1);
        let plan = Arc::new(FaultPlan::new(FaultConfig {
            dma_error_ppm: 999_999,
            guarantee_recovery: false,
            ..FaultConfig::none(3)
        }));
        m.set_fault_plan(plan.clone());
        m.set_recorder(Recorder::new(1));
        let key = OffloadKey {
            rank: 0,
            patch: 0,
            stage: 0,
            step: 0,
            attempt: 0,
        };
        let end = m.offload_kernel_keyed(0, SimTime(0), SimDur(100), 1, Some(&key));
        assert_eq!(end, None, "DMA fault: kernel never runs");
        assert!(m.pop().is_none(), "no KernelDone scheduled");
        assert_eq!(plan.stats.snapshot().injected_dma_error, 1);
        let injected = m.recorder().snapshot()[0]
            .iter()
            .filter(|r| {
                matches!(
                    r.event,
                    Event::FaultInjected {
                        kind: "dma_error",
                        ..
                    }
                )
            })
            .count();
        assert_eq!(injected, 1);
        // Unkeyed offloads are exempt even with a hostile plan installed.
        let end = m.offload_kernel(0, SimTime(0), SimDur(100), 2);
        assert_eq!(end, SimTime(100));
    }

    #[test]
    fn jittered_rank_pays_constant_extra_latency() {
        use sw_resilience::FaultConfig;
        let mut m = machine(2);
        let plan = Arc::new(FaultPlan::new(FaultConfig {
            rank_jitter_ppm: 999_999, // every rank jittered
            jitter_ps: 777,
            ..FaultConfig::none(1)
        }));
        m.set_fault_plan(plan);
        let d = m.net_send(0, 1, 0, SimTime(0), 7);
        assert_eq!(d, SimTime::ZERO + m.cfg().net_latency + SimDur(777));
    }

    #[test]
    fn recorder_captures_wire_events_typed() {
        use sw_telemetry::Event;
        let mut m = machine(2);
        m.set_recorder(Recorder::new(2));
        let deliver = m.net_send(0, 1, 64, SimTime(0), 3);
        let snap = m.recorder().snapshot();
        assert_eq!(snap[0].len(), 1, "wire event lands on the source rank");
        match &snap[0][0].event {
            Event::MsgOnWire {
                msg,
                src,
                dst,
                bytes,
                deliver_ps,
            } => {
                assert_eq!((*msg, *src, *dst, *bytes), (3, 0, 1, 64));
                assert_eq!(*deliver_ps, deliver.0);
            }
            other => panic!("expected MsgOnWire, got {other:?}"),
        }
    }

    #[test]
    fn flop_counters_aggregate() {
        use crate::flops::FlopCategory;
        let mut m = machine(2);
        m.cg_mut(0).counters.add(FlopCategory::Exp, 100);
        m.cg_mut(1).counters.add(FlopCategory::Exp, 50);
        m.cg_mut(1).counters.add(FlopCategory::Stencil, 25);
        assert_eq!(m.total_flops().total(), 175);
    }

    #[test]
    #[should_panic(expected = "bad destination")]
    fn rejects_bad_destination() {
        let mut m = machine(2);
        m.net_send(0, 5, 10, SimTime(0), 0);
    }
}
