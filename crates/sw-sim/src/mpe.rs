//! Virtual-time accounting for the Management Processing Element.
//!
//! Each CG has exactly one MPE; everything the runtime does besides CPE
//! kernels — task management, MPI calls, data-warehouse copies, reductions —
//! consumes MPE time serially (paper §II: the Unified Scheduler cannot
//! overlap on Sunway precisely because there is only one MPE per CG).
//! [`MpeClock`] tracks when the MPE next becomes free and accumulates busy
//! time for utilization statistics.

use crate::time::{SimDur, SimTime};

/// Serial busy-time tracker for one MPE.
#[derive(Clone, Debug, Default)]
pub struct MpeClock {
    free_at: SimTime,
    busy_total: SimDur,
}

impl MpeClock {
    /// A fresh, idle MPE.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume `d` of MPE time, starting no earlier than `now` and no earlier
    /// than the end of previously queued work. Returns the instant the work
    /// completes.
    pub fn consume(&mut self, now: SimTime, d: SimDur) -> SimTime {
        let start = now.max(self.free_at);
        self.free_at = start + d;
        self.busy_total += d;
        self.free_at
    }

    /// Block the MPE (busy-spinning on the completion flag) until `t`.
    /// The spin time counts as busy time: the MPE can do nothing else.
    pub fn spin_until(&mut self, now: SimTime, t: SimTime) -> SimTime {
        let start = now.max(self.free_at);
        if t > start {
            self.busy_total += t.since(start);
            self.free_at = t;
        } else {
            self.free_at = start;
        }
        self.free_at
    }

    /// When the MPE next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Whether the MPE is free at `now`.
    pub fn is_free(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Total busy time accumulated (for utilization reporting).
    pub fn busy_total(&self) -> SimDur {
        self.busy_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_work() {
        let mut m = MpeClock::new();
        let t1 = m.consume(SimTime(100), SimDur(50));
        assert_eq!(t1, SimTime(150));
        // Work requested "now" at t=120 must wait for the MPE.
        let t2 = m.consume(SimTime(120), SimDur(10));
        assert_eq!(t2, SimTime(160));
        assert_eq!(m.busy_total(), SimDur(60));
    }

    #[test]
    fn idle_gaps_are_not_busy() {
        let mut m = MpeClock::new();
        m.consume(SimTime(0), SimDur(10));
        m.consume(SimTime(100), SimDur(10));
        assert_eq!(m.busy_total(), SimDur(20));
        assert_eq!(m.free_at(), SimTime(110));
    }

    #[test]
    fn spinning_counts_as_busy() {
        let mut m = MpeClock::new();
        m.consume(SimTime(0), SimDur(10));
        let t = m.spin_until(SimTime(10), SimTime(50));
        assert_eq!(t, SimTime(50));
        assert_eq!(m.busy_total(), SimDur(50));
        // Spinning until a past instant is a no-op.
        let t = m.spin_until(SimTime(50), SimTime(20));
        assert_eq!(t, SimTime(50));
        assert_eq!(m.busy_total(), SimDur(50));
    }

    #[test]
    fn is_free_reflects_clock() {
        let mut m = MpeClock::new();
        assert!(m.is_free(SimTime(0)));
        m.consume(SimTime(0), SimDur(10));
        assert!(!m.is_free(SimTime(5)));
        assert!(m.is_free(SimTime(10)));
    }
}
