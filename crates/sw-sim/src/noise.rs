//! Deterministic performance-noise model.
//!
//! The paper notes that "to mitigate the instabilities in the machine, each
//! case is repeated multiple times and the best result is selected"
//! (§VII-A). The simulator is deterministic, but to study that methodology
//! (and to give the measurement-driven load balancer something to react to)
//! a seeded noise source can stretch each kernel's duration by a random
//! factor. Determinism is preserved: the same seed gives the same run.

/// SplitMix64: a tiny, high-quality deterministic PRNG (public-domain
/// algorithm by Sebastiano Vigna). Used instead of an external crate so the
//  machine model stays dependency-free and bit-stable.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Multiplicative kernel-duration noise.
#[derive(Clone, Debug)]
pub struct KernelNoise {
    rng: SplitMix64,
    /// Maximum fractional stretch: a kernel takes `1 + U(0, frac)` times its
    /// modeled duration.
    pub frac: f64,
}

impl KernelNoise {
    /// Noise of up to `frac` with the given seed; `frac = 0` is exact.
    pub fn new(frac: f64, seed: u64) -> Self {
        assert!((0.0..=10.0).contains(&frac), "unreasonable noise {frac}");
        KernelNoise {
            rng: SplitMix64::new(seed),
            frac,
        }
    }

    /// The stretch factor for the next kernel (>= 1).
    pub fn draw(&mut self) -> f64 {
        if self.frac == 0.0 {
            1.0
        } else {
            1.0 + self.frac * self.rng.next_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
        // Values spread across the range.
        assert!(a.iter().any(|&v| v > u64::MAX / 2));
        assert!(a.iter().any(|&v| v < u64::MAX / 2));
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn zero_noise_is_exact() {
        let mut n = KernelNoise::new(0.0, 1);
        for _ in 0..5 {
            assert_eq!(n.draw(), 1.0);
        }
    }

    #[test]
    fn noise_bounded_by_frac() {
        let mut n = KernelNoise::new(0.25, 9);
        for _ in 0..1000 {
            let f = n.draw();
            assert!((1.0..1.25).contains(&f), "{f}");
        }
    }
}
