//! Virtual time for the discrete-event machine model.
//!
//! All evaluation results in this reproduction are *virtual* times produced
//! by the calibrated machine model (see DESIGN.md §2): the paper's wall-clock
//! measurements on Sunway TaihuLight are not reproducible without the
//! hardware. Time is kept in integer picoseconds so event ordering is exact
//! and platform-independent.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per second.
const PS_PER_SEC: f64 = 1e12;

/// An instant in virtual time (picoseconds since simulation start).
#[derive(
    Clone,
    Copy,
    Debug,
    Default,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of virtual time (picoseconds).
#[derive(
    Clone,
    Copy,
    Debug,
    Default,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimDur(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Seconds since the epoch, as `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC
    }

    /// Span from an earlier instant; saturates at zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDur {
    /// Zero-length span.
    pub const ZERO: SimDur = SimDur(0);

    /// Build from seconds; rounds to the nearest picosecond.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDur {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDur((s * PS_PER_SEC).round() as u64)
    }

    /// Build from microseconds.
    #[inline]
    pub fn from_us(us: f64) -> SimDur {
        Self::from_secs_f64(us * 1e-6)
    }

    /// Build from nanoseconds.
    #[inline]
    pub fn from_ns(ns: f64) -> SimDur {
        Self::from_secs_f64(ns * 1e-9)
    }

    /// Seconds, as `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC
    }

    /// Microseconds, as `f64`.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scale by a non-negative factor, rounding to the nearest picosecond.
    #[inline]
    pub fn scale(self, f: f64) -> SimDur {
        assert!(f.is_finite() && f >= 0.0, "invalid scale {f}");
        SimDur((self.0 as f64 * f).round() as u64)
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: SimDur) -> SimDur {
        SimDur(self.0.max(other.0))
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDur) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDur> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDur) {
        self.0 += d.0;
    }
}

impl Add for SimDur {
    type Output = SimDur;
    #[inline]
    fn add(self, d: SimDur) -> SimDur {
        SimDur(self.0 + d.0)
    }
}

impl AddAssign for SimDur {
    #[inline]
    fn add_assign(&mut self, d: SimDur) {
        self.0 += d.0;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    #[inline]
    fn sub(self, d: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(d.0))
    }
}

impl SubAssign for SimDur {
    #[inline]
    fn sub_assign(&mut self, d: SimDur) {
        self.0 = self.0.saturating_sub(d.0);
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    #[inline]
    fn mul(self, n: u64) -> SimDur {
        SimDur(self.0 * n)
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    #[inline]
    fn div(self, n: u64) -> SimDur {
        SimDur(self.0 / n)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.4}s")
        } else if s >= 1e-3 {
            write!(f, "{:.4}ms", s * 1e3)
        } else {
            write!(f, "{:.3}us", s * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let d = SimDur::from_secs_f64(1.5);
        assert_eq!(d.0, 1_500_000_000_000);
        assert_eq!(d.as_secs_f64(), 1.5);
        assert_eq!(SimDur::from_us(2.0).0, 2_000_000);
        assert_eq!(SimDur::from_ns(3.0).0, 3_000);
        assert!((SimDur::from_us(2.5).as_us_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDur::from_us(1.0);
        let t2 = t + SimDur::from_us(2.0);
        assert_eq!(t2.since(t), SimDur::from_us(2.0));
        assert_eq!(t.since(t2), SimDur::ZERO, "saturating");
        assert_eq!(SimDur::from_us(4.0) / 2, SimDur::from_us(2.0));
        assert_eq!(SimDur::from_us(4.0) * 3, SimDur::from_us(12.0));
        assert_eq!(
            SimDur::from_us(4.0) - SimDur::from_us(1.0),
            SimDur::from_us(3.0)
        );
    }

    #[test]
    fn scaling_rounds() {
        let d = SimDur(10);
        assert_eq!(d.scale(0.25), SimDur(3)); // 2.5 rounds to 3 (round half away)
        assert_eq!(d.scale(1.5), SimDur(15));
        assert_eq!(d.scale(0.0), SimDur::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimDur::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_and_max() {
        assert!(SimTime(5) > SimTime(4));
        assert_eq!(SimTime(5).max(SimTime(9)), SimTime(9));
        assert_eq!(SimDur(5).max(SimDur(2)), SimDur(5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDur::from_secs_f64(2.0)), "2.0000s");
        assert_eq!(format!("{}", SimDur::from_us(1500.0)), "1.5000ms");
        assert_eq!(format!("{}", SimDur::from_us(3.0)), "3.000us");
    }
}
