//! Virtual time for the discrete-event machine model.
//!
//! All evaluation results in this reproduction are *virtual* times produced
//! by the calibrated machine model (see DESIGN.md §2): the paper's wall-clock
//! measurements on Sunway TaihuLight are not reproducible without the
//! hardware. Time is kept in integer picoseconds so event ordering is exact
//! and platform-independent.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per second.
const PS_PER_SEC: f64 = 1e12;

/// An instant in virtual time (picoseconds since simulation start).
#[derive(
    Clone,
    Copy,
    Debug,
    Default,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of virtual time (picoseconds).
#[derive(
    Clone,
    Copy,
    Debug,
    Default,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimDur(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Seconds since the epoch, as `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC
    }

    /// Span from an earlier instant; saturates at zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDur {
    /// Zero-length span.
    pub const ZERO: SimDur = SimDur(0);

    /// Round a non-negative picosecond count to the nearest integer,
    /// breaking ties to even (IEEE default rounding), and never collapsing
    /// a strictly positive value to zero: sub-picosecond model constants
    /// become the minimum representable 1 ps event instead of a
    /// zero-duration event that would perturb event ordering.
    #[inline]
    fn round_ps(ps: f64) -> u64 {
        let r = ps.round_ties_even();
        if r <= 0.0 && ps > 0.0 {
            return 1;
        }
        r as u64
    }

    /// Build from seconds; rounds to the nearest picosecond (ties to
    /// even). Strictly positive inputs never round to [`SimDur::ZERO`] —
    /// they clamp to 1 ps — so model constants below the tick cannot
    /// create zero-duration events.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDur {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDur(Self::round_ps(s * PS_PER_SEC))
    }

    /// Build from microseconds.
    #[inline]
    pub fn from_us(us: f64) -> SimDur {
        Self::from_secs_f64(us * 1e-6)
    }

    /// Build from nanoseconds.
    #[inline]
    pub fn from_ns(ns: f64) -> SimDur {
        Self::from_secs_f64(ns * 1e-9)
    }

    /// Seconds, as `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC
    }

    /// Microseconds, as `f64`.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scale by a non-negative factor, rounding to the nearest picosecond
    /// (ties to even). A non-zero span scaled by a non-zero factor never
    /// collapses to zero (clamps to 1 ps), matching
    /// [`SimDur::from_secs_f64`].
    #[inline]
    pub fn scale(self, f: f64) -> SimDur {
        assert!(f.is_finite() && f >= 0.0, "invalid scale {f}");
        SimDur(Self::round_ps(self.0 as f64 * f))
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: SimDur) -> SimDur {
        SimDur(self.0.max(other.0))
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDur) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDur> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDur) {
        self.0 += d.0;
    }
}

impl Add for SimDur {
    type Output = SimDur;
    #[inline]
    fn add(self, d: SimDur) -> SimDur {
        SimDur(self.0 + d.0)
    }
}

impl AddAssign for SimDur {
    #[inline]
    fn add_assign(&mut self, d: SimDur) {
        self.0 += d.0;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    #[inline]
    fn sub(self, d: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(d.0))
    }
}

impl SubAssign for SimDur {
    #[inline]
    fn sub_assign(&mut self, d: SimDur) {
        self.0 = self.0.saturating_sub(d.0);
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    #[inline]
    fn mul(self, n: u64) -> SimDur {
        SimDur(self.0 * n)
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    #[inline]
    fn div(self, n: u64) -> SimDur {
        SimDur(self.0 / n)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.4}s")
        } else if s >= 1e-3 {
            write!(f, "{:.4}ms", s * 1e3)
        } else {
            write!(f, "{:.3}us", s * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let d = SimDur::from_secs_f64(1.5);
        assert_eq!(d.0, 1_500_000_000_000);
        assert_eq!(d.as_secs_f64(), 1.5);
        assert_eq!(SimDur::from_us(2.0).0, 2_000_000);
        assert_eq!(SimDur::from_ns(3.0).0, 3_000);
        assert!((SimDur::from_us(2.5).as_us_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDur::from_us(1.0);
        let t2 = t + SimDur::from_us(2.0);
        assert_eq!(t2.since(t), SimDur::from_us(2.0));
        assert_eq!(t.since(t2), SimDur::ZERO, "saturating");
        assert_eq!(SimDur::from_us(4.0) / 2, SimDur::from_us(2.0));
        assert_eq!(SimDur::from_us(4.0) * 3, SimDur::from_us(12.0));
        assert_eq!(
            SimDur::from_us(4.0) - SimDur::from_us(1.0),
            SimDur::from_us(3.0)
        );
    }

    #[test]
    fn scaling_rounds() {
        let d = SimDur(10);
        assert_eq!(d.scale(0.25), SimDur(2)); // 2.5 rounds to 2 (ties to even)
        assert_eq!(d.scale(0.35), SimDur(4)); // 3.5 rounds to 4 (ties to even)
        assert_eq!(d.scale(1.5), SimDur(15));
        assert_eq!(d.scale(0.0), SimDur::ZERO);
    }

    #[test]
    fn sub_ps_constants_do_not_collapse_to_zero() {
        // Model constants below one picosecond must produce the minimum
        // 1 ps event, not a zero-duration event that reorders the queue.
        assert_eq!(SimDur::from_secs_f64(1e-14), SimDur(1)); // 0.01 ps
        assert_eq!(SimDur::from_ns(1e-4), SimDur(1)); // 0.1 ps
        assert_eq!(SimDur::from_us(4e-7), SimDur(1)); // 0.4 ps
        assert_eq!(SimDur::from_secs_f64(5e-13), SimDur(1)); // exactly 0.5 ps
                                                             // Zero stays zero.
        assert_eq!(SimDur::from_secs_f64(0.0), SimDur::ZERO);
        // Non-zero spans scaled by tiny non-zero factors stay non-zero.
        assert_eq!(SimDur(10).scale(1e-9), SimDur(1));
        assert_eq!(SimDur(1).scale(0.049), SimDur(1));
    }

    #[test]
    fn rounding_is_ties_even() {
        // x.5 picoseconds resolves toward the even neighbor, never with a
        // systematic half-away bias that would inflate summed constants.
        assert_eq!(SimDur::from_secs_f64(2.5e-12), SimDur(2));
        assert_eq!(SimDur::from_secs_f64(3.5e-12), SimDur(4));
        assert_eq!(SimDur::from_secs_f64(4.5e-12), SimDur(4));
        assert_eq!(SimDur(9).scale(0.5), SimDur(4)); // 4.5 -> 4
        assert_eq!(SimDur(11).scale(0.5), SimDur(6)); // 5.5 -> 6
    }

    /// Deterministic pseudo-random f64 stream for the property tests
    /// below (SplitMix64 finalizer — no external crates).
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn prop_roundtrip_within_half_ps() {
        // from_secs_f64 . as_secs_f64 is the identity on whole-ps values,
        // and any value round-trips to within half a picosecond (plus the
        // 1 ps floor for sub-ps inputs).
        for i in 0..4000u64 {
            let ps = mix(i) % 1_000_000_000_000; // up to 1 s
            let d = SimDur(ps);
            assert_eq!(SimDur::from_secs_f64(d.as_secs_f64()), d, "ps={ps}");
            // Fractional inputs: |round(ps) - ps| <= 0.5.
            let frac = (mix(i ^ 0xABCD) % 1000) as f64 / 1000.0;
            let s = (ps as f64 + frac) / 1e12;
            let got = SimDur::from_secs_f64(s).0 as f64;
            assert!(
                (got - (ps as f64 + frac)).abs() <= 0.5 + 1e-6 || got == 1.0,
                "s={s} got={got}"
            );
        }
    }

    #[test]
    fn prop_from_secs_is_monotone() {
        // Sorting the inputs must sort the outputs: rounding never inverts
        // event order between two model constants.
        let mut xs: Vec<f64> = (0..4000u64)
            .map(|i| (mix(i) % 10_000_000) as f64 * 1e-13) // 0 .. 1 us, sub-ps steps
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = SimDur::ZERO;
        for (i, &s) in xs.iter().enumerate() {
            let d = SimDur::from_secs_f64(s);
            assert!(d >= prev, "non-monotone at {i}: {s} -> {d:?} < {prev:?}");
            prev = d;
        }
    }

    #[test]
    fn prop_scale_is_monotone_in_both_arguments() {
        let factors = [0.0, 1e-6, 0.25, 0.5, 1.0, 1.5, 3.999, 1e3];
        for i in 0..500u64 {
            let a = mix(i) % 1_000_000;
            let b = a + mix(i ^ 0x55) % 1_000_000;
            for w in factors.windows(2) {
                // Monotone in the duration...
                assert!(SimDur(a).scale(w[0]) <= SimDur(b).scale(w[0]));
                // ...and in the factor.
                assert!(SimDur(a).scale(w[0]) <= SimDur(a).scale(w[1]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimDur::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_and_max() {
        assert!(SimTime(5) > SimTime(4));
        assert_eq!(SimTime(5).max(SimTime(9)), SimTime(9));
        assert_eq!(SimDur(5).max(SimDur(2)), SimDur(5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDur::from_secs_f64(2.0)), "2.0000s");
        assert_eq!(format!("{}", SimDur::from_us(1500.0)), "1.5000ms");
        assert_eq!(format!("{}", SimDur::from_us(3.0)), "3.000us");
    }
}
