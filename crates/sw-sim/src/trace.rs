//! Optional event tracing for debugging and test assertions.
//!
//! A [`Trace`] is a cheap append-only log of `(virtual time, tag, detail)`
//! records. Tracing is off by default; when disabled, `record` is a no-op so
//! hot loops pay only a branch.

use crate::time::SimTime;

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Short category tag, e.g. `"offload"`, `"send"`.
    pub tag: &'static str,
    /// Free-form detail.
    pub detail: String,
}

/// Append-only virtual-time trace.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    records: Vec<TraceRecord>,
}

impl Trace {
    /// A disabled trace (recording is a no-op).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled trace.
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            records: Vec::new(),
        }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled). `detail` is only invoked when
    /// enabled, so callers can pass a closure building an expensive string.
    pub fn record(&mut self, at: SimTime, tag: &'static str, detail: impl FnOnce() -> String) {
        if self.enabled {
            self.records.push(TraceRecord {
                at,
                tag,
                detail: detail(),
            });
        }
    }

    /// All records so far.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records with a given tag.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceRecord> {
        self.records.iter().filter(move |r| r.tag == tag)
    }

    /// Render as text, one record per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!("{} [{}] {}\n", r.at, r.tag, r.detail));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        let mut called = false;
        t.record(SimTime(1), "x", || {
            called = true;
            "detail".into()
        });
        assert!(!called, "detail closure must not run when disabled");
        assert!(t.records().is_empty());
    }

    #[test]
    fn enabled_trace_keeps_order_and_filters() {
        let mut t = Trace::enabled();
        t.record(SimTime(1), "send", || "a".into());
        t.record(SimTime(2), "offload", || "b".into());
        t.record(SimTime(3), "send", || "c".into());
        assert_eq!(t.records().len(), 3);
        let sends: Vec<_> = t.with_tag("send").map(|r| r.detail.clone()).collect();
        assert_eq!(sends, vec!["a", "c"]);
        assert!(t.render().contains("[offload] b"));
    }
}
