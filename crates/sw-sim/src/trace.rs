//! **Deprecated** stringly trace, now a thin shim over the structured
//! telemetry recorder.
//!
//! The old `Trace` was a `(time, tag, String)` debug log nobody threaded
//! through the schedulers. Telemetry PR: the runtime now records *typed*
//! events through [`sw_telemetry::Recorder`] (see `DESIGN.md` §11); this
//! shim keeps the legacy surface alive for old tests by projecting typed
//! events back to `(time, tag)` records. The string-formatting paths are
//! gone — [`Trace::record`]'s detail closure is **never invoked** — and new
//! code should hold a `Recorder` directly.

use sw_telemetry::{Event, Lane, Recorder};

use crate::time::SimTime;

/// One legacy trace record, projected from a typed telemetry event. The
/// free-form `detail` string of the old API no longer exists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Legacy category tag, e.g. `"offload"`, `"send"`, or the typed
    /// event's kind for events the old log never had.
    pub tag: String,
}

/// Legacy tag for a typed event.
fn legacy_tag(ev: &Event) -> String {
    match ev {
        Event::Mark { tag } => (*tag).to_string(),
        Event::MsgOnWire { .. } => "send".to_string(),
        Event::OffloadStart { .. } => "offload".to_string(),
        other => other.kind().to_string(),
    }
}

/// Deprecated append-only trace: a view over a [`Recorder`].
#[derive(Clone, Debug, Default)]
pub struct Trace {
    rec: Recorder,
}

impl Trace {
    /// A disabled trace (recording is a no-op).
    pub fn disabled() -> Self {
        Trace {
            rec: Recorder::off(),
        }
    }

    /// An enabled trace (a fresh single-rank recorder).
    pub fn enabled() -> Self {
        Trace {
            rec: Recorder::new(1),
        }
    }

    /// A trace view over an existing recorder.
    pub fn over(rec: Recorder) -> Self {
        Trace { rec }
    }

    /// The underlying recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.rec.is_enabled()
    }

    /// Record a legacy marker (no-op when disabled). The `detail` closure
    /// is **never invoked**: the stringly path is dead. Use a typed
    /// [`sw_telemetry::Event`] on a [`Recorder`] instead.
    #[deprecated(note = "record typed events through sw_telemetry::Recorder")]
    pub fn record(&mut self, at: SimTime, tag: &'static str, _detail: impl FnOnce() -> String) {
        self.rec.record(0, at.0, Lane::Mpe, Event::Mark { tag });
    }

    /// All records so far, projected from the typed stream (rank-major,
    /// time-ordered within a rank's lanes as recorded).
    pub fn records(&self) -> Vec<TraceRecord> {
        self.rec
            .snapshot()
            .iter()
            .flat_map(|buf| buf.iter())
            .map(|r| TraceRecord {
                at: SimTime(r.at_ps),
                tag: legacy_tag(&r.event),
            })
            .collect()
    }

    /// Records with a given legacy tag.
    pub fn with_tag(&self, tag: &str) -> Vec<TraceRecord> {
        self.records()
            .into_iter()
            .filter(|r| r.tag == tag)
            .collect()
    }

    /// Render as text, one record per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            out.push_str(&format!("{} [{}]\n", r.at, r.tag));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing_and_never_formats() {
        let mut t = Trace::disabled();
        let mut called = false;
        #[allow(deprecated)]
        t.record(SimTime(1), "x", || {
            called = true;
            "detail".into()
        });
        assert!(!called, "detail closure must not run when disabled");
        assert!(t.records().is_empty());
    }

    #[test]
    fn enabled_trace_keeps_order_and_filters() {
        let mut t = Trace::enabled();
        let mut formatted = false;
        #[allow(deprecated)]
        {
            t.record(SimTime(1), "send", || "a".into());
            t.record(SimTime(2), "offload", || {
                formatted = true;
                "b".into()
            });
            t.record(SimTime(3), "send", || "c".into());
        }
        assert!(
            !formatted,
            "the string-formatting path is dead even when on"
        );
        assert_eq!(t.records().len(), 3);
        let sends: Vec<_> = t.with_tag("send").iter().map(|r| r.at).collect();
        assert_eq!(sends, vec![SimTime(1), SimTime(3)]);
        assert!(t.render().contains("[offload]"));
    }

    #[test]
    fn trace_projects_typed_events_to_legacy_tags() {
        let rec = Recorder::new(2);
        rec.record(
            0,
            5,
            Lane::Wire,
            Event::MsgOnWire {
                msg: 1,
                src: 0,
                dst: 1,
                bytes: 64,
                deliver_ps: 9,
            },
        );
        rec.record(
            1,
            7,
            Lane::Cpe(0),
            Event::OffloadStart { patch: 3, token: 2 },
        );
        rec.record(1, 8, Lane::Mpe, Event::Barrier { step: 0 });
        let t = Trace::over(rec);
        assert_eq!(t.with_tag("send").len(), 1);
        assert_eq!(t.with_tag("offload").len(), 1);
        assert_eq!(t.with_tag("Barrier").len(), 1);
    }
}
