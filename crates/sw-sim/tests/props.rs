//! Property tests of the simulation substrate.

use proptest::prelude::*;
use sw_sim::{EventQueue, LdmAlloc, Machine, MachineConfig, MpeClock, SimDur, SimTime};

proptest! {
    /// Events pop in nondecreasing time order regardless of insertion order,
    /// and same-time events preserve insertion order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "stability");
            }
        }
        // Every event accounted for.
        let mut seen: Vec<usize> = popped.iter().map(|&(_, i)| i).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
    }

    /// The LDM allocator never lets the working set exceed its capacity, and
    /// the high-water mark is the max over resets.
    #[test]
    fn ldm_never_exceeds_capacity(
        capacity in 64usize..8192,
        allocs in prop::collection::vec(prop::collection::vec(1usize..512, 0..6), 1..20)
    ) {
        let mut ldm = LdmAlloc::new(capacity);
        let mut max_used = 0;
        for tile in &allocs {
            ldm.reset();
            for &n in tile {
                let before = ldm.used();
                match ldm.alloc_f64(n) {
                    Ok(buf) => {
                        prop_assert_eq!(buf.len(), n);
                        prop_assert!(ldm.used() <= capacity);
                        prop_assert_eq!(ldm.used(), before + 8 * n);
                    }
                    Err(e) => {
                        prop_assert!(before + 8 * n > capacity);
                        prop_assert_eq!(e.capacity, capacity);
                        prop_assert_eq!(e.in_use, before);
                    }
                }
            }
            max_used = max_used.max(ldm.used());
        }
        prop_assert_eq!(ldm.high_water(), max_used);
    }

    /// MPE busy time equals the sum of consumed durations, independent of
    /// request times; free_at never decreases.
    #[test]
    fn mpe_clock_accounts_exactly(work in prop::collection::vec((0u64..1000, 1u64..500), 1..100)) {
        let mut m = MpeClock::new();
        let mut total = 0u64;
        let mut last_free = SimTime::ZERO;
        for &(at, dur) in &work {
            let end = m.consume(SimTime(at), SimDur(dur));
            total += dur;
            prop_assert!(end >= last_free);
            prop_assert!(end >= SimTime(at) + SimDur(dur));
            last_free = end;
        }
        prop_assert_eq!(m.busy_total(), SimDur(total));
    }

    /// Network deliveries from one source arrive in injection order (NIC
    /// serialization), and every send produces exactly one delivery event.
    #[test]
    fn nic_serializes_and_delivers_everything(
        msgs in prop::collection::vec((0u64..1000, 1u64..100_000), 1..60)
    ) {
        let mut m = Machine::new(MachineConfig::sw26010(), 2);
        let mut expected: Vec<SimTime> = Vec::new();
        for (i, &(at, bytes)) in msgs.iter().enumerate() {
            let d = m.net_send(0, 1, bytes, SimTime(at), i as u64);
            expected.push(d);
        }
        // Injection order == token order here, so delivery times are
        // nondecreasing in token order.
        for w in expected.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let mut deliveries = 0;
        while m.pop().is_some() {
            deliveries += 1;
        }
        prop_assert_eq!(deliveries, msgs.len());
    }
}
