//! Typed telemetry events and the lanes they are recorded on.
//!
//! Every event carries the *virtual* time it happened at (integer
//! picoseconds on the simulated SW26010 clock, i.e. `sw_sim::SimTime.0` —
//! this crate is a dependency leaf and deliberately stores the raw `u64`),
//! plus an optional wall-clock offset when the recorder was created with
//! [`crate::Recorder::with_wall_clock`] (functional mode, where host time is
//! meaningful).

/// Execution lane an event belongs to, within one rank (one core group).
///
/// Perfetto track mapping: `Mpe` → tid 0, `Cpe(k)` → tid `1 + k`,
/// `Progress` → tid [`Lane::PROGRESS_TID`], `Wire` → tid
/// [`Lane::WIRE_TID`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// The management processing element (the MPE scheduler thread).
    Mpe,
    /// One CPE kernel slot (0-based slot index, not a physical CPE id:
    /// a slot drives a whole 64-CPE spawn in this runtime's model).
    Cpe(u32),
    /// The dedicated MPI progress lane (modeled comm thread): protocol
    /// actions taken at wire-delivery time instead of inside an MPE
    /// `progress` call. Only populated when the progress-lane machine
    /// variant is enabled.
    Progress,
    /// The synthetic "wire" track carrying in-flight network messages.
    Wire,
}

impl Lane {
    /// Perfetto thread id reserved for the dedicated progress lane.
    pub const PROGRESS_TID: u64 = 98;
    /// Perfetto thread id reserved for the wire track.
    pub const WIRE_TID: u64 = 99;

    /// Perfetto thread id for this lane within its rank's process.
    pub fn tid(self) -> u64 {
        match self {
            Lane::Mpe => 0,
            Lane::Cpe(k) => 1 + u64::from(k),
            Lane::Progress => Self::PROGRESS_TID,
            Lane::Wire => Self::WIRE_TID,
        }
    }

    /// Human-readable track name (Perfetto thread_name metadata).
    pub fn name(self) -> String {
        match self {
            Lane::Mpe => "MPE".into(),
            Lane::Cpe(k) => format!("CPE slot {k}"),
            Lane::Progress => "progress".into(),
            Lane::Wire => "wire".into(),
        }
    }
}

/// A structured telemetry event.
///
/// Span-shaped pairs (`TaskStart`/`TaskEnd`, `OffloadStart`/`OffloadDone`,
/// `DmaIn`/`DmaOut`) are matched per lane in recording order; the remaining
/// variants are instants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// MPE begins preparing/executing a coarse task for `patch` at `stage`.
    TaskStart {
        /// Patch id the task operates on.
        patch: usize,
        /// Pipeline stage index.
        stage: usize,
    },
    /// MPE finished the coarse task started by the matching [`Event::TaskStart`].
    TaskEnd {
        /// Patch id the task operates on.
        patch: usize,
        /// Pipeline stage index.
        stage: usize,
    },
    /// A kernel offload was handed to this lane (CPE slot, or MPE when the
    /// variant computes on the host).
    OffloadStart {
        /// Patch id the kernel computes.
        patch: usize,
        /// Kernel token (machine event token; 0 for MPE-host compute).
        token: u64,
    },
    /// The offload started by the matching [`Event::OffloadStart`] completed.
    OffloadDone {
        /// Patch id the kernel computes.
        patch: usize,
        /// Kernel token (machine event token; 0 for MPE-host compute).
        token: u64,
    },
    /// DMA of the kernel working set into LDM begins (span start).
    DmaIn {
        /// Bytes staged into LDM.
        bytes: u64,
    },
    /// DMA of results back to main memory completes (span end).
    DmaOut {
        /// Bytes written back.
        bytes: u64,
    },
    /// An `isend` was posted on this rank.
    MsgPosted {
        /// Message id (world-unique).
        msg: u64,
        /// Destination rank.
        peer: usize,
        /// MPI tag.
        tag: u64,
        /// Payload bytes.
        bytes: u64,
        /// Whether the eager protocol applies (payload on wire immediately).
        eager: bool,
    },
    /// A message packet entered the interconnect (recorded on [`Lane::Wire`]
    /// of the *source* rank).
    MsgOnWire {
        /// Message id, or raw wire token when the packet is a protocol
        /// control packet (RTS/CTS).
        msg: u64,
        /// Source rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Bytes on the wire.
        bytes: u64,
        /// Virtual delivery time (ps) at the destination NIC.
        deliver_ps: u64,
    },
    /// A payload was matched to its `irecv` and consumed at the destination.
    MsgDelivered {
        /// Message id.
        msg: u64,
        /// Source rank the payload came from.
        peer: usize,
        /// MPI tag.
        tag: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// Rendezvous request-to-send control packet left this rank.
    RtsSent {
        /// Message id.
        msg: u64,
        /// Destination rank.
        peer: usize,
    },
    /// Rendezvous clear-to-send control packet left this rank.
    CtsSent {
        /// Message id.
        msg: u64,
        /// Source rank being cleared.
        peer: usize,
    },
    /// One call into `MpiWorld::progress` on this rank.
    ProgressCall {
        /// Protocol actions taken by this call (0 = no-op poll).
        actions: u64,
    },
    /// An eager payload was parked in a per-(destination, endpoint)
    /// aggregation staging buffer instead of going straight to the wire.
    AggStaged {
        /// Message id staged.
        msg: u64,
        /// Destination rank of the staging buffer.
        peer: usize,
        /// Endpoint the buffer (and eventually the coalesced packet) rides.
        endpoint: u32,
        /// Payload bytes added to the buffer.
        bytes: u64,
    },
    /// A staging buffer was flushed as one coalesced wire packet.
    AggFlushed {
        /// Batch id of the coalesced packet (drawn from the sender's
        /// message-id namespace).
        batch: u64,
        /// Destination rank.
        peer: usize,
        /// Endpoint the coalesced packet rides.
        endpoint: u32,
        /// Member messages coalesced into the packet.
        msgs: u64,
        /// Sum of member payload bytes (before the control-packet floor).
        bytes: u64,
        /// Flush trigger: `"bytes"` (threshold crossed at push) or
        /// `"deadline"` (oldest member aged out in `progress`).
        reason: &'static str,
    },
    /// This rank contributed its local value to the timestep reduction.
    ReduceContribute {
        /// Timestep index.
        step: usize,
    },
    /// The reduction result became visible on this rank.
    ReduceDone {
        /// Timestep index.
        step: usize,
    },
    /// This rank crossed the end-of-step barrier (its `step_end` instant).
    Barrier {
        /// Timestep index that just ended.
        step: usize,
    },
    /// The MPE went idle waiting for the machine, until `until_ps` (a timer
    /// wakeup) or an unknown future event (`u64::MAX`).
    Idle {
        /// Scheduled wakeup time in ps (`u64::MAX` when event-driven).
        until_ps: u64,
    },
    /// Untyped marker instant (tests and ad-hoc debugging; production code
    /// should use a typed variant).
    Mark {
        /// Static tag string.
        tag: &'static str,
    },
    /// The fault plan injected a fault at a shim boundary (slot death,
    /// straggler, DMA error, message drop/duplicate/delay).
    FaultInjected {
        /// Stable fault-kind name (matches a `FaultStats` counter, e.g.
        /// `"slot_death"`, `"msg_drop"`).
        kind: &'static str,
        /// Entity id the fault hit (kernel token, message id, ...).
        id: u64,
    },
    /// A detector fired: an offload deadline or a message ack timeout.
    FaultDetected {
        /// Stable fault-kind name (`"offload_timeout"`, `"msg_timeout"`).
        kind: &'static str,
        /// Entity id the detector fired for.
        id: u64,
    },
    /// A recovery action completed (retry re-executed, resend delivered,
    /// or degradation to a serial fallback).
    FaultRecovered {
        /// Stable recovery-kind name (`"offload_retry"`, `"msg_resend"`,
        /// `"serial_degrade"`).
        kind: &'static str,
        /// Entity id that recovered.
        id: u64,
    },
    /// A warehouse checkpoint was written at a step boundary.
    CheckpointWritten {
        /// Step the checkpoint covers (next step to run on restart).
        step: usize,
        /// Field-data payload bytes serialized.
        bytes: u64,
    },
    /// Execution restarted from a checkpoint.
    CheckpointRestored {
        /// Step execution resumes at.
        step: usize,
    },
}

impl Event {
    /// Short stable name for exporters and debugging.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::TaskStart { .. } => "TaskStart",
            Event::TaskEnd { .. } => "TaskEnd",
            Event::OffloadStart { .. } => "OffloadStart",
            Event::OffloadDone { .. } => "OffloadDone",
            Event::DmaIn { .. } => "DmaIn",
            Event::DmaOut { .. } => "DmaOut",
            Event::MsgPosted { .. } => "MsgPosted",
            Event::MsgOnWire { .. } => "MsgOnWire",
            Event::MsgDelivered { .. } => "MsgDelivered",
            Event::RtsSent { .. } => "RtsSent",
            Event::CtsSent { .. } => "CtsSent",
            Event::ProgressCall { .. } => "ProgressCall",
            Event::AggStaged { .. } => "AggStaged",
            Event::AggFlushed { .. } => "AggFlushed",
            Event::ReduceContribute { .. } => "ReduceContribute",
            Event::ReduceDone { .. } => "ReduceDone",
            Event::Barrier { .. } => "Barrier",
            Event::Idle { .. } => "Idle",
            Event::Mark { .. } => "Mark",
            Event::FaultInjected { .. } => "FaultInjected",
            Event::FaultDetected { .. } => "FaultDetected",
            Event::FaultRecovered { .. } => "FaultRecovered",
            Event::CheckpointWritten { .. } => "CheckpointWritten",
            Event::CheckpointRestored { .. } => "CheckpointRestored",
        }
    }
}

/// One recorded event: virtual timestamp, optional wall-clock offset, lane,
/// payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Virtual time in integer picoseconds (`sw_sim::SimTime.0`).
    pub at_ps: u64,
    /// Wall-clock nanoseconds since the recorder's epoch, when wall-clock
    /// capture is enabled (functional mode); `None` otherwise.
    pub wall_ns: Option<u64>,
    /// Lane the event belongs to.
    pub lane: Lane,
    /// The event payload.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_tids_are_distinct_and_stable() {
        assert_eq!(Lane::Mpe.tid(), 0);
        assert_eq!(Lane::Cpe(0).tid(), 1);
        assert_eq!(Lane::Cpe(7).tid(), 8);
        assert_eq!(Lane::Progress.tid(), 98);
        assert_eq!(Lane::Wire.tid(), 99);
        assert_eq!(Lane::Cpe(3).name(), "CPE slot 3");
        assert_eq!(Lane::Progress.name(), "progress");
    }

    #[test]
    fn event_kind_names() {
        assert_eq!(Event::TaskStart { patch: 0, stage: 0 }.kind(), "TaskStart");
        assert_eq!(Event::Mark { tag: "x" }.kind(), "Mark");
        assert_eq!(Event::Idle { until_ps: 5 }.kind(), "Idle");
        assert_eq!(
            Event::FaultInjected {
                kind: "slot_death",
                id: 7
            }
            .kind(),
            "FaultInjected"
        );
        assert_eq!(
            Event::CheckpointWritten { step: 2, bytes: 64 }.kind(),
            "CheckpointWritten"
        );
    }
}
