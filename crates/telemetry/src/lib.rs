//! `sw-telemetry` — structured span/event telemetry for the simulated
//! Sunway runtime.
//!
//! The paper's central claim is *overlap*: the async scheduler hides MPI
//! progression and rendezvous handshakes behind CPE kernel execution
//! (§V-C). This crate is the measurement substrate that makes the claim
//! observable from our own instrumentation:
//!
//! * [`event`] — a typed event taxonomy (tasks, offloads, DMA, message
//!   protocol, reductions, barriers, idle) on per-rank [`Lane`]s, stamped
//!   with virtual picoseconds (and optionally host wall clock);
//! * [`recorder`] — the zero-cost-when-disabled [`Recorder`]: a disabled
//!   handle is a single branch on the hot path, no allocation (proved by
//!   the counting-allocator test in `tests/alloc_count.rs`);
//! * [`metrics`] — an always-on registry of atomic counters and log2
//!   histograms ([`Metrics`]);
//! * [`perfetto`] — a Chrome trace-event / Perfetto JSON exporter (one
//!   track per rank MPE + CPE lane + wire, flow arrows send→recv);
//! * [`phases`] — the derived-metrics pass: exact per-step 4-way phase
//!   partitions (compute / comm-hidden / comm-exposed / idle), overlap
//!   efficiency, and critical-path extraction;
//! * [`race`] — vector-clock happens-before reconstruction over a trace
//!   (program order, offload fork/join, message and reduction edges) and
//!   a FastTrack-style conflicting-access checker.
//!
//! This crate is a dependency **leaf** (even `sw-sim` depends on it, for
//! the deprecated `Trace` shim), so times are raw `u64` picoseconds —
//! callers pass `SimTime.0`.

#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod perfetto;
pub mod phases;
pub mod race;
pub mod recorder;

pub use event::{Event, EventRecord, Lane};
pub use metrics::{Counter, Hist, Metrics};
pub use phases::{analyze, CritPathEntry, PhaseBreakdown, PhaseReport};
pub use race::{trace_hb, AccessKind, AccessSpan, RaceFinding, RaceReport, TraceHb, VectorClock};
pub use recorder::Recorder;
