//! Always-on cheap metrics: atomic counters and log2 histograms.
//!
//! The registry lives inside the recorder's shared `Inner`, so a disabled
//! recorder pays exactly one branch and touches no metric. All operations
//! are relaxed atomics: the registry is a statistics sink, not a
//! synchronization primitive.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket `b` counts values `v` with
/// `bit_length(v) == b`, i.e. bucket 0 holds `v == 0`, bucket 1 holds
/// `v == 1`, bucket 2 holds `2..=3`, … bucket 64 holds the top half of the
/// `u64` range.
pub const HIST_BUCKETS: usize = 65;

/// A log2 histogram over `u64` samples (e.g. message bytes).
#[derive(Debug)]
pub struct Hist {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Hist {
    /// Bucket index for a sample: its bit length (`0` for `0`).
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Snapshot of the raw bucket counts.
    pub fn snapshot(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Non-empty buckets as `(lower_bound_inclusive, count)` pairs.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.snapshot()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (if b == 0 { 0 } else { 1u64 << (b - 1) }, c))
            .collect()
    }
}

/// The metrics registry carried by an enabled recorder.
#[derive(Debug, Default)]
pub struct Metrics {
    /// CPE kernel offloads spawned.
    pub offloads: Counter,
    /// Calls into `MpiWorld::progress`.
    pub progress_calls: Counter,
    /// Point-to-point messages posted (`isend`s).
    pub messages_posted: Counter,
    /// Payload bytes per posted message, by log2 size class.
    pub msg_bytes: Hist,
    /// Functional offloads demoted from the parallel to the serial engine.
    pub serial_fallbacks: Counter,
    /// Per-rank reduction contributions.
    pub reduce_contributions: Counter,
}

impl Metrics {
    /// Render the registry as a hand-rolled JSON object (the workspace has
    /// no serde_json; see `bench::perf::bench_json` for the idiom).
    pub fn to_json(&self, indent: &str) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "{indent}  \"offloads\": {},\n",
            self.offloads.get()
        ));
        s.push_str(&format!(
            "{indent}  \"progress_calls\": {},\n",
            self.progress_calls.get()
        ));
        s.push_str(&format!(
            "{indent}  \"messages_posted\": {},\n",
            self.messages_posted.get()
        ));
        s.push_str(&format!(
            "{indent}  \"serial_fallbacks\": {},\n",
            self.serial_fallbacks.get()
        ));
        s.push_str(&format!(
            "{indent}  \"reduce_contributions\": {},\n",
            self.reduce_contributions.get()
        ));
        s.push_str(&format!("{indent}  \"msg_bytes_log2\": ["));
        let nz = self.msg_bytes.nonzero();
        for (i, (lo, c)) in nz.iter().enumerate() {
            s.push_str(&format!(
                "{{\"ge\": {lo}, \"count\": {c}}}{}",
                if i + 1 == nz.len() { "" } else { ", " }
            ));
        }
        s.push_str("]\n");
        s.push_str(&format!("{indent}}}"));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn hist_buckets_are_log2() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(u64::MAX), 64);
        let h = Hist::default();
        for v in [0u64, 1, 2, 3, 4, 1024, 1025] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        let nz = h.nonzero();
        assert!(nz.contains(&(0, 1)));
        assert!(nz.contains(&(2, 2))); // 2 and 3
        assert!(nz.contains(&(1024, 2))); // 1024 and 1025
    }

    #[test]
    fn metrics_json_is_wellformed_ish() {
        let m = Metrics::default();
        m.offloads.add(3);
        m.msg_bytes.record(4096);
        let j = m.to_json("  ");
        assert!(j.contains("\"offloads\": 3"));
        assert!(j.contains("\"ge\": 4096, \"count\": 1"));
    }
}
