//! Chrome trace-event ("Perfetto JSON") exporter.
//!
//! Emits a `{"traceEvents": [...]}` document loadable by ui.perfetto.dev
//! and `chrome://tracing`:
//!
//! * one *process* per rank (pid = rank), named `rank N`;
//! * one *thread* per lane within the rank: tid 0 = MPE, tid 1+k = CPE
//!   slot k, tid 99 = the wire track (in-flight packets leaving this rank);
//! * `"X"` complete spans for Task, Offload, DMA, and wire-transit windows,
//!   paired per lane in recording order;
//! * `"i"` instants for protocol events, reductions, barriers, marks;
//! * `"s"`/`"f"` flow arrows connecting each payload's `MsgPosted` on the
//!   sender to its `MsgDelivered` on the receiver (flow id = message id).
//!
//! Timestamps: trace-event `ts`/`dur` are microseconds; virtual picoseconds
//! are emitted as fractional µs (`ps / 1e6`) with sub-ns precision kept.

use crate::event::{Event, EventRecord, Lane};

/// ps → trace-event µs, keeping fractional precision.
fn us(ps: u64) -> f64 {
    ps as f64 / 1e6
}

/// Minimal JSON string escaping for names we generate (ASCII, but be safe).
fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn meta(pid: usize, tid: Option<u64>, which: &str, name: &str) -> String {
    let tid_field = tid.map_or(String::new(), |t| format!("\"tid\": {t}, "));
    format!(
        "{{\"ph\": \"M\", \"pid\": {pid}, {tid_field}\"name\": \"{which}\", \
         \"args\": {{\"name\": \"{}\"}}}}",
        esc(name)
    )
}

fn span(pid: usize, tid: u64, name: &str, start_ps: u64, end_ps: u64, args: &str) -> String {
    format!(
        "{{\"ph\": \"X\", \"pid\": {pid}, \"tid\": {tid}, \"name\": \"{}\", \
         \"ts\": {:.6}, \"dur\": {:.6}, \"args\": {{{args}}}}}",
        esc(name),
        us(start_ps),
        us(end_ps.saturating_sub(start_ps).max(1)) // Perfetto hides 0-width
    )
}

fn instant(pid: usize, tid: u64, name: &str, at_ps: u64, args: &str) -> String {
    format!(
        "{{\"ph\": \"i\", \"pid\": {pid}, \"tid\": {tid}, \"name\": \"{}\", \
         \"ts\": {:.6}, \"s\": \"t\", \"args\": {{{args}}}}}",
        esc(name),
        us(at_ps)
    )
}

fn flow(ph: char, id: u64, pid: usize, tid: u64, at_ps: u64) -> String {
    let bind = if ph == 'f' { ", \"bp\": \"e\"" } else { "" };
    format!(
        "{{\"ph\": \"{ph}\", \"id\": {id}, \"pid\": {pid}, \"tid\": {tid}, \
         \"name\": \"msg\", \"cat\": \"msg\", \"ts\": {:.6}{bind}}}",
        us(at_ps)
    )
}

/// Export per-rank event buffers (as produced by
/// [`crate::Recorder::snapshot`]) to a Chrome trace-event JSON document.
pub fn export(ranks: &[Vec<EventRecord>]) -> String {
    let mut ev: Vec<String> = Vec::new();

    for (rank, buf) in ranks.iter().enumerate() {
        ev.push(meta(rank, None, "process_name", &format!("rank {rank}")));
        // Thread metadata for every lane that appears.
        let mut lanes: Vec<Lane> = buf.iter().map(|r| r.lane).collect();
        lanes.sort();
        lanes.dedup();
        for lane in &lanes {
            ev.push(meta(rank, Some(lane.tid()), "thread_name", &lane.name()));
        }

        // Span pairing: per (lane, kind) open stack, matched in recording
        // order. Unmatched starts fall back to instants so a truncated
        // buffer still exports.
        let mut open_task: Vec<(u64, usize, usize, Lane)> = Vec::new();
        let mut open_off: Vec<(u64, usize, u64, Lane)> = Vec::new();
        let mut open_dma: Vec<(u64, u64, Lane)> = Vec::new();

        for r in buf {
            let tid = r.lane.tid();
            match &r.event {
                Event::TaskStart { patch, stage } => {
                    open_task.push((r.at_ps, *patch, *stage, r.lane));
                }
                Event::TaskEnd { patch, stage } => {
                    if let Some(pos) = open_task
                        .iter()
                        .rposition(|&(_, p, s, l)| p == *patch && s == *stage && l == r.lane)
                    {
                        let (t0, p, s, _) = open_task.remove(pos);
                        ev.push(span(
                            rank,
                            tid,
                            &format!("task p{p} s{s}"),
                            t0,
                            r.at_ps,
                            &format!("\"patch\": {p}, \"stage\": {s}"),
                        ));
                    }
                }
                Event::OffloadStart { patch, token } => {
                    open_off.push((r.at_ps, *patch, *token, r.lane));
                }
                Event::OffloadDone { patch, token } => {
                    if let Some(pos) = open_off
                        .iter()
                        .rposition(|&(_, p, t, l)| p == *patch && t == *token && l == r.lane)
                    {
                        let (t0, p, t, _) = open_off.remove(pos);
                        ev.push(span(
                            rank,
                            tid,
                            &format!("kernel p{p}"),
                            t0,
                            r.at_ps,
                            &format!("\"patch\": {p}, \"token\": {t}"),
                        ));
                    }
                }
                Event::DmaIn { bytes } => open_dma.push((r.at_ps, *bytes, r.lane)),
                Event::DmaOut { bytes } => {
                    if let Some(pos) = open_dma.iter().rposition(|&(_, _, l)| l == r.lane) {
                        let (t0, b_in, _) = open_dma.remove(pos);
                        ev.push(span(
                            rank,
                            tid,
                            "dma",
                            t0,
                            r.at_ps,
                            &format!("\"bytes_in\": {b_in}, \"bytes_out\": {bytes}"),
                        ));
                    }
                }
                Event::MsgPosted {
                    msg,
                    peer,
                    tag,
                    bytes,
                    eager,
                } => {
                    ev.push(instant(
                        rank,
                        tid,
                        "MsgPosted",
                        r.at_ps,
                        &format!(
                            "\"msg\": {msg}, \"dst\": {peer}, \"tag\": {tag}, \
                             \"bytes\": {bytes}, \"eager\": {eager}"
                        ),
                    ));
                    ev.push(flow('s', *msg, rank, tid, r.at_ps));
                }
                Event::MsgOnWire {
                    msg,
                    src,
                    dst,
                    bytes,
                    deliver_ps,
                } => {
                    ev.push(span(
                        rank,
                        Lane::WIRE_TID,
                        &format!("wire {src}->{dst}"),
                        r.at_ps,
                        *deliver_ps,
                        &format!("\"msg\": {msg}, \"bytes\": {bytes}"),
                    ));
                }
                Event::MsgDelivered {
                    msg,
                    peer,
                    tag,
                    bytes,
                } => {
                    ev.push(instant(
                        rank,
                        tid,
                        "MsgDelivered",
                        r.at_ps,
                        &format!(
                            "\"msg\": {msg}, \"src\": {peer}, \"tag\": {tag}, \"bytes\": {bytes}"
                        ),
                    ));
                    ev.push(flow('f', *msg, rank, tid, r.at_ps));
                }
                Event::RtsSent { msg, peer } => ev.push(instant(
                    rank,
                    tid,
                    "RTS",
                    r.at_ps,
                    &format!("\"msg\": {msg}, \"dst\": {peer}"),
                )),
                Event::CtsSent { msg, peer } => ev.push(instant(
                    rank,
                    tid,
                    "CTS",
                    r.at_ps,
                    &format!("\"msg\": {msg}, \"src\": {peer}"),
                )),
                Event::ProgressCall { actions } => {
                    // Only non-trivial progress shows up as an instant; no-op
                    // polls would bury the timeline.
                    if *actions > 0 {
                        ev.push(instant(
                            rank,
                            tid,
                            "progress",
                            r.at_ps,
                            &format!("\"actions\": {actions}"),
                        ));
                    }
                }
                Event::AggStaged {
                    msg,
                    peer,
                    endpoint,
                    bytes,
                } => ev.push(instant(
                    rank,
                    tid,
                    "agg.stage",
                    r.at_ps,
                    &format!(
                        "\"msg\": {msg}, \"dst\": {peer}, \"ep\": {endpoint}, \"bytes\": {bytes}"
                    ),
                )),
                Event::AggFlushed {
                    batch,
                    peer,
                    endpoint,
                    msgs,
                    bytes,
                    reason,
                } => ev.push(instant(
                    rank,
                    tid,
                    &format!("agg.flush.{reason}"),
                    r.at_ps,
                    &format!(
                        "\"batch\": {batch}, \"dst\": {peer}, \"ep\": {endpoint}, \
                         \"msgs\": {msgs}, \"bytes\": {bytes}"
                    ),
                )),
                Event::ReduceContribute { step } => ev.push(instant(
                    rank,
                    tid,
                    "reduce.contribute",
                    r.at_ps,
                    &format!("\"step\": {step}"),
                )),
                Event::ReduceDone { step } => ev.push(instant(
                    rank,
                    tid,
                    "reduce.done",
                    r.at_ps,
                    &format!("\"step\": {step}"),
                )),
                Event::Barrier { step } => ev.push(instant(
                    rank,
                    tid,
                    "barrier",
                    r.at_ps,
                    &format!("\"step\": {step}"),
                )),
                Event::Idle { until_ps } => {
                    if *until_ps != u64::MAX && *until_ps > r.at_ps {
                        ev.push(span(rank, tid, "idle", r.at_ps, *until_ps, ""));
                    } else {
                        ev.push(instant(rank, tid, "idle", r.at_ps, ""));
                    }
                }
                Event::Mark { tag } => {
                    ev.push(instant(rank, tid, &format!("mark.{tag}"), r.at_ps, ""))
                }
                Event::FaultInjected { kind, id } => ev.push(instant(
                    rank,
                    tid,
                    &format!("fault.inject.{kind}"),
                    r.at_ps,
                    &format!("\"id\": {id}"),
                )),
                Event::FaultDetected { kind, id } => ev.push(instant(
                    rank,
                    tid,
                    &format!("fault.detect.{kind}"),
                    r.at_ps,
                    &format!("\"id\": {id}"),
                )),
                Event::FaultRecovered { kind, id } => ev.push(instant(
                    rank,
                    tid,
                    &format!("fault.recover.{kind}"),
                    r.at_ps,
                    &format!("\"id\": {id}"),
                )),
                Event::CheckpointWritten { step, bytes } => ev.push(instant(
                    rank,
                    tid,
                    "ckpt.write",
                    r.at_ps,
                    &format!("\"step\": {step}, \"bytes\": {bytes}"),
                )),
                Event::CheckpointRestored { step } => ev.push(instant(
                    rank,
                    tid,
                    "ckpt.restore",
                    r.at_ps,
                    &format!("\"step\": {step}"),
                )),
            }
        }
        // Unmatched span starts: emit as instants so nothing is lost.
        for (t0, p, s, lane) in open_task {
            ev.push(instant(
                rank,
                lane.tid(),
                &format!("task.unmatched p{p} s{s}"),
                t0,
                "",
            ));
        }
        for (t0, p, t, lane) in open_off {
            ev.push(instant(
                rank,
                lane.tid(),
                &format!("kernel.unmatched p{p} t{t}"),
                t0,
                "",
            ));
        }
        for (t0, b, lane) in open_dma {
            ev.push(instant(
                rank,
                lane.tid(),
                &format!("dma.unmatched {b}B"),
                t0,
                "",
            ));
        }
    }

    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    for (i, e) in ev.iter().enumerate() {
        out.push_str("  ");
        out.push_str(e);
        out.push_str(if i + 1 == ev.len() { "\n" } else { ",\n" });
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_ps: u64, lane: Lane, event: Event) -> EventRecord {
        EventRecord {
            at_ps,
            wall_ns: None,
            lane,
            event,
        }
    }

    #[test]
    fn exports_spans_instants_and_flows() {
        let ranks = vec![
            vec![
                rec(0, Lane::Mpe, Event::TaskStart { patch: 3, stage: 0 }),
                rec(
                    100_000,
                    Lane::Mpe,
                    Event::MsgPosted {
                        msg: 7,
                        peer: 1,
                        tag: 42,
                        bytes: 4096,
                        eager: false,
                    },
                ),
                rec(200_000, Lane::Mpe, Event::TaskEnd { patch: 3, stage: 0 }),
                rec(
                    50_000,
                    Lane::Cpe(0),
                    Event::OffloadStart { patch: 3, token: 9 },
                ),
                rec(
                    180_000,
                    Lane::Cpe(0),
                    Event::OffloadDone { patch: 3, token: 9 },
                ),
            ],
            vec![rec(
                300_000,
                Lane::Mpe,
                Event::MsgDelivered {
                    msg: 7,
                    peer: 0,
                    tag: 42,
                    bytes: 4096,
                },
            )],
        ];
        let j = export(&ranks);
        assert!(j.starts_with("{\"displayTimeUnit\""));
        assert!(j.contains("\"process_name\""));
        assert!(j.contains("\"thread_name\""));
        assert!(j.contains("\"ph\": \"X\""));
        assert!(j.contains("task p3 s0"));
        assert!(j.contains("kernel p3"));
        assert!(j.contains("\"ph\": \"s\", \"id\": 7"));
        assert!(j.contains("\"ph\": \"f\", \"id\": 7"));
        assert!(j.trim_end().ends_with("]}"));
    }

    #[test]
    fn unmatched_starts_degrade_to_instants() {
        let ranks = vec![vec![rec(
            10,
            Lane::Cpe(2),
            Event::OffloadStart { patch: 1, token: 5 },
        )]];
        let j = export(&ranks);
        assert!(j.contains("kernel.unmatched p1 t5"));
    }

    #[test]
    fn escaping_handles_quotes() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
    }
}
