//! Derived-metrics pass: per-step phase breakdowns, overlap efficiency,
//! and the critical path through the event graph.
//!
//! The decomposition follows the comm/compute-attribution methodology of
//! the HPX+LCI communication study and Task Bench's phase breakdowns: for
//! every rank and timestep window we partition virtual time into **four
//! disjoint phases** using exact integer interval algebra, so the four
//! always sum to the window length (the reconciliation the proptests and
//! `repro trace` assert):
//!
//! * **compute** — kernel execution with no message of this rank in flight;
//! * **comm-hidden** — kernel execution *overlapping* an in-flight message
//!   (the paper's §V-C claim: the async scheduler hides MPI progression
//!   behind CPE kernels);
//! * **comm-exposed** — a message in flight while no kernel runs (the cost
//!   the sync scheduler pays);
//! * **idle** — neither.
//!
//! A message is "in flight" for *both* endpoint ranks from its `MsgPosted`
//! instant on the sender to its `MsgDelivered` instant on the receiver.
//! Overlap efficiency = hidden / (hidden + exposed), i.e. the fraction of
//! communication time the scheduler managed to hide.

use std::collections::BTreeMap;

use crate::event::{Event, EventRecord, Lane};

/// Half-open interval `[start, end)` in virtual picoseconds.
pub type Iv = (u64, u64);

/// Sort + merge into a disjoint, ordered union.
fn normalize(mut ivs: Vec<Iv>) -> Vec<Iv> {
    ivs.retain(|&(a, b)| b > a);
    ivs.sort_unstable();
    let mut out: Vec<Iv> = Vec::with_capacity(ivs.len());
    for (a, b) in ivs {
        match out.last_mut() {
            Some((_, pe)) if a <= *pe => *pe = (*pe).max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Intersection of two normalized unions.
fn intersect(a: &[Iv], b: &[Iv]) -> Vec<Iv> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            out.push((lo, hi));
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Clip a normalized union to `[lo, hi)`.
fn clip(a: &[Iv], lo: u64, hi: u64) -> Vec<Iv> {
    a.iter()
        .filter_map(|&(s, e)| {
            let (s, e) = (s.max(lo), e.min(hi));
            (e > s).then_some((s, e))
        })
        .collect()
}

/// Total length of a normalized union.
fn total(a: &[Iv]) -> u64 {
    a.iter().map(|&(s, e)| e - s).sum()
}

/// Phase split of one rank over one timestep window. The four phase fields
/// sum to `window_ps` exactly (integer arithmetic, no rounding).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Timestep index.
    pub step: usize,
    /// Rank.
    pub rank: usize,
    /// Window length in ps (`step_end[s] - step_end[s-1]`).
    pub window_ps: u64,
    /// Kernel time with no in-flight message.
    pub compute_ps: u64,
    /// Kernel time overlapping an in-flight message (hidden comm).
    pub hidden_ps: u64,
    /// In-flight-message time with no kernel running (exposed comm).
    pub exposed_ps: u64,
    /// Neither kernel nor message.
    pub idle_ps: u64,
}

impl PhaseBreakdown {
    /// Sum of the four phases (must equal `window_ps`).
    pub fn sum_ps(&self) -> u64 {
        self.compute_ps + self.hidden_ps + self.exposed_ps + self.idle_ps
    }
}

/// One hop of the critical path (walked backward, reported forward).
#[derive(Clone, Debug)]
pub struct CritPathEntry {
    /// Rank the hop executes on (source rank for a message hop).
    pub rank: usize,
    /// `"kernel"`, `"task"`, or `"msg"`.
    pub kind: &'static str,
    /// Start of the hop (ps).
    pub start_ps: u64,
    /// End of the hop (ps).
    pub end_ps: u64,
    /// Human-readable detail (patch / message id).
    pub detail: String,
}

/// Output of the derived-metrics pass.
#[derive(Clone, Debug, Default)]
pub struct PhaseReport {
    /// Number of ranks in the trace.
    pub n_ranks: usize,
    /// Global end-of-step times (ps), from the per-rank `Barrier` events
    /// (max across ranks per step). Matches `RunReport::step_end`.
    pub step_end_ps: Vec<u64>,
    /// Per (step, rank) phase splits, step-major then rank order.
    pub breakdowns: Vec<PhaseBreakdown>,
    /// hidden / (hidden + exposed) over the whole run; `1.0` when there was
    /// no communication at all.
    pub overlap_efficiency: f64,
    /// Critical path from t=0 to the last barrier, in forward order.
    pub critical_path: Vec<CritPathEntry>,
}

impl PhaseReport {
    /// Totals over all steps/ranks: `(compute, hidden, exposed, idle)` ps.
    pub fn totals(&self) -> (u64, u64, u64, u64) {
        self.breakdowns.iter().fold((0, 0, 0, 0), |acc, b| {
            (
                acc.0 + b.compute_ps,
                acc.1 + b.hidden_ps,
                acc.2 + b.exposed_ps,
                acc.3 + b.idle_ps,
            )
        })
    }
}

/// Paired span on a lane, used for kernel/task interval extraction.
#[derive(Clone, Debug)]
struct Span {
    start: u64,
    end: u64,
    patch: usize,
    kind: &'static str,
}

/// Extract paired kernel (offload) and task spans from one rank's buffer.
fn spans_of(buf: &[EventRecord]) -> Vec<Span> {
    let mut out = Vec::new();
    let mut open_off: Vec<(u64, usize, u64, Lane)> = Vec::new();
    let mut open_task: Vec<(u64, usize, usize, Lane)> = Vec::new();
    for r in buf {
        match &r.event {
            Event::OffloadStart { patch, token } => {
                open_off.push((r.at_ps, *patch, *token, r.lane));
            }
            Event::OffloadDone { patch, token } => {
                if let Some(pos) = open_off
                    .iter()
                    .rposition(|&(_, p, t, l)| p == *patch && t == *token && l == r.lane)
                {
                    let (t0, p, _, _) = open_off.remove(pos);
                    out.push(Span {
                        start: t0,
                        end: r.at_ps,
                        patch: p,
                        kind: "kernel",
                    });
                }
            }
            Event::TaskStart { patch, stage } => {
                open_task.push((r.at_ps, *patch, *stage, r.lane));
            }
            Event::TaskEnd { patch, stage } => {
                if let Some(pos) = open_task
                    .iter()
                    .rposition(|&(_, p, s, l)| p == *patch && s == *stage && l == r.lane)
                {
                    let (t0, p, _, _) = open_task.remove(pos);
                    out.push(Span {
                        start: t0,
                        end: r.at_ps,
                        patch: p,
                        kind: "task",
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Run the derived-metrics pass over per-rank buffers (as produced by
/// [`crate::Recorder::snapshot`]).
pub fn analyze(ranks: &[Vec<EventRecord>]) -> PhaseReport {
    let n_ranks = ranks.len();

    // -- Step boundaries from Barrier events: global end = max over ranks.
    let mut step_end: BTreeMap<usize, u64> = BTreeMap::new();
    for buf in ranks {
        for r in buf {
            if let Event::Barrier { step } = r.event {
                let e = step_end.entry(step).or_insert(0);
                *e = (*e).max(r.at_ps);
            }
        }
    }
    let n_steps = step_end.keys().next_back().map_or(0, |&s| s + 1);
    let step_end_ps: Vec<u64> = (0..n_steps)
        .map(|s| step_end.get(&s).copied().unwrap_or(0))
        .collect();

    // -- Message in-flight windows: posted@src .. delivered@dst, attributed
    //    to both endpoints. Unmatched messages clip to the trace end.
    let trace_end = step_end_ps.last().copied().unwrap_or_else(|| {
        ranks
            .iter()
            .flat_map(|b| b.iter().map(|r| r.at_ps))
            .max()
            .unwrap_or(0)
    });
    struct MsgFlight {
        posted: u64,
        src: usize,
        dst: usize,
        delivered: Option<u64>,
    }
    let mut flights: BTreeMap<u64, MsgFlight> = BTreeMap::new();
    for (rank, buf) in ranks.iter().enumerate() {
        for r in buf {
            match &r.event {
                Event::MsgPosted { msg, peer, .. } => {
                    flights.insert(
                        *msg,
                        MsgFlight {
                            posted: r.at_ps,
                            src: rank,
                            dst: *peer,
                            delivered: None,
                        },
                    );
                }
                Event::MsgDelivered { msg, .. } => {
                    if let Some(f) = flights.get_mut(msg) {
                        f.delivered = Some(r.at_ps);
                    }
                }
                _ => {}
            }
        }
    }
    let mut comm_ivs: Vec<Vec<Iv>> = vec![Vec::new(); n_ranks];
    for f in flights.values() {
        let end = f.delivered.unwrap_or(trace_end).max(f.posted);
        if end > f.posted {
            if f.src < n_ranks {
                comm_ivs[f.src].push((f.posted, end));
            }
            if f.dst < n_ranks && f.dst != f.src {
                comm_ivs[f.dst].push((f.posted, end));
            }
        }
    }

    // -- Kernel unions and span lists per rank.
    let all_spans: Vec<Vec<Span>> = ranks.iter().map(|b| spans_of(b)).collect();
    let kernel_ivs: Vec<Vec<Iv>> = all_spans
        .iter()
        .map(|spans| {
            normalize(
                spans
                    .iter()
                    .filter(|s| s.kind == "kernel")
                    .map(|s| (s.start, s.end))
                    .collect(),
            )
        })
        .collect();
    let comm_ivs: Vec<Vec<Iv>> = comm_ivs.into_iter().map(normalize).collect();

    // -- Phase split per (step, rank), exact integer partition.
    let mut breakdowns = Vec::with_capacity(n_steps * n_ranks);
    for (s, &end) in step_end_ps.iter().enumerate() {
        let start = if s == 0 { 0 } else { step_end_ps[s - 1] };
        let window = end.saturating_sub(start);
        for rank in 0..n_ranks {
            let k = clip(&kernel_ivs[rank], start, end);
            let c = clip(&comm_ivs[rank], start, end);
            let kc = intersect(&k, &c);
            let (tk, tc, tkc) = (total(&k), total(&c), total(&kc));
            breakdowns.push(PhaseBreakdown {
                step: s,
                rank,
                window_ps: window,
                compute_ps: tk - tkc,
                hidden_ps: tkc,
                exposed_ps: tc - tkc,
                idle_ps: window - (tk + tc - tkc),
            });
        }
    }

    // -- Overlap efficiency over the whole run.
    let (hidden, exposed) = breakdowns
        .iter()
        .fold((0u64, 0u64), |a, b| (a.0 + b.hidden_ps, a.1 + b.exposed_ps));
    let overlap_efficiency = if hidden + exposed == 0 {
        1.0
    } else {
        hidden as f64 / (hidden + exposed) as f64
    };

    // -- Critical path: greedy backward walk from the last barrier.
    let mut critical_path = Vec::new();
    if trace_end > 0 && n_ranks > 0 {
        // Start on the rank whose final barrier is latest.
        let mut rank = ranks
            .iter()
            .enumerate()
            .max_by_key(|(_, buf)| {
                buf.iter()
                    .filter_map(|r| match r.event {
                        Event::Barrier { .. } => Some(r.at_ps),
                        _ => None,
                    })
                    .max()
                    .unwrap_or(0)
            })
            .map_or(0, |(r, _)| r);
        let mut t = trace_end;
        for _ in 0..100_000 {
            // Latest-ending span on `rank` ending at or before `t`.
            let span = all_spans[rank]
                .iter()
                .filter(|s| s.end <= t && s.end > s.start)
                .max_by_key(|s| s.end);
            // Latest message delivered to `rank` at or before `t`.
            let msg = flights
                .iter()
                .filter(|(_, f)| f.dst == rank)
                .filter_map(|(id, f)| f.delivered.filter(|&d| d <= t).map(|d| (id, f, d)))
                .max_by_key(|&(_, _, d)| d);
            let span_end = span.map_or(0, |s| s.end);
            let msg_end = msg.map_or(0, |m| m.2);
            if span_end == 0 && msg_end == 0 {
                break;
            }
            if span_end >= msg_end {
                let s = span.expect("span_end > 0 implies a span");
                critical_path.push(CritPathEntry {
                    rank,
                    kind: s.kind,
                    start_ps: s.start,
                    end_ps: s.end,
                    detail: format!("patch {}", s.patch),
                });
                if s.start >= t {
                    break; // no progress; malformed trace
                }
                t = s.start;
            } else {
                let (id, f, d) = msg.expect("msg_end > 0 implies a message");
                critical_path.push(CritPathEntry {
                    rank: f.src,
                    kind: "msg",
                    start_ps: f.posted,
                    end_ps: d,
                    detail: format!("msg {id} {}->{}", f.src, f.dst),
                });
                if f.posted >= t {
                    break;
                }
                t = f.posted;
                rank = f.src;
            }
        }
        critical_path.reverse();
    }

    PhaseReport {
        n_ranks,
        step_end_ps,
        breakdowns,
        overlap_efficiency,
        critical_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_ps: u64, lane: Lane, event: Event) -> EventRecord {
        EventRecord {
            at_ps,
            wall_ns: None,
            lane,
            event,
        }
    }

    #[test]
    fn interval_algebra() {
        let u = normalize(vec![(5, 10), (0, 3), (9, 12), (12, 12)]);
        assert_eq!(u, vec![(0, 3), (5, 12)]);
        assert_eq!(total(&u), 10);
        let v = normalize(vec![(2, 6), (11, 20)]);
        assert_eq!(intersect(&u, &v), vec![(2, 3), (5, 6), (11, 12)]);
        assert_eq!(clip(&u, 1, 6), vec![(1, 3), (5, 6)]);
    }

    /// One rank: kernel [10,60), message in flight [40,80), step ends at 100.
    /// compute = [10,40) = 30, hidden = [40,60) = 20, exposed = [60,80) = 20,
    /// idle = [0,10) + [80,100) = 30.
    #[test]
    fn four_way_partition_is_exact() {
        let ranks = vec![
            vec![
                rec(10, Lane::Cpe(0), Event::OffloadStart { patch: 0, token: 1 }),
                rec(
                    40,
                    Lane::Mpe,
                    Event::MsgPosted {
                        msg: 1,
                        peer: 1,
                        tag: 0,
                        bytes: 64,
                        eager: true,
                    },
                ),
                rec(60, Lane::Cpe(0), Event::OffloadDone { patch: 0, token: 1 }),
                rec(100, Lane::Mpe, Event::Barrier { step: 0 }),
            ],
            vec![
                rec(
                    80,
                    Lane::Mpe,
                    Event::MsgDelivered {
                        msg: 1,
                        peer: 0,
                        tag: 0,
                        bytes: 64,
                    },
                ),
                rec(100, Lane::Mpe, Event::Barrier { step: 0 }),
            ],
        ];
        let rep = analyze(&ranks);
        assert_eq!(rep.step_end_ps, vec![100]);
        let b0 = &rep.breakdowns[0];
        assert_eq!(
            (b0.compute_ps, b0.hidden_ps, b0.exposed_ps, b0.idle_ps),
            (30, 20, 20, 30)
        );
        assert_eq!(b0.sum_ps(), b0.window_ps);
        // Rank 1 sees the same flight but runs no kernel: all exposed.
        let b1 = &rep.breakdowns[1];
        assert_eq!(
            (b1.compute_ps, b1.hidden_ps, b1.exposed_ps, b1.idle_ps),
            (0, 0, 40, 60)
        );
        // Efficiency: hidden 20 vs exposed 60 total.
        assert!((rep.overlap_efficiency - 20.0 / 80.0).abs() < 1e-12);
        assert!(!rep.critical_path.is_empty());
    }

    #[test]
    fn no_comm_means_perfect_efficiency() {
        let ranks = vec![vec![
            rec(0, Lane::Cpe(0), Event::OffloadStart { patch: 0, token: 1 }),
            rec(50, Lane::Cpe(0), Event::OffloadDone { patch: 0, token: 1 }),
            rec(50, Lane::Mpe, Event::Barrier { step: 0 }),
        ]];
        let rep = analyze(&ranks);
        assert_eq!(rep.overlap_efficiency, 1.0);
        let b = &rep.breakdowns[0];
        assert_eq!((b.compute_ps, b.idle_ps), (50, 0));
    }

    #[test]
    fn critical_path_hops_across_ranks() {
        // Rank 1's final kernel depends on a message from rank 0, which
        // depends on rank 0's kernel.
        let ranks = vec![
            vec![
                rec(0, Lane::Cpe(0), Event::OffloadStart { patch: 0, token: 1 }),
                rec(30, Lane::Cpe(0), Event::OffloadDone { patch: 0, token: 1 }),
                rec(
                    30,
                    Lane::Mpe,
                    Event::MsgPosted {
                        msg: 5,
                        peer: 1,
                        tag: 0,
                        bytes: 64,
                        eager: true,
                    },
                ),
                rec(60, Lane::Mpe, Event::Barrier { step: 0 }),
            ],
            vec![
                rec(
                    50,
                    Lane::Mpe,
                    Event::MsgDelivered {
                        msg: 5,
                        peer: 0,
                        tag: 0,
                        bytes: 64,
                    },
                ),
                rec(50, Lane::Cpe(0), Event::OffloadStart { patch: 1, token: 2 }),
                rec(90, Lane::Cpe(0), Event::OffloadDone { patch: 1, token: 2 }),
                rec(90, Lane::Mpe, Event::Barrier { step: 0 }),
            ],
        ];
        let rep = analyze(&ranks);
        let kinds: Vec<&str> = rep.critical_path.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["kernel", "msg", "kernel"]);
        assert_eq!(rep.critical_path[0].rank, 0);
        assert_eq!(rep.critical_path[2].rank, 1);
    }
}
