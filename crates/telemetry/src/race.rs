//! Vector-clock happens-before reconstruction and race detection over
//! recorded event traces (FastTrack-style, adapted to the simulator's
//! structured events).
//!
//! The trace model: each rank's buffer is appended by that rank's single
//! logical thread, so **buffer order is a valid program-order
//! linearization per rank**; lanes split it into logical threads. The
//! happens-before relation is rebuilt from exactly four edge families:
//!
//! * **program order** per `(rank, lane)` thread;
//! * **fork/join** — `OffloadStart` inherits the MPE's clock (the MPE
//!   spawned the kernel at that buffer position) and `OffloadDone` joins
//!   the CPE clock back into the MPE (it is recorded at the harvest
//!   point);
//! * **message edges** — `MsgPosted(msg)` on the source happens before
//!   `MsgDelivered(msg)` on the destination (matched by the
//!   communicator's globally unique message id);
//! * **reduction edges** — every `ReduceContribute(step)` happens before
//!   every `ReduceDone(step)` (the allreduce hub folds all contributions
//!   before any rank observes the result).
//!
//! Everything else (`Barrier`, `Idle`, wire bookkeeping, rendezvous
//! control packets) is deliberately *not* a synchronization edge: fewer
//! assumed edges make the detector stricter. Data accesses are not
//! inferred here — the runtime-specific mapping from events to warehouse
//! accesses lives in `uintah-core` — callers hand [`AccessSpan`]s to
//! [`TraceHb::check`], which verifies every conflicting pair on a shared
//! resource is ordered by the reconstructed happens-before.

use std::collections::BTreeMap;

use crate::event::{Event, EventRecord, Lane};

/// A vector clock: one component per `(rank, lane)` thread of the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    fn zero(n: usize) -> Self {
        VectorClock(vec![0; n])
    }

    fn join(&mut self, other: &VectorClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    fn tick(&mut self, thread: usize) {
        self.0[thread] += 1;
    }

    /// Pointwise `self <= other`: every component at most the other's.
    pub fn le(&self, other: &VectorClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }
}

/// Read or write, for conflict classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// The span only reads the resource.
    Read,
    /// The span writes (or reads and writes) the resource.
    Write,
}

/// One data access attributed to a span of trace events: the resource is
/// accessed somewhere between the start event and the end event
/// (inclusive) of one `(rank, lane)` thread.
#[derive(Debug, Clone)]
pub struct AccessSpan {
    /// Rank whose buffer holds the span.
    pub rank: usize,
    /// Buffer index of the first event of the span.
    pub start: usize,
    /// Buffer index of the last event of the span (>= `start`).
    pub end: usize,
    /// Opaque resource key (the caller's encoding of variable identity);
    /// only accesses with equal keys can conflict.
    pub resource: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Human-readable description for diagnostics.
    pub what: String,
}

/// One unordered conflicting pair.
#[derive(Debug, Clone)]
pub struct RaceFinding {
    /// Resource key both spans touch.
    pub resource: u64,
    /// Description of the first access.
    pub a: String,
    /// Description of the second access.
    pub b: String,
}

/// Result of checking a set of access spans against the trace's
/// happens-before relation.
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// Access spans examined.
    pub accesses: usize,
    /// Conflicting same-resource pairs compared.
    pub pairs_checked: u64,
    /// Unordered conflicting pairs — empty on a clean trace.
    pub races: Vec<RaceFinding>,
}

/// The reconstructed happens-before relation of one trace snapshot.
pub struct TraceHb {
    /// Per-rank, per-event clocks, parallel to the snapshot's buffers.
    clocks: Vec<Vec<VectorClock>>,
    /// Thread index per `(rank, lane-tid)`.
    threads: BTreeMap<(usize, u64), usize>,
    /// `MsgPosted -> MsgDelivered` edges honored, as `(msg, src, dst)`.
    pub msg_edges: Vec<(u64, usize, usize)>,
    /// `ReduceContribute -> ReduceDone` joins honored.
    pub reduce_edges: usize,
    /// Structural defects: deliveries with no recorded post, reductions
    /// completed with missing contributions. Non-empty means the trace
    /// itself (not just a schedule) is suspect.
    pub errors: Vec<String>,
}

impl TraceHb {
    /// The clock assigned to event `idx` of `rank`'s buffer.
    pub fn clock(&self, rank: usize, idx: usize) -> &VectorClock {
        &self.clocks[rank][idx]
    }

    /// Number of logical threads discovered.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// Total events the relation covers.
    pub fn n_events(&self) -> usize {
        self.clocks.iter().map(Vec::len).sum()
    }

    /// Whether event `(r1, i1)` happens before `(r2, i2)`.
    pub fn ordered(&self, r1: usize, i1: usize, r2: usize, i2: usize) -> bool {
        self.clocks[r1][i1].le(&self.clocks[r2][i2])
    }

    /// Check every conflicting pair of spans (same resource, at least one
    /// write, different threads) is ordered: the whole of one span must
    /// happen before the start of the other.
    pub fn check(&self, spans: &[AccessSpan], lanes: &[Vec<Lane>]) -> RaceReport {
        let mut by_resource: BTreeMap<u64, Vec<&AccessSpan>> = BTreeMap::new();
        for s in spans {
            by_resource.entry(s.resource).or_default().push(s);
        }
        let mut report = RaceReport {
            accesses: spans.len(),
            ..RaceReport::default()
        };
        let thread_of = |s: &AccessSpan| (s.rank, lanes[s.rank][s.start].tid());
        for group in by_resource.values() {
            for (i, a) in group.iter().enumerate() {
                for b in &group[i + 1..] {
                    if a.kind == AccessKind::Read && b.kind == AccessKind::Read {
                        continue;
                    }
                    if thread_of(a) == thread_of(b) {
                        continue; // program order
                    }
                    report.pairs_checked += 1;
                    let a_first = self.clocks[a.rank][a.end].le(&self.clocks[b.rank][b.start]);
                    let b_first = self.clocks[b.rank][b.end].le(&self.clocks[a.rank][a.start]);
                    if !a_first && !b_first {
                        report.races.push(RaceFinding {
                            resource: a.resource,
                            a: a.what.clone(),
                            b: b.what.clone(),
                        });
                    }
                }
            }
        }
        report
    }
}

/// Per-rank cursor state of the fixpoint pass.
struct RankState {
    pos: usize,
    mpe: VectorClock,
    cpe: BTreeMap<u64, VectorClock>,
    prog: VectorClock,
    wire: VectorClock,
}

/// Reconstruct the happens-before relation of a recorder snapshot.
///
/// Buffers are consumed in order, round-robin across ranks; an event
/// needing a cross-rank input that has not been produced yet (a delivery
/// whose post is further down another rank's buffer, a reduction
/// completion whose contributions are still pending) parks its rank until
/// the input appears. A causal trace always drains; a defective one
/// (delivery without post, reduction completed with missing
/// contributions) is drained anyway with the defect recorded in
/// [`TraceHb::errors`].
pub fn trace_hb(snapshot: &[Vec<EventRecord>]) -> TraceHb {
    let n_ranks = snapshot.len();
    // Pre-pass: number the threads.
    let mut threads = BTreeMap::new();
    for (r, buf) in snapshot.iter().enumerate() {
        for rec in buf {
            let next = threads.len();
            threads.entry((r, rec.lane.tid())).or_insert(next);
        }
    }
    let nt = threads.len();
    let mut states: Vec<RankState> = (0..n_ranks)
        .map(|_| RankState {
            pos: 0,
            mpe: VectorClock::zero(nt),
            cpe: BTreeMap::new(),
            prog: VectorClock::zero(nt),
            wire: VectorClock::zero(nt),
        })
        .collect();
    let mut clocks: Vec<Vec<VectorClock>> = snapshot
        .iter()
        .map(|b| Vec::with_capacity(b.len()))
        .collect();
    let mut posted: BTreeMap<u64, (usize, VectorClock)> = BTreeMap::new();
    let mut contribs: BTreeMap<usize, (usize, VectorClock)> = BTreeMap::new();
    let mut msg_edges = Vec::new();
    let mut reduce_edges = 0usize;
    let mut errors = Vec::new();
    // `force` releases parked ranks after a no-progress round.
    let mut force = false;
    loop {
        let mut progressed = false;
        for r in 0..n_ranks {
            while states[r].pos < snapshot[r].len() {
                let idx = states[r].pos;
                let rec = &snapshot[r][idx];
                let tid = threads[&(r, rec.lane.tid())];
                // Park on unavailable cross-rank inputs (unless forced).
                match &rec.event {
                    Event::MsgDelivered { msg, .. } if !posted.contains_key(msg) && !force => break,
                    Event::ReduceDone { step } => {
                        let have = contribs.get(step).map_or(0, |(n, _)| *n);
                        if have < n_ranks && !force {
                            break;
                        }
                    }
                    _ => {}
                }
                let st = &mut states[r];
                let vc = match (&rec.event, rec.lane) {
                    (Event::OffloadStart { .. }, Lane::Cpe(k)) => {
                        // Fork: the kernel starts with everything the MPE
                        // has seen at the spawn point.
                        let mpe = st.mpe.clone();
                        let cpe = st.cpe.entry(u64::from(k)).or_insert_with(|| mpe.clone());
                        cpe.join(&mpe);
                        cpe.tick(tid);
                        cpe.clone()
                    }
                    (Event::OffloadDone { .. }, Lane::Cpe(k)) => {
                        // Join: recorded at the harvest point, so the MPE
                        // has observed completion from here on.
                        let cpe = st.cpe.entry(u64::from(k)).or_insert_with(|| {
                            VectorClock::zero(nt) // done without start: still a thread
                        });
                        cpe.tick(tid);
                        let done = cpe.clone();
                        st.mpe.join(&done);
                        done
                    }
                    (_, Lane::Cpe(k)) => {
                        // DMA windows and other CPE-lane bookkeeping:
                        // program order within the kernel span.
                        let cpe = st
                            .cpe
                            .entry(u64::from(k))
                            .or_insert_with(|| VectorClock::zero(nt));
                        cpe.tick(tid);
                        cpe.clone()
                    }
                    (_, Lane::Wire) => {
                        // Wire bookkeeping is recorded by the MPE thread;
                        // it synchronizes nothing itself (delivery edges
                        // come from MsgPosted/MsgDelivered).
                        st.wire.join(&st.mpe);
                        st.wire.tick(tid);
                        st.wire.clone()
                    }
                    (Event::MsgDelivered { msg, .. }, Lane::Progress) => {
                        // Dedicated-progress-lane delivery: the message edge
                        // lands on the progress thread, and the completion
                        // joins into the MPE (the model makes it visible to
                        // the host from this point on — the next recv poll
                        // observes it).
                        if let Some((src, pvc)) = posted.get(msg) {
                            st.prog.join(pvc);
                            msg_edges.push((*msg, *src, r));
                        } else {
                            errors.push(format!(
                                "rank {r}: MsgDelivered(msg {msg}) with no recorded MsgPosted"
                            ));
                        }
                        st.prog.tick(tid);
                        st.mpe.join(&st.prog);
                        st.prog.clone()
                    }
                    (_, Lane::Progress) => {
                        // Other progress-lane protocol actions: program
                        // order on the progress thread only.
                        st.prog.tick(tid);
                        st.prog.clone()
                    }
                    (Event::MsgPosted { msg, peer, .. }, _) => {
                        st.mpe.tick(tid);
                        posted.insert(*msg, (r, st.mpe.clone()));
                        let _ = peer;
                        st.mpe.clone()
                    }
                    (Event::MsgDelivered { msg, .. }, _) => {
                        if let Some((src, pvc)) = posted.get(msg) {
                            st.mpe.join(pvc);
                            msg_edges.push((*msg, *src, r));
                        } else {
                            errors.push(format!(
                                "rank {r}: MsgDelivered(msg {msg}) with no recorded MsgPosted"
                            ));
                        }
                        st.mpe.tick(tid);
                        st.mpe.clone()
                    }
                    (Event::ReduceContribute { step }, _) => {
                        st.mpe.tick(tid);
                        let entry = contribs
                            .entry(*step)
                            .or_insert_with(|| (0, VectorClock::zero(nt)));
                        entry.0 += 1;
                        entry.1.join(&st.mpe);
                        st.mpe.clone()
                    }
                    (Event::ReduceDone { step }, _) => {
                        match contribs.get(step) {
                            Some((n, joined)) => {
                                if *n < n_ranks {
                                    errors.push(format!(
                                        "rank {r}: ReduceDone(step {step}) with {n}/{n_ranks} \
                                         contributions recorded"
                                    ));
                                }
                                let joined = joined.clone();
                                st.mpe.join(&joined);
                                reduce_edges += 1;
                            }
                            None => errors.push(format!(
                                "rank {r}: ReduceDone(step {step}) with no contributions"
                            )),
                        }
                        st.mpe.tick(tid);
                        st.mpe.clone()
                    }
                    _ => {
                        // Every other MPE-lane event: program order only.
                        st.mpe.tick(tid);
                        st.mpe.clone()
                    }
                };
                clocks[r].push(vc);
                states[r].pos += 1;
                progressed = true;
                force = false;
            }
        }
        if states
            .iter()
            .enumerate()
            .all(|(r, s)| s.pos >= snapshot[r].len())
        {
            break;
        }
        if !progressed {
            if force {
                // Even forced processing made no progress: impossible, but
                // never loop forever.
                errors.push("trace processing wedged".to_string());
                break;
            }
            force = true;
        }
    }
    TraceHb {
        clocks,
        threads,
        msg_edges,
        reduce_edges,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(lane: Lane, event: Event) -> EventRecord {
        EventRecord {
            at_ps: 0,
            wall_ns: None,
            lane,
            event,
        }
    }

    fn span(rank: usize, start: usize, end: usize, resource: u64, kind: AccessKind) -> AccessSpan {
        AccessSpan {
            rank,
            start,
            end,
            resource,
            kind,
            what: format!("r{rank}[{start}..{end}] res {resource}"),
        }
    }

    fn lanes(snap: &[Vec<EventRecord>]) -> Vec<Vec<Lane>> {
        snap.iter()
            .map(|b| b.iter().map(|r| r.lane).collect())
            .collect()
    }

    #[test]
    fn message_edge_orders_cross_rank_accesses() {
        // Rank 0 writes then posts; rank 1 delivers then reads: ordered.
        let snap = vec![
            vec![
                rec(Lane::Mpe, Event::TaskStart { patch: 0, stage: 0 }),
                rec(Lane::Mpe, Event::TaskEnd { patch: 0, stage: 0 }),
                rec(
                    Lane::Mpe,
                    Event::MsgPosted {
                        msg: 7,
                        peer: 1,
                        tag: 0,
                        bytes: 8,
                        eager: true,
                    },
                ),
            ],
            vec![
                rec(
                    Lane::Mpe,
                    Event::MsgDelivered {
                        msg: 7,
                        peer: 0,
                        tag: 0,
                        bytes: 8,
                    },
                ),
                rec(Lane::Mpe, Event::TaskStart { patch: 1, stage: 0 }),
            ],
        ];
        let hb = trace_hb(&snap);
        assert!(hb.errors.is_empty(), "{:?}", hb.errors);
        assert_eq!(hb.msg_edges, vec![(7, 0, 1)]);
        assert!(hb.ordered(0, 2, 1, 0), "post happens before delivery");
        assert!(!hb.ordered(1, 0, 0, 2), "not the other way around");
        let spans = [
            span(0, 0, 1, 42, AccessKind::Write),
            span(1, 1, 1, 42, AccessKind::Read),
        ];
        let report = hb.check(&spans, &lanes(&snap));
        assert_eq!(report.pairs_checked, 1);
        assert!(report.races.is_empty(), "{:?}", report.races);
    }

    #[test]
    fn unordered_conflicting_writes_race() {
        // Two ranks write the same resource with no connecting edge.
        let snap = vec![
            vec![rec(Lane::Mpe, Event::TaskStart { patch: 0, stage: 0 })],
            vec![rec(Lane::Mpe, Event::TaskStart { patch: 1, stage: 0 })],
        ];
        let hb = trace_hb(&snap);
        let spans = [
            span(0, 0, 0, 5, AccessKind::Write),
            span(1, 0, 0, 5, AccessKind::Write),
        ];
        let report = hb.check(&spans, &lanes(&snap));
        assert_eq!(report.races.len(), 1);
        assert_eq!(report.races[0].resource, 5);
        // Read/read never conflicts; different resources never conflict.
        let ok = [
            span(0, 0, 0, 5, AccessKind::Read),
            span(1, 0, 0, 5, AccessKind::Read),
            span(1, 0, 0, 6, AccessKind::Write),
        ];
        assert!(hb.check(&ok, &lanes(&snap)).races.is_empty());
    }

    #[test]
    fn fork_join_orders_kernel_against_harvested_mpe_work() {
        let snap = vec![vec![
            rec(Lane::Mpe, Event::TaskStart { patch: 0, stage: 0 }), // 0: prep
            rec(Lane::Mpe, Event::TaskEnd { patch: 0, stage: 0 }),   // 1
            rec(Lane::Cpe(0), Event::OffloadStart { patch: 0, token: 1 }), // 2: fork
            rec(Lane::Mpe, Event::ProgressCall { actions: 0 }),      // 3: concurrent MPE
            rec(Lane::Cpe(0), Event::OffloadDone { patch: 0, token: 1 }), // 4: join
            rec(Lane::Mpe, Event::TaskStart { patch: 0, stage: 1 }), // 5: after harvest
        ]];
        let hb = trace_hb(&snap);
        assert!(hb.ordered(0, 1, 0, 2), "prep before kernel start");
        assert!(hb.ordered(0, 4, 0, 5), "kernel done before next prep");
        assert!(
            !hb.ordered(0, 3, 0, 4) || hb.ordered(0, 3, 0, 4),
            "smoke: comparison total"
        );
        // The concurrent MPE progress call is NOT ordered with the kernel
        // span in either direction.
        assert!(!hb.ordered(0, 2, 0, 3) && !hb.ordered(0, 3, 0, 2));
        // An unordered kernel-vs-MPE write pair on one rank is caught.
        let snap_lanes = lanes(&snap);
        let racy = [
            span(0, 2, 4, 9, AccessKind::Write), // kernel span
            {
                let mut s = span(0, 3, 3, 9, AccessKind::Write); // MPE during kernel
                s.what = "mpe progress write".into();
                s
            },
        ];
        assert_eq!(hb.check(&racy, &snap_lanes).races.len(), 1);
        // Ordered prep-vs-kernel pair is clean.
        let clean = [
            span(0, 0, 1, 9, AccessKind::Write),
            span(0, 2, 4, 9, AccessKind::Read),
        ];
        assert!(hb.check(&clean, &snap_lanes).races.is_empty());
    }

    #[test]
    fn reduction_joins_all_contributions() {
        let snap = vec![
            vec![
                rec(Lane::Mpe, Event::ReduceContribute { step: 0 }),
                rec(Lane::Mpe, Event::ReduceDone { step: 0 }),
            ],
            vec![
                rec(Lane::Mpe, Event::ReduceContribute { step: 0 }),
                rec(Lane::Mpe, Event::ReduceDone { step: 0 }),
            ],
        ];
        let hb = trace_hb(&snap);
        assert!(hb.errors.is_empty(), "{:?}", hb.errors);
        assert_eq!(hb.reduce_edges, 2);
        assert!(hb.ordered(0, 0, 1, 1), "contribute before the other's done");
        assert!(hb.ordered(1, 0, 0, 1));
    }

    #[test]
    fn delivery_without_post_is_a_structural_error() {
        let snap = vec![vec![rec(
            Lane::Mpe,
            Event::MsgDelivered {
                msg: 99,
                peer: 1,
                tag: 0,
                bytes: 8,
            },
        )]];
        let hb = trace_hb(&snap);
        assert_eq!(hb.errors.len(), 1);
        assert!(hb.errors[0].contains("msg 99"), "{}", hb.errors[0]);
        assert_eq!(hb.n_events(), 1, "the trace still drains");
    }
}
