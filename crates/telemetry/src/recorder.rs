//! The zero-cost-when-disabled event recorder.
//!
//! A [`Recorder`] is a cheap clonable handle. Disabled (the default and
//! [`Recorder::off`]), it holds `None` and every [`Recorder::record`] call
//! is a single branch — no allocation, no atomics, no time query (the
//! counting-allocator test in `tests/alloc_count.rs` proves the allocation
//! half). Enabled, it appends to a per-rank `Mutex<Vec<EventRecord>>`
//! buffer; per-rank locks never contend in the single-threaded simulator
//! and stay correct under the functional-mode worker pool.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Event, EventRecord, Lane};
use crate::metrics::Metrics;

#[derive(Debug)]
struct Inner {
    /// Per-rank append buffers.
    buf: Vec<Mutex<Vec<EventRecord>>>,
    /// Always-on counters/histograms.
    metrics: Metrics,
    /// Wall-clock epoch; `Some` when wall-clock capture is on.
    epoch: Option<Instant>,
}

/// Handle to the telemetry sink. `Default`/[`Recorder::off`] is disabled.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A disabled recorder: recording is a branch-only no-op.
    pub fn off() -> Self {
        Recorder { inner: None }
    }

    /// An enabled recorder with one buffer per rank, virtual time only.
    pub fn new(n_ranks: usize) -> Self {
        Self::build(n_ranks, false)
    }

    /// An enabled recorder that additionally stamps each event with host
    /// wall-clock nanoseconds since creation (functional mode).
    pub fn with_wall_clock(n_ranks: usize) -> Self {
        Self::build(n_ranks, true)
    }

    fn build(n_ranks: usize, wall: bool) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                buf: (0..n_ranks).map(|_| Mutex::new(Vec::new())).collect(),
                metrics: Metrics::default(),
                epoch: wall.then(Instant::now),
            })),
        }
    }

    /// Whether events are being captured.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of rank buffers (0 when disabled).
    pub fn n_ranks(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.buf.len())
    }

    /// Record `event` on `lane` of `rank` at virtual time `at_ps`
    /// (picoseconds, `sw_sim::SimTime.0`). No-op when disabled. Events for
    /// ranks beyond the buffer count are dropped (callers created the
    /// recorder with the world size, so this only happens in tests).
    #[inline]
    pub fn record(&self, rank: usize, at_ps: u64, lane: Lane, event: Event) {
        let Some(inner) = &self.inner else { return };
        let Some(buf) = inner.buf.get(rank) else {
            return;
        };
        let wall_ns = inner
            .epoch
            .map(|e| u64::try_from(e.elapsed().as_nanos()).unwrap_or(u64::MAX));
        buf.lock()
            .expect("telemetry buffer poisoned")
            .push(EventRecord {
                at_ps,
                wall_ns,
                lane,
                event,
            });
    }

    /// The metrics registry, when enabled.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.inner.as_deref().map(|i| &i.metrics)
    }

    /// Snapshot all per-rank buffers (clones; recording may continue).
    /// Empty when disabled.
    pub fn snapshot(&self) -> Vec<Vec<EventRecord>> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .buf
                .iter()
                .map(|m| m.lock().expect("telemetry buffer poisoned").clone())
                .collect(),
        }
    }

    /// Total events captured across all ranks.
    pub fn len(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => inner
                .buf
                .iter()
                .map(|m| m.lock().expect("telemetry buffer poisoned").len())
                .sum(),
        }
    }

    /// True when no events have been captured (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_drops_everything() {
        let r = Recorder::off();
        assert!(!r.is_enabled());
        r.record(0, 10, Lane::Mpe, Event::Mark { tag: "x" });
        assert!(r.is_empty());
        assert!(r.snapshot().is_empty());
        assert!(r.metrics().is_none());
    }

    #[test]
    fn enabled_recorder_buffers_per_rank() {
        let r = Recorder::new(2);
        assert!(r.is_enabled());
        assert_eq!(r.n_ranks(), 2);
        r.record(0, 5, Lane::Mpe, Event::Mark { tag: "a" });
        r.record(1, 7, Lane::Cpe(0), Event::Mark { tag: "b" });
        r.record(9, 1, Lane::Mpe, Event::Mark { tag: "dropped" });
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].len(), 1);
        assert_eq!(snap[0][0].at_ps, 5);
        assert_eq!(snap[0][0].wall_ns, None);
        assert_eq!(snap[1][0].lane, Lane::Cpe(0));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn clones_share_the_sink() {
        let r = Recorder::new(1);
        let r2 = r.clone();
        r2.record(0, 1, Lane::Mpe, Event::Mark { tag: "via clone" });
        assert_eq!(r.len(), 1);
        r.metrics().unwrap().offloads.inc();
        assert_eq!(r2.metrics().unwrap().offloads.get(), 1);
    }

    #[test]
    fn wall_clock_stamps_when_requested() {
        let r = Recorder::with_wall_clock(1);
        r.record(0, 1, Lane::Mpe, Event::Mark { tag: "w" });
        let snap = r.snapshot();
        assert!(snap[0][0].wall_ns.is_some());
    }
}
