//! Proof of the "zero-cost-when-disabled" recorder contract: recording
//! through a disabled [`Recorder`] performs **zero** heap allocations —
//! the hot path is a single branch on `Option<Arc<Inner>>`.
//!
//! Uses a counting `#[global_allocator]`, so this file holds exactly one
//! test binary's worth of tests and nothing else runs concurrently with
//! the measurements (same pattern as `sw-athread/tests/alloc_count.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use sw_telemetry::{Event, Lane, Recorder};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed counter bump — the
// layout/ownership contracts of `GlobalAlloc` are delegated unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; the caller upholds `alloc`'s contract.
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` came from the matching `alloc` above, which
        // returned a `System` allocation.
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; the caller upholds `realloc`'s contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation count of `f` on this thread.
fn allocs_of<F: FnMut()>(mut f: F) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn disabled_recorder_is_zero_alloc() {
    let rec = Recorder::off();
    // Record a representative mix of events through the disabled handle:
    // exactly zero allocations, not "few".
    let n = allocs_of(|| {
        for i in 0..10_000u64 {
            rec.record(
                0,
                i,
                Lane::Cpe((i % 8) as u32),
                Event::OffloadStart {
                    patch: i as usize,
                    token: i,
                },
            );
            rec.record(
                0,
                i,
                Lane::Mpe,
                Event::MsgPosted {
                    msg: i,
                    peer: 1,
                    tag: i,
                    bytes: 4096,
                    eager: false,
                },
            );
            rec.record(0, i, Lane::Mpe, Event::Mark { tag: "noop" });
        }
    });
    assert_eq!(
        n, 0,
        "disabled recorder allocated {n} times over 30k record calls; \
         the off path must be branch-only"
    );
    // Cloning a disabled handle is also free (Option<Arc> = None).
    let c = allocs_of(|| {
        for _ in 0..1_000 {
            let r2 = rec.clone();
            std::hint::black_box(&r2);
        }
    });
    assert_eq!(c, 0, "cloning a disabled recorder allocated {c} times");
}

#[test]
fn enabled_recorder_does_allocate_as_a_sanity_check() {
    // The counting allocator sees the enabled path allocate (buffer growth),
    // confirming the harness measures what we think it measures.
    let rec = Recorder::new(1);
    let n = allocs_of(|| {
        for i in 0..1_000u64 {
            rec.record(0, i, Lane::Mpe, Event::Mark { tag: "x" });
        }
    });
    assert!(
        n > 0,
        "enabled recorder recorded 1000 events with 0 allocs?"
    );
}
