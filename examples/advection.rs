//! Linear advection on the runtime: a translating Gaussian bump, tracked
//! against its exact solution, with the load balancers compared on the way.
//!
//! ```text
//! cargo run --release --example advection
//! ```

use std::sync::Arc;

use apps::AdvectionApp;
use uintah_core::grid::iv;
use uintah_core::{ExecMode, Level, LoadBalancer, RunConfig, Simulation, Variant};

fn main() {
    // 32 patches on 8 CGs: enough asymmetry for the balancers to differ.
    let level = Level::new(iv(8, 8, 8), iv(4, 4, 2));
    let steps = 16;

    println!("advection3d: sigma-0.12 Gaussian, velocity (0.8, 0.6, 0.4), {steps} steps\n");
    println!(
        "{:<12} {:>10} {:>12} {:>14} {:>12}",
        "balancer", "messages", "net bytes", "t/step", "Linf err"
    );
    for (name, lb) in [
        ("Block", LoadBalancer::Block),
        ("Morton", LoadBalancer::Morton),
        ("Hilbert", LoadBalancer::Hilbert),
        ("RoundRobin", LoadBalancer::RoundRobin),
    ] {
        let app = Arc::new(AdvectionApp::new(&level));
        let mut cfg = RunConfig::paper(Variant::ACC_ASYNC, ExecMode::Functional, 8);
        cfg.steps = steps;
        cfg.lb = lb;
        let mut sim = Simulation::new(level.clone(), Arc::clone(&app) as _, cfg);
        let report = sim.run();
        let t = sim.final_time();
        let mut linf = 0.0f64;
        for p in 0..level.n_patches() {
            let var = sim.solution(p);
            for c in level.patch(p).region.iter() {
                linf = linf.max((var.get(c) - app.exact_at(&level, c, t)).abs());
            }
        }
        println!(
            "{name:<12} {:>10} {:>12} {:>14} {:>12.3e}",
            report.messages,
            report.net_bytes,
            format!("{}", report.time_per_step()),
            linf
        );
        assert!(linf < 0.3, "upwind error blew up: {linf}");
    }
    println!("\nidentical errors across balancers: partitioning never changes the numerics");
}
