//! Strong-scaling sweep of the Burgers model problem — a compact version of
//! the paper's Fig 5 / Table V for one problem size.
//!
//! ```text
//! cargo run --release --example burgers_scaling [patch, e.g. 32x64x512]
//! ```

use std::sync::Arc;

use burgers::BurgersApp;
use sw_math::ExpKind;
use uintah_core::grid::iv;
use uintah_core::{ExecMode, Level, RunConfig, RunReport, Simulation, Variant};

fn run(patch: (i64, i64, i64), variant: Variant, n_ranks: usize) -> RunReport {
    let level = Level::new(iv(patch.0, patch.1, patch.2), iv(8, 8, 2));
    let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
    let cfg = RunConfig::paper(variant, ExecMode::Model, n_ranks);
    Simulation::new(level, app, cfg).run()
}

fn parse_patch(s: &str) -> Option<(i64, i64, i64)> {
    let mut it = s.split('x').map(|p| p.parse::<i64>().ok());
    match (it.next()??, it.next()??, it.next()??) {
        (x, y, z) if x > 0 && y > 0 && z > 0 => Some((x, y, z)),
        _ => None,
    }
}

fn main() {
    let patch = std::env::args()
        .nth(1)
        .and_then(|s| parse_patch(&s))
        .unwrap_or((32, 64, 512));
    println!(
        "strong scaling, {}x{}x{} patches (8x8x2 layout), 10 steps\n",
        patch.0, patch.1, patch.2
    );
    println!(
        "{:>5} {:>14} {:>14} {:>12} {:>12}",
        "CGs", "sync t/step", "async t/step", "async gain", "sync eff"
    );
    let base = run(patch, Variant::ACC_SIMD_SYNC, 1);
    let mut n = 1;
    while n <= 128 {
        let sync = run(patch, Variant::ACC_SIMD_SYNC, n);
        let asyn = run(patch, Variant::ACC_SIMD_ASYNC, n);
        println!(
            "{n:>5} {:>14} {:>14} {:>11.1}% {:>11.1}%",
            format!("{}", sync.time_per_step()),
            format!("{}", asyn.time_per_step()),
            100.0 * asyn.improvement_over(&sync),
            100.0 * sync.scaling_efficiency(&base),
        );
        n *= 2;
    }
}
