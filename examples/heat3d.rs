//! A second application on the runtime: the 3-D heat equation from the
//! `apps` crate, run through every scheduler variant.
//!
//! The paper's Burgers problem stands in for "many of the equations in the
//! Uintah applications"; `apps::HeatApp` (and `apps::AdvectionApp`) show the
//! runtime is not wired to it — a component provides a tile kernel, a cost
//! model, boundary/initial conditions, and a stable timestep, and gets the
//! full machinery: LDM tiling, CPE offload, ghost exchange, and all
//! scheduler modes. See `crates/apps/src/heat.rs` for the implementation.
//!
//! ```text
//! cargo run --release --example heat3d
//! ```

use std::sync::Arc;

use apps::{heat_exact, HeatApp};
use uintah_core::grid::iv;
use uintah_core::{Application, ExecMode, Level, RunConfig, Simulation, Variant};

fn main() {
    let level = Level::new(iv(16, 16, 16), iv(2, 2, 2));
    let steps = 20;
    println!("heat3d, 32^3 cells on 8 patches / 4 CGs, {steps} steps\n");
    println!(
        "{:<16} {:>14} {:>12} {:>12}",
        "variant", "t/step", "Gflop/s", "Linf err"
    );
    for variant in Variant::TABLE_IV {
        let app = Arc::new(HeatApp::new(&level, 0.05));
        let alpha = app.alpha;
        let mut cfg = RunConfig::paper(variant, ExecMode::Functional, 4);
        cfg.steps = steps;
        let mut sim = Simulation::new(level.clone(), Arc::clone(&app) as _, cfg);
        let report = sim.run();
        let t = steps as f64 * app.stable_dt(&level);
        let mut linf = 0.0f64;
        for p in 0..level.n_patches() {
            let var = sim.solution(p);
            for c in level.patch(p).region.iter() {
                let (x, y, z) = level.cell_center(c);
                linf = linf.max((var.get(c) - heat_exact(alpha, x, y, z, t)).abs());
            }
        }
        println!(
            "{:<16} {:>14} {:>12.2} {:>12.3e}",
            report.variant,
            format!("{}", report.time_per_step()),
            report.gflops(),
            linf
        );
        assert!(linf < 5e-3, "heat solution drifted from the exact mode");
    }
    println!("\nall variants within 5e-3 of the exact decaying mode (bit-identical numerics)");
}
