//! Multi-stage task graphs: the dimensionally-split heat equation runs
//! three dependent tasks per patch per timestep, with a fresh ghost
//! exchange between stages — and still solves the PDE correctly under the
//! asynchronous scheduler.
//!
//! Also prints the task graph of a small decomposition as Graphviz DOT
//! (pipe it into `dot -Tsvg` to render).
//!
//! ```text
//! cargo run --release --example multistage [--dot]
//! ```

use std::sync::Arc;

use apps::{heat_exact, SplitHeatApp};
use uintah_core::grid::iv;
use uintah_core::task::task_graph_dot;
use uintah_core::{ExecMode, Level, LoadBalancer, RunConfig, Simulation, Variant};

fn main() {
    if std::env::args().any(|a| a == "--dot") {
        let level = Level::new(iv(8, 8, 8), iv(2, 2, 1));
        let assignment = LoadBalancer::Hilbert.assign(&level, 2);
        print!("{}", task_graph_dot(&level, &assignment, 3));
        return;
    }

    let level = Level::new(iv(16, 16, 16), iv(2, 2, 2));
    let alpha = 0.05;
    let steps = 12;
    let app = Arc::new(SplitHeatApp::new(&level, alpha));
    let mut cfg = RunConfig::paper(Variant::ACC_ASYNC, ExecMode::Functional, 4);
    cfg.steps = steps;
    let mut sim = Simulation::new(level.clone(), Arc::clone(&app) as _, cfg);
    let report = sim.run();

    let t = sim.final_time();
    let mut linf = 0.0f64;
    for p in 0..level.n_patches() {
        let var = sim.solution(p);
        for c in level.patch(p).region.iter() {
            let (x, y, z) = level.cell_center(c);
            linf = linf.max((var.get(c) - heat_exact(alpha, x, y, z, t)).abs());
        }
    }
    println!(
        "split-heat3d: 3 dependent tasks/patch/step, {} patches, {steps} steps",
        level.n_patches()
    );
    println!(
        "  kernels executed  : {} (3 per patch per step)",
        report.kernels
    );
    println!(
        "  ghost messages    : {} (one exchange per stage)",
        report.messages
    );
    println!(
        "  virtual wall time : {} ({} / step)",
        report.total_time,
        report.time_per_step()
    );
    println!("  Linf error vs heat: {linf:.3e}");
    assert_eq!(report.kernels, 3 * 8 * steps as u64);
    assert!(linf < 2e-3);
    println!("  OK — run with --dot to print this decomposition's task graph");
}
