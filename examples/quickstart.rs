//! Quickstart: run the Burgers model problem on the simulated Sunway
//! machine with the asynchronous scheduler and check the answer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use burgers::{solution_error, BurgersApp};
use sw_math::ExpKind;
use uintah_core::grid::iv;
use uintah_core::{ExecMode, Level, RunConfig, Simulation, Variant};

fn main() {
    // A 32^3 grid split into 2x2x2 patches of 16^3 cells, run functionally
    // (kernels really execute, tile-by-tile through the 64 KB LDM).
    for n in [16i64, 32, 64] {
        let half = n / 2;
        let level = Level::new(iv(half, half, half), iv(2, 2, 2));
        let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
        let mut cfg = RunConfig::paper(Variant::ACC_SIMD_ASYNC, ExecMode::Functional, 4);
        cfg.steps = 10;
        let mut sim = Simulation::new(level, Arc::clone(&app) as _, cfg);
        let report = sim.run();
        let err = solution_error(&sim, &app);

        println!("grid {n}^3  ({} patches on 4 CGs)", sim.level().n_patches());
        println!(
            "  virtual wall time : {} ({} / step)",
            report.total_time,
            report.time_per_step()
        );
        println!(
            "  flops             : {} ({:.1} Gflop/s virtual)",
            report.flops.total(),
            report.gflops()
        );
        println!(
            "  messages          : {} ({} B)",
            report.messages, report.net_bytes
        );
        println!(
            "  error vs exact    : Linf {:.3e}  L2 {:.3e}",
            err.linf, err.l2
        );
    }
}
