//! Compare the five experimental variants of paper Table IV on one problem.
//!
//! Runs the 32x32x512-patch problem (128 patches) on 8 CGs in model mode and
//! prints the per-step wall time, the boost over `host.sync`, and the
//! asynchronous scheduler's improvement — the headline quantities of the
//! paper's §VII.
//!
//! ```text
//! cargo run --release --example scheduler_comparison
//! ```

use std::sync::Arc;

use burgers::BurgersApp;
use sw_math::ExpKind;
use uintah_core::grid::iv;
use uintah_core::{ExecMode, Level, RunConfig, RunReport, Simulation, Variant};

fn run(variant: Variant, n_ranks: usize) -> RunReport {
    let level = Level::new(iv(32, 32, 512), iv(8, 8, 2));
    let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
    let cfg = RunConfig::paper(variant, ExecMode::Model, n_ranks);
    Simulation::new(level, app, cfg).run()
}

fn main() {
    let n_ranks = 8;
    println!("32x32x512 patches, 8x8x2 layout, 10 steps, {n_ranks} CGs\n");
    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>8}",
        "variant", "t/step", "Gflop/s", "vs host", "MPE busy"
    );
    let host = run(Variant::HOST_SYNC, n_ranks);
    let mut reports = vec![];
    for v in Variant::TABLE_IV {
        let r = run(v, n_ranks);
        println!(
            "{:<16} {:>12} {:>12.1} {:>9.2}x {:>7.0}%",
            r.variant,
            format!("{}", r.time_per_step()),
            r.gflops(),
            r.boost_over(&host),
            100.0 * r.mpe_busy.as_secs_f64() / (r.total_time.as_secs_f64() * n_ranks as f64),
        );
        reports.push(r);
    }
    let sync = &reports[1];
    let async_ = &reports[3];
    let simd_sync = &reports[2];
    let simd_async = &reports[4];
    println!(
        "\nasync over sync: {:.1}% (non-vectorized), {:.1}% (vectorized)",
        100.0 * async_.improvement_over(sync),
        100.0 * simd_async.improvement_over(simd_sync),
    );
    println!(
        "the asynchronous scheduler overlaps the MPE's task preparation, ghost \n\
         exchange and reductions with CPE kernels (paper §V-C); the spinning \n\
         synchronous MPE can do none of that."
    );
}
