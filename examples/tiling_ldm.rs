//! How the runtime tiles patches to the 64 KB per-CPE scratchpad.
//!
//! Reproduces the reasoning of paper §VI-A: the Burgers kernel needs one
//! ghost layer, so its tile working set is a ghosted input copy plus an
//! interior output copy; within the 64 KB LDM the chooser picks 16x16x8
//! (41.3 KB) — and with 64 CPEs to feed, the smallest 16x16x512 patch tiles
//! into exactly 64 z-slabs, one per CPE.
//!
//! ```text
//! cargo run --release --example tiling_ldm
//! ```

use sw_athread::{assign_tiles, cells, choose_tile_shape, tiles_of, InOutFootprint, LdmFootprint};

fn main() {
    let fp = InOutFootprint { ghost: 1 };
    let cpes = 64;

    println!("Burgers tile selection (ghost = 1, in + out working set):\n");
    println!(
        "{:>14} {:>12} {:>10} {:>8} {:>14}",
        "patch", "tile", "LDM use", "tiles", "tiles per CPE"
    );
    for patch in [
        (16, 16, 512),
        (32, 32, 512),
        (32, 64, 512),
        (64, 64, 512),
        (128, 128, 512),
    ] {
        let tile = choose_tile_shape(patch, &fp, 64 * 1024, cpes).expect("tile fits");
        let tiles = tiles_of(patch, tile);
        let assign = assign_tiles(&tiles, cpes);
        let per_cpe: Vec<usize> = assign.iter().map(|a| a.len()).collect();
        println!(
            "{:>14} {:>12} {:>7.1}KB {:>8} {:>7}..{:<6}",
            format!("{}x{}x{}", patch.0, patch.1, patch.2),
            format!("{}x{}x{}", tile.0, tile.1, tile.2),
            fp.ldm_bytes(tile) as f64 / 1024.0,
            tiles.len(),
            per_cpe.iter().min().unwrap(),
            per_cpe.iter().max().unwrap(),
        );
    }

    println!("\nSmaller scratchpads force smaller tiles (more ghost overhead):\n");
    println!(
        "{:>10} {:>12} {:>10} {:>14}",
        "LDM", "tile", "use", "ghost overhead"
    );
    for kb in [64, 32, 16, 8] {
        let tile = choose_tile_shape((64, 64, 512), &fp, kb * 1024, cpes).expect("tile fits");
        let interior = cells(tile);
        let ghosted = (tile.0 + 2) as u64 * (tile.1 + 2) as u64 * (tile.2 + 2) as u64;
        println!(
            "{:>8}KB {:>12} {:>7.1}KB {:>13.1}%",
            kb,
            format!("{}x{}x{}", tile.0, tile.1, tile.2),
            fp.ldm_bytes(tile) as f64 / 1024.0,
            100.0 * (ghosted - interior) as f64 / interior as f64,
        );
    }
}
