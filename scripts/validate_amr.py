#!/usr/bin/env python3
"""Validate the `repro amr` output in a results directory.

Checks, failing loudly on any violation:

* AMR.json is well-formed JSON with the expected top-level shape
  (seed, resolution, adaptive, byte_identity, restart, rebalance,
  failures) and the campaign reported zero failed proofs;
* the resolution study ran all three grids (adaptive, uniform_fine,
  uniform_coarse) at one shared dt, and the adaptive run resolved the
  fine-level features with measurably fewer cell updates than the
  uniformly-fine run (< 60%) at essentially the same max error
  (<= 1.1x), while clearly beating the uniformly-coarse grid's error;
* the adaptive run regridded at least twice mid-run, every recompiled
  plan verified clean (verified_clean == recompiles, zero error
  findings, zero lookahead violations), and the fine window stayed a
  proper sub-box of the domain (0 < fine_window_frac < 1);
* every execution-policy identity cell is bit-identical with the same
  regrid history;
* the restart proof resumed from a real mid-run checkpoint, crossed at
  least one regrid boundary, and reconverged byte-identically;
* telemetry-driven rebalancing fired and strictly reduced the weighted
  makespan (gain_frac > 0);
* the checkpoint files on disk (results/amr-ckpt/amr*.ckpt) start with
  the SWCKPT01 magic.

Usage: validate_amr.py <results-dir>
"""

import glob
import json
import os
import sys

RESOLUTION_LABELS = {"adaptive", "uniform_fine", "uniform_coarse"}


def fail(msg: str) -> None:
    print(f"validate_amr: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(results_dir: str) -> None:
    path = os.path.join(results_dir, "AMR.json")
    if not os.path.exists(path):
        fail(f"{path} not found (run `repro amr` first)")
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    for key in (
        "seed",
        "resolution",
        "adaptive",
        "byte_identity",
        "restart",
        "rebalance",
        "failures",
    ):
        if key not in doc:
            fail(f"AMR.json: missing top-level key {key!r}")
    if doc["failures"] != 0:
        fail(f"campaign reported {doc['failures']} failed proof(s)")

    cells = {c["label"]: c for c in doc["resolution"]}
    if set(cells) != RESOLUTION_LABELS:
        fail(f"resolution covers {sorted(cells)}, expected "
             f"{sorted(RESOLUTION_LABELS)}")
    dts = {c["dt"] for c in cells.values()}
    if len(dts) != 1 or min(dts) <= 0:
        fail(f"resolution cells disagree on dt: {sorted(dts)}")
    for label, c in cells.items():
        if c["cell_updates"] <= 0 or c["max_error"] <= 0:
            fail(f"resolution[{label}]: non-positive cell_updates or error")
    ad, fine, coarse = (cells[k] for k in
                        ("adaptive", "uniform_fine", "uniform_coarse"))
    if ad["cell_updates"] >= 0.6 * fine["cell_updates"]:
        fail(f"adaptive spent {ad['cell_updates']} cell updates, "
             f"not measurably fewer than uniform_fine's "
             f"{fine['cell_updates']}")
    if ad["max_error"] > 1.1 * fine["max_error"]:
        fail(f"adaptive error {ad['max_error']:.4e} exceeds 1.1x the "
             f"uniform-fine error {fine['max_error']:.4e}")
    if ad["max_error"] > 0.8 * coarse["max_error"]:
        fail(f"adaptive error {ad['max_error']:.4e} does not clearly beat "
             f"the uniform-coarse error {coarse['max_error']:.4e}")

    a = doc["adaptive"]
    if a["regrids"] < 2:
        fail(f"only {a['regrids']} regrid(s); the run must regrid >= 2 "
             "times mid-run")
    if a["verify_errors"] != 0 or a["lookahead_violations"] != 0:
        fail(f"recompiled plans failed verification: "
             f"{a['verify_errors']} error(s), "
             f"{a['lookahead_violations']} lookahead finding(s)")
    if a["verified_clean"] != a["recompiles"] or a["recompiles"] <= 0:
        fail(f"{a['verified_clean']} of {a['recompiles']} recompiles "
             "verified clean")
    if a["n_levels"] != 2:
        fail(f"adaptive hierarchy has {a['n_levels']} level(s), expected 2")
    if not 0.0 < a["fine_window_frac"] < 1.0:
        fail(f"fine window covers {a['fine_window_frac']:.0%} of the "
             "domain — refinement is not selective")

    if len(doc["byte_identity"]) < 3:
        fail("byte_identity must cover at least 3 execution policies")
    for c in doc["byte_identity"]:
        if not c["bit_identical"] or not c["same_regrids"]:
            fail(f"byte_identity[{c['label']}]: adaptive run diverged "
                 "across execution policies")

    r = doc["restart"]
    if r["resumed_step"] <= 0:
        fail(f"restart: resumed_step {r['resumed_step']} is not mid-run")
    if r["ckpt_bytes"] <= 0:
        fail("restart: checkpoint file is empty")
    if r["tail_regrids"] <= 0:
        fail("restart: the resumed run never crossed a regrid boundary — "
             "the proof is vacuous")
    if not r["restart_identical"]:
        fail("restart: restored run diverged from the uninterrupted run")

    rb = doc["rebalance"]
    if rb["rebalances"] <= 0:
        fail("rebalance: the telemetry-driven rebalancer never fired")
    if rb["gain_frac"] <= 0 or \
            rb["rebalanced_makespan_ps"] >= rb["static_makespan_ps"]:
        fail(f"rebalance: weighted makespan {rb['static_makespan_ps']} -> "
             f"{rb['rebalanced_makespan_ps']} ps is not an improvement")

    ckpts = sorted(glob.glob(os.path.join(results_dir, "amr-ckpt",
                                          "amr*.ckpt")))
    if not ckpts:
        fail("no checkpoint files under results/amr-ckpt/")
    with open(ckpts[0], "rb") as f:
        magic = f.read(8)
    if magic != b"SWCKPT01":
        fail(f"{ckpts[0]}: bad checkpoint magic {magic!r}")

    print(
        f"validate_amr: OK: seed {doc['seed']}, adaptive resolved the fine "
        f"features with {ad['cell_updates']} of {fine['cell_updates']} "
        f"uniform-fine cell updates "
        f"({ad['cell_updates'] / fine['cell_updates']:.0%}), "
        f"{a['regrids']} regrids all verified clean, restart from step "
        f"{r['resumed_step']} reconverged, rebalance gain "
        f"{rb['gain_frac']:.1%}, {len(ckpts)} checkpoint file(s)"
    )


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
