#!/usr/bin/env python3
"""Validate the `repro serve` campaign output in a results directory.

The ci.sh campaign stage runs the seeded 64-job demo campaign TWICE with a
persistent cache, capturing CAMPAIGN.json from each run, then (third run)
repeats it under the standard worker-fault preset. This script checks,
failing loudly on any violation:

* both CAMPAIGN.json captures are well-formed, with a `records` array and
  a `service` object of the expected shape;
* run 1 executed every deduplicated job with zero cache hits; run 2
  answered 100% from the cache (hit_rate == 1.0, executed == 0);
* the `records` arrays of the two runs are byte-identical as serialized
  JSON (the determinism contract: latency and hit counters may differ,
  results never);
* every record's key is the 32-hex content hash and distinct records have
  distinct keys (collision discipline);
* exactly-once held in every run: lost == 0 and duplicated == 0;
* the reproducibility oracle sampled cache hits in run 2 and every
  re-execution matched byte-for-byte (checks > 0, passes == checks);
* the dedup path fired (the demo generator repeats its first job);
* the fault-preset run reconciles: deaths injected == deaths detected,
  retries drove recovery (recovered == retries when nothing failed), and
  the records STILL byte-match the calm runs — faults cost retries, never
  answers.

Usage: validate_campaign.py <results-dir>
"""

import json
import os
import re
import sys

SERVICE_KEYS = {
    "workers",
    "submitted",
    "deduped",
    "cache_hits",
    "executed",
    "hit_rate",
    "retries",
    "failed",
    "inline_runs",
    "oracle_checks",
    "oracle_passes",
    "lost",
    "duplicated",
    "p50_latency_us",
    "p99_latency_us",
    "wall_ms",
    "faults",
}

WORKER_FAULT_KEYS = {
    "injected_worker_death",
    "detected_worker",
    "retries_job",
    "recovered_job",
    "workers_blacklisted",
}


def fail(msg: str) -> None:
    print(f"validate_campaign: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    if not os.path.exists(path):
        fail(f"missing {path}")
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path} is not valid JSON: {e}")
    if not isinstance(doc.get("records"), list):
        fail(f"{path}: no records array")
    svc = doc.get("service")
    if not isinstance(svc, dict):
        fail(f"{path}: no service object")
    missing = SERVICE_KEYS - svc.keys()
    if missing:
        fail(f"{path}: service missing keys {sorted(missing)}")
    missing = WORKER_FAULT_KEYS - svc["faults"].keys()
    if missing:
        fail(f"{path}: faults missing keys {sorted(missing)}")
    return doc


def check_records(path: str, doc: dict) -> None:
    keys = set()
    for r in doc["records"]:
        for k in ("idx", "key", "canon", "ok"):
            if k not in r:
                fail(f"{path}: record missing `{k}`: {r}")
        if not re.fullmatch(r"[0-9a-f]{32}", r["key"]):
            fail(f"{path}: record key `{r['key']}` is not 32-hex")
        if r["key"] in keys:
            fail(f"{path}: duplicate record key {r['key']}")
        keys.add(r["key"])
        if r["ok"] and "record" not in r:
            fail(f"{path}: ok record without result bytes: {r}")
        if not r["ok"] and "error" not in r:
            fail(f"{path}: failed record without error detail: {r}")
        if not r["canon"].startswith("level="):
            fail(f"{path}: canon line does not start with level=: {r['canon']}")


def check_exactly_once(path: str, svc: dict) -> None:
    if svc["lost"] != 0:
        fail(f"{path}: {svc['lost']} job(s) lost")
    if svc["duplicated"] != 0:
        fail(f"{path}: {svc['duplicated']} job(s) duplicated")
    if svc["failed"] != 0:
        fail(f"{path}: {svc['failed']} job(s) failed")
    if svc["oracle_passes"] != svc["oracle_checks"]:
        fail(
            f"{path}: oracle mismatch — "
            f"{svc['oracle_passes']}/{svc['oracle_checks']} passes"
        )


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: validate_campaign.py <results-dir>")
    d = sys.argv[1]
    run1 = load(os.path.join(d, "CAMPAIGN_run1.json"))
    run2 = load(os.path.join(d, "CAMPAIGN_run2.json"))
    faulted = load(os.path.join(d, "CAMPAIGN_faulted.json"))

    for path, doc in (("run1", run1), ("run2", run2), ("faulted", faulted)):
        check_records(path, doc)
        check_exactly_once(path, doc["service"])

    s1, s2, sf = run1["service"], run2["service"], faulted["service"]

    # Run 1: cold cache — everything executed, dedup fired.
    if s1["cache_hits"] != 0:
        fail(f"run1: cold cache reported {s1['cache_hits']} hits")
    if s1["executed"] != len(run1["records"]):
        fail(f"run1: executed {s1['executed']} != {len(run1['records'])} records")
    if s1["deduped"] < 1:
        fail("run1: demo batch did not exercise dedup")
    if s1["submitted"] != s1["deduped"] + len(run1["records"]):
        fail("run1: submitted != deduped + records")

    # Run 2: warm cache — 100% hits, oracle sampled and agreed.
    if s2["executed"] != 0:
        fail(f"run2: warm cache still executed {s2['executed']} job(s)")
    if s2["hit_rate"] != 1.0:
        fail(f"run2: hit_rate {s2['hit_rate']} != 1.0")
    if s2["cache_hits"] != len(run2["records"]):
        fail("run2: cache_hits != records")
    if s2["oracle_checks"] < 1:
        fail("run2: oracle never sampled a cache hit")

    # Determinism contract: the record arrays are byte-identical as
    # serialized JSON (sort-insensitive comparison would mask idx drift).
    r1 = json.dumps(run1["records"], sort_keys=True)
    r2 = json.dumps(run2["records"], sort_keys=True)
    if r1 != r2:
        fail("run1 and run2 records differ — cache replay is not byte-stable")

    # Faulted run: every injected death detected, retries recovered, and
    # the answers still byte-match the calm runs.
    fc = sf["faults"]
    if fc["injected_worker_death"] < 1:
        fail("faulted: standard preset injected no worker deaths over 64 jobs")
    if fc["detected_worker"] != fc["injected_worker_death"]:
        fail(
            f"faulted: {fc['injected_worker_death']} death(s) injected but "
            f"{fc['detected_worker']} detected"
        )
    if fc["retries_job"] != sf["retries"]:
        fail("faulted: resilience retries_job disagrees with service retries")
    if fc["recovered_job"] != fc["retries_job"]:
        fail(
            f"faulted: {fc['retries_job']} retried but {fc['recovered_job']} "
            "recovered (and nothing failed)"
        )
    rf = json.dumps(faulted["records"], sort_keys=True)
    if rf != r1:
        fail("faulted records differ from calm records — faults changed answers")

    print(
        "validate_campaign: OK "
        f"(jobs {len(run1['records'])}, deduped {s1['deduped']}, "
        f"run2 hit rate {s2['hit_rate']}, oracle {s2['oracle_passes']}/"
        f"{s2['oracle_checks']}, faulted deaths {fc['injected_worker_death']} "
        f"retries {fc['retries_job']} recovered {fc['recovered_job']})"
    )


if __name__ == "__main__":
    main()
