#!/usr/bin/env python3
"""Validate the `repro check` output in a results directory.

Checks, failing loudly on any violation:

* CHECK.json is well-formed JSON and all three analyses actually ran:
  the `static`, `dynamic`, and `dpor` sections are present and
  non-empty — a campaign that skipped one is vacuous;
* static: every proved configuration is safe (all_safe), and the
  deliberate unsafe-lookahead demonstration flagged at least one
  `lookahead_unsafe` finding with the machine model agreeing on the
  boundary to the picosecond (machine_agrees, delivery at exactly the
  proved minimum);
* dynamic: at least 3 instrumented runs went through the vector-clock
  race detector, each with events and message edges to chew on, and
  every one came back with zero races, zero structural defects, and
  zero message edges the compiled plans cannot account for (the
  static/dynamic differential contract);
* dpor: at least 3 configurations were explored, at least 50
  non-equivalent interleavings were replayed in total, and every
  forced drain order reproduced the baseline warehouse bit-for-bit
  (all_identical);
* the top-level ok flag agrees with all of the above.

Usage: validate_check.py <results-dir>
"""

import json
import os
import sys


def fail(msg: str) -> None:
    print(f"validate_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(results_dir: str) -> None:
    path = os.path.join(results_dir, "CHECK.json")
    if not os.path.exists(path):
        fail(f"{path} not found (run `repro check` first)")
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    for key in ("static", "dynamic", "dpor", "ok"):
        if key not in doc:
            fail(f"CHECK.json: missing top-level key {key!r} — "
                 "all three analyses must run")

    st = doc["static"]
    configs = st.get("configs", [])
    if not configs:
        fail("static: no proved configurations")
    for c in configs:
        for key in ("problem", "cgs", "channels", "min_latency_ps",
                    "lookahead_ps", "safe"):
            if key not in c:
                fail(f"static config missing {key!r}: {c}")
        if not c["safe"]:
            fail(f"static: {c['problem']} at {c['cgs']} cgs is UNSAFE: "
                 f"min latency {c['min_latency_ps']} < lookahead "
                 f"{c['lookahead_ps']}")
        if c["channels"] == 0:
            fail(f"static: {c['problem']} at {c['cgs']} cgs proved zero "
                 "channels — vacuous")
    if not st.get("all_safe"):
        fail("static: all_safe is false")
    demo = st.get("unsafe_demo")
    if not demo:
        fail("static: unsafe_demo missing — the proof was never shown to "
             "reject anything")
    if demo["findings"] < 1:
        fail("unsafe_demo: the provably unsafe lookahead produced no "
             "findings")
    if not demo["machine_agrees"]:
        fail("unsafe_demo: static proof and machine merge disagree on the "
             "violation boundary")
    if demo["machine_deliver_ps"] != demo["min_latency_ps"]:
        fail(f"unsafe_demo: machine delivered at {demo['machine_deliver_ps']}"
             f" ps, proof predicted {demo['min_latency_ps']} ps")

    dy = doc["dynamic"]
    cases = dy.get("cases", [])
    if len(cases) < 3:
        fail(f"dynamic: only {len(cases)} race-checked runs, need >= 3")
    for c in cases:
        label = f"{c.get('variant')}@{c.get('cgs')}cg"
        if c.get("events", 0) == 0 or c.get("msg_edges", 0) == 0:
            fail(f"dynamic {label}: empty trace or no message edges — "
                 "the detector had nothing to check")
        if c.get("races", 1) != 0:
            fail(f"dynamic {label}: {c['races']} race(s) detected")
        if c.get("structural", 1) != 0:
            fail(f"dynamic {label}: {c['structural']} structural defect(s)")
        if c.get("unmatched", 1) != 0:
            fail(f"dynamic {label}: {c['unmatched']} message edge(s) the "
                 "static model cannot account for")
        if not c.get("clean"):
            fail(f"dynamic {label}: not clean")
    if not dy.get("all_clean"):
        fail("dynamic: all_clean is false")

    dp = doc["dpor"]
    configs = dp.get("configs", [])
    if len(configs) < 3:
        fail(f"dpor: only {len(configs)} explored configs, need >= 3")
    for c in configs:
        if c.get("message_windows", 0) == 0:
            fail(f"dpor {c.get('name')}: no message windows — nothing was "
                 "permuted")
        if not c.get("identical"):
            fail(f"dpor {c.get('name')}: a forced drain order diverged from "
                 "the baseline warehouse")
        if c.get("explored") != c.get("replays", 0) + 1:
            fail(f"dpor {c.get('name')}: explored {c.get('explored')} != "
                 f"baseline + {c.get('replays')} replays")
    total = dp.get("total_explored", 0)
    if total < 50:
        fail(f"dpor: only {total} interleavings explored in total, need "
             ">= 50")
    if not dp.get("all_identical"):
        fail("dpor: all_identical is false")

    if not doc["ok"]:
        fail("campaign reported ok=false")

    print(
        f"validate_check: OK: {len(st['configs'])} configs proved safe, "
        f"unsafe demo agreed at {demo['min_latency_ps']} ps, "
        f"{len(cases)} traces race-free, {total} interleavings "
        f"bit-identical across {len(configs)} configs"
    )


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
