#!/usr/bin/env python3
"""Validate the `repro comm` output in a results directory.

Checks, failing loudly on any violation:

* COMM.json is well-formed JSON with the full sweep grid present
  (every endpoint x aggregation x crossover cell);
* byte identity: every cell's functional run reproduced the
  single-endpoint, no-aggregation baseline warehouse bit-for-bit
  (bit_identical on every cell, and the all_identical rollup);
* overlap: every instrumented run reconciled with its RunReport, the
  async baseline beats the sync baseline, and the canonical
  aggregated configuration's overlap efficiency (async_agg_overlap)
  is at least 0.800;
* aggregation engaged: at least one aggregated cell actually staged
  and flushed coalesced packets — a sweep whose aggregation path
  never ran is vacuous;
* proofs: every cell's lookahead proof over its (coalesced) channel
  models is safe, with a non-vacuous channel count;
* the top-level ok flag agrees with all of the above.

Usage: validate_comm.py <results-dir>
"""

import json
import os
import sys

MIN_ASYNC_AGG_OVERLAP = 0.800


def fail(msg: str) -> None:
    print(f"validate_comm: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(results_dir: str) -> None:
    path = os.path.join(results_dir, "COMM.json")
    if not os.path.exists(path):
        fail(f"{path} not found (run `repro comm` first)")
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    for key in ("cells", "sync_overlap", "async_overlap",
                "async_agg_overlap", "all_identical", "all_safe", "ok"):
        if key not in doc:
            fail(f"COMM.json: missing top-level key {key!r}")

    cells = doc["cells"]
    if not cells:
        fail("no swept cells")
    grid = {(c.get("endpoints"), c.get("agg_bytes"), c.get("crossover"))
            for c in cells}
    if len(grid) != len(cells):
        fail("duplicate grid cells in the sweep")
    endpoints = {c["endpoints"] for c in cells}
    aggs = {c["agg_bytes"] for c in cells}
    crossovers = {c["crossover"] for c in cells}
    if len(endpoints) < 2 or len(aggs) < 2 or len(crossovers) < 2:
        fail(f"sweep too narrow: endpoints {sorted(endpoints)}, "
             f"agg_bytes {sorted(aggs)}, crossovers {crossovers}")

    # Channel counts of the aggregation-off cells, keyed by the other two
    # axes: an aggregated cell with *fewer* proved channels than its
    # aggregation-off sibling coalesced eager sends, so its model run must
    # have staged something. (A small crossover can push every payload to
    # rendezvous, in which case zero staging is correct — and the channel
    # counts match.)
    no_agg_channels = {(c["endpoints"], c.get("crossover")): c["channels"]
                       for c in cells if c.get("agg_bytes") == 0}

    flushed_somewhere = False
    for c in cells:
        label = (f"ep={c.get('endpoints')} agg={c.get('agg_bytes')} "
                 f"xo={c.get('crossover')}")
        for key in ("endpoints", "agg_bytes", "agg_deadline_ps",
                    "bit_identical", "overlap_efficiency", "reconciled",
                    "agg_staged", "agg_flushes", "channels",
                    "min_latency_ps", "proof_safe"):
            if key not in c:
                fail(f"cell {label}: missing {key!r}")
        if not c["bit_identical"]:
            fail(f"cell {label}: warehouse diverged from the "
                 "single-endpoint baseline")
        if not c["reconciled"]:
            fail(f"cell {label}: phase pass did not reconcile with the "
                 "RunReport")
        if not c["proof_safe"]:
            fail(f"cell {label}: lookahead proof unsafe over the coalesced "
                 "channels")
        if c["channels"] == 0:
            fail(f"cell {label}: proved zero channels — vacuous")
        if not 0.0 <= c["overlap_efficiency"] <= 1.0:
            fail(f"cell {label}: overlap {c['overlap_efficiency']} outside "
                 "[0, 1]")
        sibling = no_agg_channels.get((c["endpoints"], c.get("crossover")))
        coalesced = sibling is not None and c["channels"] < sibling
        if c["agg_bytes"] > 0 and coalesced and c["agg_staged"] == 0:
            fail(f"cell {label}: aggregation coalesced channels but nothing "
                 "was staged")
        if c["agg_flushes"] > c["agg_staged"]:
            fail(f"cell {label}: more flushes ({c['agg_flushes']}) than "
                 f"staged messages ({c['agg_staged']})")
        if c["agg_flushes"] > 0:
            flushed_somewhere = True
    if not flushed_somewhere:
        fail("no cell ever flushed a coalesced packet — the aggregation "
             "path never ran")
    if not doc["all_identical"]:
        fail("all_identical is false")
    if not doc["all_safe"]:
        fail("all_safe is false")

    if doc["async_overlap"] <= doc["sync_overlap"]:
        fail(f"async overlap {doc['async_overlap']} does not beat sync "
             f"{doc['sync_overlap']}")
    if doc["async_agg_overlap"] < MIN_ASYNC_AGG_OVERLAP:
        fail(f"canonical aggregated overlap {doc['async_agg_overlap']} "
             f"below the {MIN_ASYNC_AGG_OVERLAP} bar")

    if not doc["ok"]:
        fail("sweep reported ok=false")

    print(
        f"validate_comm: OK: {len(cells)} cells byte-identical and proved "
        f"safe; overlap sync {doc['sync_overlap']:.3f} -> async "
        f"{doc['async_overlap']:.3f} -> async+agg "
        f"{doc['async_agg_overlap']:.3f}"
    )


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
