#!/usr/bin/env python3
"""Validate the `repro faults` output in a results directory.

Checks, failing loudly on any violation:

* FAULTS.json is well-formed JSON with the expected top-level shape
  (seed, byte_identity, restart, harsh, model_overhead, failures,
  total_injected);
* every Table IV variant appears in byte_identity, is bit_identical, and
  reports zero unrecovered faults (the standard preset guarantees
  recovery within the retry budget);
* the campaign injected a nonzero number of faults (a silent all-clean
  sweep would vacuously pass the identity checks);
* the restart proof resumed from a real mid-flight checkpoint
  (resumed_step > 0, ckpt_bytes > 0), reconverged bit-exactly, and
  restored exactly one checkpoint;
* the harsh proof completed quiescently, and any exhausted retry budget
  is accounted: unrecovered faults imply degradations or forced
  deliveries, never a crash;
* the checkpoint file on disk (results/ckpt/step*.ckpt) starts with the
  SWCKPT01 magic;
* every model-overhead cell has positive times and a finite, sane
  overhead (faults may slow a run, never make it free).

Usage: validate_faults.py <results-dir>
"""

import glob
import json
import os
import sys

EXPECTED_VARIANTS = {
    "host.sync",
    "acc.sync",
    "acc_simd.sync",
    "acc.async",
    "acc_simd.async",
}

COUNTER_KEYS = {
    "injected_slot_death",
    "injected_msg_drop",
    "detected_offload",
    "retries_offload",
    "recovered_offload",
    "unrecovered",
    "duplicates_suppressed",
    "serial_degradations",
    "checkpoints_written",
    "checkpoints_restored",
}


def fail(msg: str) -> None:
    print(f"validate_faults: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_counts(where: str, counts: dict) -> None:
    missing = COUNTER_KEYS - counts.keys()
    if missing:
        fail(f"{where}: counters missing {sorted(missing)}")
    for k, v in counts.items():
        if not isinstance(v, int) or v < 0:
            fail(f"{where}: counter {k} = {v!r} is not a non-negative int")


def main(results_dir: str) -> None:
    path = os.path.join(results_dir, "FAULTS.json")
    if not os.path.exists(path):
        fail(f"{path} not found (run `repro faults` first)")
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    for key in (
        "seed",
        "byte_identity",
        "restart",
        "harsh",
        "model_overhead",
        "failures",
        "total_injected",
    ):
        if key not in doc:
            fail(f"FAULTS.json: missing top-level key {key!r}")

    if doc["failures"] != 0:
        fail(f"campaign reported {doc['failures']} failed proof(s)")
    if doc["total_injected"] <= 0:
        fail("campaign injected zero faults — identity checks are vacuous")

    seen = set()
    for cell in doc["byte_identity"]:
        v = cell["variant"]
        seen.add(v)
        if not cell["bit_identical"]:
            fail(f"variant {v}: faulted run diverged from fault-free bits")
        check_counts(f"byte_identity[{v}]", cell["counts"])
        if cell["counts"]["unrecovered"] != 0:
            fail(f"variant {v}: {cell['counts']['unrecovered']} unrecovered "
                 "faults under the recoverable preset")
    if seen != EXPECTED_VARIANTS:
        fail(f"byte_identity covers {sorted(seen)}, "
             f"expected {sorted(EXPECTED_VARIANTS)}")

    r = doc["restart"]
    check_counts("restart", r["counts"])
    if not r["restart_identical"]:
        fail("restart: restored run diverged from the uninterrupted run")
    if r["resumed_step"] <= 0:
        fail(f"restart: resumed_step {r['resumed_step']} is not mid-flight")
    if r["ckpt_bytes"] <= 0:
        fail("restart: checkpoint file is empty")
    if r["counts"]["checkpoints_restored"] != 1:
        fail(f"restart: restored {r['counts']['checkpoints_restored']} "
             "checkpoints, expected exactly 1")

    h = doc["harsh"]
    check_counts("harsh", h["counts"])
    if not h["completed"]:
        fail("harsh: run did not complete all steps")
    if not h["quiescent"]:
        fail("harsh: run finished with leaked MPI handles")

    for cell in doc["model_overhead"]:
        v = cell["variant"]
        check_counts(f"model_overhead[{v}]", cell["counts"])
        if cell["clean_tps"] <= 0 or cell["faulted_tps"] <= 0:
            fail(f"model_overhead[{v}]: non-positive time per step")
        if cell["overhead_frac"] < -1e-9:
            fail(f"model_overhead[{v}]: faults made the run faster "
                 f"({cell['overhead_frac']:+.3%})")

    ckpts = sorted(glob.glob(os.path.join(results_dir, "ckpt", "step*.ckpt")))
    if not ckpts:
        fail("no checkpoint files under results/ckpt/")
    with open(ckpts[0], "rb") as f:
        magic = f.read(8)
    if magic != b"SWCKPT01":
        fail(f"{ckpts[0]}: bad checkpoint magic {magic!r}")

    print(
        f"validate_faults: OK: seed {doc['seed']}, "
        f"{len(doc['byte_identity'])} variants bit-identical, "
        f"{doc['total_injected']} faults injected, "
        f"restart from step {r['resumed_step']} reconverged, "
        f"{len(ckpts)} checkpoint file(s)"
    )


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
