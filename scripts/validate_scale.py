#!/usr/bin/env python3
"""Validate the `repro scale` output in a results directory.

Checks, failing loudly on any violation:

* BENCH_scale.json is well-formed JSON with the expected top-level shape
  (host_threads, degenerate_host, steps, max_cgs, all_identical, cells);
* every cell carries the full schema (problem, patches, variant, cgs,
  virtual_time_ps, speedup, efficiency, serial_wall_ms, pdes_wall_ms,
  pdes_wall_speedup, pdes_identical);
* pdes_identical is true on every cell and all_identical agrees — the
  conservative-PDES engine replayed the serial timeline bit-for-bit on
  every swept config;
* strong-scaling shape: within each (problem, variant) group the
  virtual-time speedup is monotone non-decreasing in CG count (with a
  2% slack for modeled contention effects) and the baseline row is 1.0;
* overlap advantage: on the paper problem, at every CG count that
  leaves each rank >= 2 patches to pipeline, the async variant finishes
  no later than its sync sibling in virtual time. (At 1 patch/rank
  there is nothing left to overlap and async's extra scheduling can
  lose — the crossover is a finding, not a failure; see
  EXPERIMENTS.md.)
* honest host reporting: on a degenerate (single-thread) host the
  wall-clock ratio is null and every cell carries the warning text;
  on a multi-thread host the ratio is a positive number.

Usage: validate_scale.py <results-dir>
"""

import json
import os
import sys

CELL_KEYS = (
    "problem", "patches", "variant", "cgs", "virtual_time_ps", "speedup",
    "efficiency", "serial_wall_ms", "pdes_wall_ms", "pdes_wall_speedup",
    "pdes_identical",
)

PAPER_PROBLEM = "16x16x512"

# Slack for the monotone-speedup check: modeled contention can flatten
# the curve between adjacent CG counts, but never collapse it.
MONOTONE_SLACK = 0.98


def fail(msg: str) -> None:
    print(f"validate_scale: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(results_dir: str) -> None:
    path = os.path.join(results_dir, "BENCH_scale.json")
    if not os.path.exists(path):
        fail(f"{path} not found (run `repro scale` first)")
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    for key in ("host_threads", "degenerate_host", "steps", "max_cgs",
                "all_identical", "cells"):
        if key not in doc:
            fail(f"BENCH_scale.json: missing top-level key {key!r}")

    cells = doc["cells"]
    if not cells:
        fail("empty cells array — the sweep ran nothing")
    degenerate = doc["degenerate_host"]
    if degenerate != (doc["host_threads"] <= 1):
        fail(f"degenerate_host={degenerate} disagrees with "
             f"host_threads={doc['host_threads']}")

    for c in cells:
        for key in CELL_KEYS:
            if key not in c:
                fail(f"cell missing {key!r}: {c}")
        if not c["pdes_identical"]:
            fail(f"PDES diverged from serial: {c['problem']} "
                 f"{c['variant']} at {c['cgs']} CGs")
        if c["cgs"] > c["patches"]:
            fail(f"{c['cgs']} CGs exceeds the {c['patches']}-patch layout")
        if degenerate:
            if c["pdes_wall_speedup"] is not None:
                fail("degenerate host must report pdes_wall_speedup=null, "
                     f"got {c['pdes_wall_speedup']}")
            if "single-core host" not in c.get("warning", ""):
                fail("degenerate host cell is missing the honest warning")
        else:
            if not (isinstance(c["pdes_wall_speedup"], (int, float))
                    and c["pdes_wall_speedup"] > 0):
                fail(f"bad pdes_wall_speedup: {c['pdes_wall_speedup']}")

    if not doc["all_identical"]:
        fail("all_identical=false (yet no cell flagged — inconsistent doc)"
             if all(c["pdes_identical"] for c in cells)
             else "all_identical=false")
    if doc["max_cgs"] != max(c["cgs"] for c in cells):
        fail(f"max_cgs={doc['max_cgs']} disagrees with the cells")

    # Strong-scaling shape per (problem, variant) group, axis order.
    groups = {}
    for c in cells:
        groups.setdefault((c["problem"], c["variant"]), []).append(c)
    for (problem, variant), rows in groups.items():
        if abs(rows[0]["speedup"] - 1.0) > 1e-9:
            fail(f"{problem}/{variant}: baseline speedup "
                 f"{rows[0]['speedup']} != 1.0")
        for a, b in zip(rows, rows[1:]):
            if b["cgs"] <= a["cgs"]:
                fail(f"{problem}/{variant}: CG axis not increasing "
                     f"({a['cgs']} -> {b['cgs']})")
            if b["speedup"] < a["speedup"] * MONOTONE_SLACK:
                fail(f"{problem}/{variant}: speedup collapsed "
                     f"{a['speedup']:.3f} -> {b['speedup']:.3f} at "
                     f"{b['cgs']} CGs")

    # Overlap advantage on the paper problem while ranks still hold work.
    sync_rows = {c["cgs"]: c for c in
                 groups.get((PAPER_PROBLEM, "acc.sync"), [])}
    async_rows = {c["cgs"]: c for c in
                  groups.get((PAPER_PROBLEM, "acc.async"), [])}
    if not sync_rows or not async_rows:
        fail(f"paper problem {PAPER_PROBLEM} missing a sync/async curve")
    compared = 0
    for cgs, s in sync_rows.items():
        a = async_rows.get(cgs)
        if a is None:
            fail(f"{PAPER_PROBLEM}: async curve missing the {cgs}-CG row")
        if s["patches"] // cgs >= 2:
            compared += 1
            if a["virtual_time_ps"] > s["virtual_time_ps"]:
                fail(f"{PAPER_PROBLEM} at {cgs} CGs: async "
                     f"({a['virtual_time_ps']} ps) slower than sync "
                     f"({s['virtual_time_ps']} ps) with "
                     f"{s['patches'] // cgs} patches/rank to overlap")
    if compared == 0:
        fail("no CG count left >= 2 patches/rank — the overlap check "
             "never ran")

    print(
        f"validate_scale: OK: {len(cells)} cells over {len(groups)} "
        f"(problem, variant) curves, max {doc['max_cgs']} CGs, "
        f"PDES bit-identical everywhere, async-vs-sync compared at "
        f"{compared} CG count(s)"
        + (", degenerate single-thread host honestly reported"
           if degenerate else "")
    )


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
