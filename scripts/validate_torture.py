#!/usr/bin/env python3
"""Validate the `repro torture` output in a results directory.

Checks, failing loudly on any violation:

* TORTURE.json is well-formed JSON with the expected top-level shape
  (seed, cases, valid, rejected, oracle_passes, failures, ok);
* the campaign is marked ok and the failures list is empty (every
  sampled config passed its oracle battery, every corrupted config was
  rejected with a typed error);
* valid + rejected == cases, both strata are non-empty (a campaign that
  never exercised the rejection oracle, or never ran a full battery, is
  vacuous), and the corruption cadence (every 7th case) roughly holds;
* the always-on oracles (constructs, completes, quiescent,
  telemetry_reconciles, model_agrees, pdes_bit_identical) each passed
  exactly `valid` times — an oracle silently skipped for some stratum
  would undercount; pdes_bit_identical is always-on by design: the
  conservative-PDES engine must replay every valid config's serial
  timeline exactly, harsh fault presets included;
* the conditional oracles (parallel/SIMD bit identity, checkpoint noop
  and restart semantics, typed rejection) each passed at least once, so
  the corpus actually reached every corner the generator claims to
  cover;
* any failure entry (when present, e.g. when inspecting a red run by
  hand) carries a minimized config and a non-empty ready-to-paste
  regression test.

Usage: validate_torture.py <results-dir>
"""

import json
import os
import sys

ALWAYS_ON = {
    "constructs",
    "completes",
    "quiescent",
    "telemetry_reconciles",
    "model_agrees",
    "pdes_bit_identical",
}

CONDITIONAL = {
    "parallel_bit_identical",
    "simd_sibling_bit_identical",
    "ckpt_noop",
    "ckpt_restart",
    "rejects_without_panicking",
}


def fail(msg: str) -> None:
    print(f"validate_torture: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(results_dir: str) -> None:
    path = os.path.join(results_dir, "TORTURE.json")
    if not os.path.exists(path):
        fail(f"{path} not found (run `repro torture` first)")
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    for key in ("seed", "cases", "valid", "rejected", "oracle_passes",
                "failures", "ok"):
        if key not in doc:
            fail(f"TORTURE.json: missing top-level key {key!r}")

    cases, valid, rejected = doc["cases"], doc["valid"], doc["rejected"]
    if valid + rejected != cases:
        fail(f"strata do not partition the corpus: "
             f"{valid} valid + {rejected} rejected != {cases} cases")
    if valid == 0 or rejected == 0:
        fail(f"degenerate corpus: {valid} valid, {rejected} rejected — "
             "both oracles must be exercised")
    # Corruption cadence is every 7th case; allow generator slack.
    lo, hi = cases // 7 - 2, cases // 7 + 2
    if not lo <= rejected <= hi:
        fail(f"rejected stratum {rejected} outside the every-7th-case "
             f"cadence [{lo}, {hi}] for {cases} cases")

    passes = doc["oracle_passes"]
    for k, v in passes.items():
        if not isinstance(v, int) or v < 0:
            fail(f"oracle_passes[{k}] = {v!r} is not a non-negative int")
    for oracle in ALWAYS_ON:
        if passes.get(oracle) != valid:
            fail(f"oracle {oracle} passed {passes.get(oracle)} times, "
                 f"expected exactly {valid} (once per valid config)")
    for oracle in CONDITIONAL:
        if passes.get(oracle, 0) < 1:
            fail(f"oracle {oracle} never ran — the corpus missed a corner "
                 "the generator is supposed to cover")
    if passes.get("rejects_without_panicking") != rejected:
        fail("rejection oracle passes "
             f"{passes.get('rejects_without_panicking')} != rejected "
             f"stratum {rejected}")

    for f_ in doc["failures"]:
        for key in ("case", "config", "oracle", "detail", "minimized",
                    "regression_test"):
            if key not in f_:
                fail(f"failure entry missing {key!r}: {f_}")
        if not f_["regression_test"].strip():
            fail(f"case {f_['case']}: empty regression test")
        if "#[test]" not in f_["regression_test"]:
            fail(f"case {f_['case']}: regression test is not paste-ready")

    if doc["failures"] and doc["ok"]:
        fail("ok=true but the failures list is non-empty")
    if not doc["ok"]:
        fail(f"campaign reported {len(doc['failures'])} oracle failure(s)")

    print(
        f"validate_torture: OK: seed {doc['seed']}, {cases} cases "
        f"({valid} valid through the full battery, {rejected} corrupted "
        f"and rejected), {sum(passes.values())} oracle passes across "
        f"{len(passes)} oracles, 0 failures"
    )


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
