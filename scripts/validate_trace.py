#!/usr/bin/env python3
"""Validate the `repro trace` output in a results directory.

Checks, failing loudly on any violation:

* every TRACE_*.perfetto.json is well-formed Chrome trace-event JSON:
  a {"traceEvents": [...]} object whose events all carry ph/pid (and tid
  for everything except process-level "M" metadata), with at least one
  "X" span and more than one distinct (pid, tid) track;
* TIMELINE.json is well-formed, every variant is `reconciled` (phase
  windows equal RunReport::step_end exactly and the four-way splits sum),
  every overlap efficiency lies in [0, 1], and every per-(step, rank)
  breakdown sums to its window;
* each async variant hides strictly more communication than its sync
  counterpart with the same kernel (the paper's core claim, made visible).

Usage: validate_trace.py <results-dir>
"""

import glob
import json
import os
import sys


def fail(msg: str) -> None:
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_perfetto(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    tracks = set()
    spans = 0
    for e in events:
        ph = e.get("ph")
        if ph is None or "pid" not in e:
            fail(f"{path}: event without ph/pid: {e}")
        if ph == "M":
            continue  # metadata: process-level entries legally lack tid
        if "tid" not in e:
            fail(f"{path}: non-metadata event without tid: {e}")
        tracks.add((e["pid"], e["tid"]))
        if ph == "X":
            spans += 1
            if e.get("dur", -1) < 0 or e.get("ts", -1) < 0:
                fail(f"{path}: span with negative ts/dur: {e}")
    if spans == 0:
        fail(f"{path}: no complete ('X') spans")
    if len(tracks) < 2:
        fail(f"{path}: fewer than two tracks ({tracks})")
    print(
        f"validate_trace: {os.path.basename(path)}: "
        f"{len(events)} events, {len(tracks)} tracks, {spans} spans"
    )


def check_timeline(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    variants = doc.get("variants")
    if not variants:
        fail(f"{path}: no variants")
    eff = {}
    for v in variants:
        name = v.get("variant", "?")
        if v.get("reconciled") is not True:
            fail(f"{path}: variant {name} not reconciled with its RunReport")
        e = v.get("overlap_efficiency")
        if not isinstance(e, (int, float)) or not 0.0 <= e <= 1.0:
            fail(f"{path}: variant {name} overlap_efficiency {e} not in [0,1]")
        eff[name] = e
        for b in v.get("breakdowns", []):
            parts = b["compute_ps"] + b["hidden_ps"] + b["exposed_ps"] + b["idle_ps"]
            if parts != b["window_ps"]:
                fail(
                    f"{path}: variant {name} step {b['step']} rank {b['rank']}: "
                    f"split sums to {parts}, window is {b['window_ps']}"
                )
    # Async must hide strictly more communication than sync *for the same
    # kernel* (SIMD kernels are shorter, so cross-kernel comparisons are
    # meaningless).
    for sync_name, async_name in (
        ("acc.sync", "acc.async"),
        ("acc_simd.sync", "acc_simd.async"),
    ):
        if sync_name in eff and async_name in eff:
            if eff[async_name] <= eff[sync_name]:
                fail(
                    f"{path}: {async_name} efficiency {eff[async_name]} not "
                    f"strictly above {sync_name} {eff[sync_name]}"
                )
    print(
        "validate_trace: TIMELINE.json: "
        + ", ".join(f"{k}={v:.3f}" for k, v in sorted(eff.items()))
    )


def main() -> None:
    results = sys.argv[1] if len(sys.argv) > 1 else "results"
    traces = sorted(glob.glob(os.path.join(results, "TRACE_*.perfetto.json")))
    if not traces:
        fail(f"no TRACE_*.perfetto.json under {results}")
    for t in traces:
        check_perfetto(t)
    timeline = os.path.join(results, "TIMELINE.json")
    if not os.path.exists(timeline):
        fail(f"{timeline} missing")
    check_timeline(timeline)
    print("validate_trace: OK")


if __name__ == "__main__":
    main()
