//! Wall-clock micro-benchmark harness (offline stand-in for `criterion`;
//! see `shims/README.md`).
//!
//! Supports the subset used by this workspace's `benches/`: `Criterion`,
//! `benchmark_group` (with `throughput` and `sample_size`),
//! `bench_function`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark is warmed up, then timed over a
//! fixed measurement window; the mean time per iteration (and derived
//! throughput) is printed to stdout. No statistics beyond the mean, no HTML
//! reports, no baseline comparison — the numbers are honest wall-clock
//! means on whatever machine runs them.
//!
//! Environment knobs: `CRITERION_WARMUP_MS` (default 150) and
//! `CRITERION_MEASURE_MS` (default 500) bound each benchmark's runtime.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_ms(var: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(default),
    )
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// The benchmark context handed to `b.iter(..)` closures.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    /// Mean nanoseconds per iteration of the last `iter` call.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Time `f`: warm up, pick an iteration count targeting the measurement
    /// window, then report the mean over that window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up window elapses (at least once).
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_iters == 0 || start.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        let target = ((self.measure.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);
        let t0 = Instant::now();
        for _ in 0..target {
            black_box(f());
        }
        let total = t0.elapsed();
        self.iters = target;
        self.mean_ns = total.as_nanos() as f64 / target as f64;
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The benchmark registry/driver.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: env_ms("CRITERION_WARMUP_MS", 150),
            measure: env_ms("CRITERION_MEASURE_MS", 500),
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, self.warmup, self.measure, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let (warmup, measure) = (self.warmup, self.measure);
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            warmup,
            measure,
            throughput: None,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    warmup: Duration,
    measure: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        warmup,
        measure,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    let mut line = format!(
        "{name:<40} time: {:>12}/iter ({} iters)",
        fmt_time(b.mean_ns),
        b.iters
    );
    if let Some(t) = throughput {
        let per_sec = match t {
            Throughput::Elements(n) => format!("{:.1} Melem/s", n as f64 / b.mean_ns * 1e3),
            Throughput::Bytes(n) => format!("{:.1} MB/s", n as f64 / b.mean_ns * 1e3),
        };
        line.push_str(&format!("  thrpt: {per_sec}"));
    }
    println!("{line}");
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    warmup: Duration,
    measure: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for criterion API compatibility; the shim sizes iteration
    /// counts from the measurement window instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Shrink/grow the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.throughput, self.warmup, self.measure, f);
        self
    }

    /// Finish the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_WARMUP_MS", "1");
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.sample_size(10);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
        c.bench_function("noop", |b| b.iter(|| black_box(1)));
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(12.0).contains("ns"));
        assert!(fmt_time(12_000.0).contains("µs"));
        assert!(fmt_time(12_000_000.0).contains("ms"));
        assert!(fmt_time(2e9).contains(" s"));
    }
}
