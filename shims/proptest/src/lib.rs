//! Deterministic random property testing (offline stand-in for `proptest`;
//! see `shims/README.md`).
//!
//! Implements the subset of proptest this workspace's tests use:
//!
//! * the [`proptest!`] macro with `pat in strategy` arguments and an
//!   optional `#![proptest_config(..)]` header;
//! * [`strategy::Strategy`] over integer/float ranges, tuples, `prop_map`,
//!   and `prop_filter`;
//! * `prop::collection::vec`, `prop::array::uniform4`, [`strategy::Just`],
//!   and `any::<T>()`;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//!   [`prop_assume!`].
//!
//! Sampling is driven by a SplitMix64 generator seeded from the test's name
//! and the case index, so every run of a test sees the same inputs
//! (`PROPTEST_CASES` overrides the per-test case count; failures print the
//! failing case's seed). There is no shrinking: a failing case panics with
//! the assertion message plus the seed line, which is enough to replay.

#![warn(missing_docs)]

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(32);
            Config { cases }
        }
    }

    /// Why a test case did not run to completion.
    #[derive(Clone, Copy, Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` and must be resampled.
        Reject,
    }

    /// SplitMix64: tiny, fast, and statistically fine for test-input
    /// generation (Steele et al., OOPSLA 2014).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG with the given seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 uniform random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo bias is ~2^-64 * bound — irrelevant for test inputs.
            self.next_u64() % bound
        }
    }

    /// FNV-1a over the test name: the per-test base seed.
    pub fn seed_of(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        h
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keep only values for which `f` is true (resampling up to a
        /// bounded number of times; panics if the filter is too strict).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "proptest-shim: prop_filter rejected 10000 samples: {}",
                self.whence
            );
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    }

    impl<T, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<T, S: Strategy<Value = T> + ?Sized> Strategy for &S {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A range of collection sizes; build from `usize`, `a..b`, or `a..=b`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`prop::array`).
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[T; 4]` with independent identically-distributed lanes.
    #[derive(Clone, Debug)]
    pub struct Uniform4<S>(S);

    /// Four independent draws from `element`.
    pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
        Uniform4(element)
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn sample(&self, rng: &mut TestRng) -> [S::Value; 4] {
            [
                self.0.sample(rng),
                self.0.sample(rng),
                self.0.sample(rng),
                self.0.sample(rng),
            ]
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, magnitude-spread values.
            (rng.next_f64() - 0.5) * 2e12
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// The `prop::` module path used by `proptest::prelude::*` consumers.
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a property test (panics with the expression or message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            panic!("prop_assert!({}) failed", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq!({}, {}) failed: {:?} != {:?}",
                stringify!($lhs),
                stringify!($rhs),
                l,
                r
            );
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            panic!($($fmt)+);
        }
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            panic!(
                "prop_assert_ne!({}, {}) failed: both {:?}",
                stringify!($lhs),
                stringify!($rhs),
                l
            );
        }
    }};
}

/// Reject the current case (it is resampled, not counted as a success).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `Config::cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            cfg = <$crate::test_runner::Config as ::std::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let base = $crate::test_runner::seed_of(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut attempts: u64 = 0;
            while passed < cfg.cases {
                let seed = base ^ attempts.wrapping_mul(0xA076_1D64_78BD_642F);
                attempts += 1;
                if attempts > 200 * (cfg.cases as u64 + 1) {
                    panic!("proptest-shim: too many prop_assume! rejections");
                }
                let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                let guard = $crate::__CaseGuard {
                    test: concat!(module_path!(), "::", stringify!($name)),
                    seed,
                    case: passed,
                };
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                ::std::mem::forget(guard);
                if outcome.is_ok() {
                    passed += 1;
                }
            }
        }
    )*};
}

/// Prints replay information when a case panics (dropped only during
/// unwinding; forgotten on success/rejection).
#[doc(hidden)]
pub struct __CaseGuard {
    #[doc(hidden)]
    pub test: &'static str,
    #[doc(hidden)]
    pub seed: u64,
    #[doc(hidden)]
    pub case: u32,
}

impl Drop for __CaseGuard {
    fn drop(&mut self) {
        eprintln!(
            "proptest-shim: {} failed at case {} (rng seed {:#018x})",
            self.test, self.case, self.seed
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = (0u64..100, -1.0f64..1.0).prop_map(|(a, b)| (a, b));
        let a = s.sample(&mut TestRng::from_seed(42));
        let b = s.sample(&mut TestRng::from_seed(42));
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.to_bits(), b.1.to_bits());
    }

    #[test]
    fn ranges_respect_bounds() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = (-5i64..5).sample(&mut rng);
            assert!((-5..5).contains(&v));
            let f = (-2.0f64..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let n = crate::collection::vec(0usize..4, 1..3).sample(&mut rng);
            assert!(!n.is_empty() && n.len() < 3);
            assert!(n.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro plumbing end-to-end: tuples, vec, assume, assert.
        #[test]
        fn macro_end_to_end(
            (a, b) in (0u32..50, 0u32..50),
            xs in prop::collection::vec(0i32..10, 1..8),
            lane in prop::array::uniform4(-1.0f64..1.0),
            flag in any::<bool>(),
        ) {
            prop_assume!(a != b || xs.len() > 1);
            prop_assert!(a < 50 && b < 50);
            let counted = xs.iter().fold(0usize, |n, _| n + 1);
            prop_assert_eq!(xs.len(), counted);
            prop_assert_ne!(xs.len(), 0);
            prop_assert!(lane.iter().all(|x| (-1.0..1.0).contains(x)));
            let _ = flag;
        }
    }
}
