//! Scoped fork-join parallelism (offline stand-in for `rayon`; see
//! `shims/README.md`).
//!
//! Provides the subset of rayon this workspace uses — [`scope`], [`join`],
//! [`current_num_threads`], and a [`ThreadPoolBuilder`]/[`ThreadPool`] pair
//! — implemented over [`std::thread::scope`]. Threads are spawned per scope
//! rather than kept in a persistent work-stealing pool; for the coarse
//! tasks this workspace runs (whole CPE tile lists, whole sweep cells) the
//! spawn cost is tens of microseconds against milliseconds of work, which
//! keeps the measured overhead under 1% while staying dependency-free.
//!
//! The call sites are written against rayon's names so the real crate can
//! be swapped back in via the workspace manifest without source changes.

#![warn(missing_docs)]

use std::num::NonZeroUsize;

pub use std::thread::ScopedJoinHandle;

/// Number of hardware threads available to this process.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run two closures, potentially in parallel, and return both results.
///
/// `b` runs on a scoped worker thread while `a` runs on the caller.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon-shim: join closure panicked");
        (ra, rb)
    })
}

/// A fork-join scope handed to the closure of [`scope`].
///
/// Mirrors `rayon::Scope`: tasks spawned on it may borrow from the
/// enclosing environment (`'env`) and are all joined before [`scope`]
/// returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task on the scope; returns a handle whose `join` yields the
    /// closure's result.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(f)
    }
}

/// Create a fork-join scope: every task spawned inside has completed when
/// this returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Builder for a [`ThreadPool`] with an explicit thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (auto-detected) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of worker threads (0 = auto-detect).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool (infallible in the shim).
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        let n = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads: n })
    }
}

/// A handle carrying a configured degree of parallelism.
///
/// The shim has no persistent workers; `install` simply runs the closure on
/// the caller, and callers size their fan-out via [`ThreadPool::current_num_threads`].
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The configured number of worker threads.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `f` "inside" the pool (on the caller in the shim).
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R,
    {
        f()
    }

    /// Create a fork-join scope (same semantics as the free [`scope`]).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        scope(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn scope_joins_all_spawned_tasks() {
        let counter = AtomicUsize::new(0);
        let total: usize = scope(|s| {
            let counter = &counter;
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    s.spawn(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                        i
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        assert_eq!(total, (0..8).sum());
    }

    #[test]
    fn scope_tasks_may_borrow_environment() {
        let data = [1u64, 2, 3, 4];
        let sum: u64 = scope(|s| {
            let hs: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move || c.iter().sum::<u64>()))
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(sum, 10);
    }

    #[test]
    fn pool_builder_resolves_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        assert_eq!(pool.install(|| 7), 7);
        let auto = ThreadPoolBuilder::new().build().unwrap();
        assert!(auto.current_num_threads() >= 1);
    }
}
