//! Marker-trait stand-in for `serde` (offline; see `shims/README.md`).
//!
//! Exposes `Serialize`/`Deserialize` as both traits (type namespace) and
//! derive macros (macro namespace), exactly like the real crate, so
//! `#[derive(Serialize, Deserialize)]` and `use serde::{..}` compile
//! unchanged. The traits are satisfied for every type by blanket impls;
//! no serialization machinery exists because nothing in-tree uses it —
//! JSON artifacts (e.g. `results/BENCH_functional.json`) are rendered by
//! hand.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for "this type opts into serialization" (no-op in the shim).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for "this type opts into deserialization" (no-op in the shim).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
