//! No-op `Serialize`/`Deserialize` derives (offline stand-in for
//! `serde_derive`; see `shims/README.md`).
//!
//! The workspace derives these traits on model-parameter structs so that a
//! real serde can be swapped in later; nothing in-tree calls serialization
//! methods, so emitting no impl body keeps every type compiling while the
//! marker traits in the `serde` shim are satisfied by blanket impls.

use proc_macro::TokenStream;

/// Accepts the input item (and any `#[serde(...)]` attributes) and emits
/// nothing; the `serde` shim's blanket impl provides the trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the input item (and any `#[serde(...)]` attributes) and emits
/// nothing; the `serde` shim's blanket impl provides the trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
