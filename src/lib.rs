//! Umbrella crate for the Uintah-on-Sunway reproduction workspace.
//!
//! This crate exists to host the top-level `examples/` and `tests/`
//! directories required by the repository layout; all functionality lives in
//! the member crates:
//!
//! * [`sw_sim`] — discrete-event SW26010 machine model,
//! * [`sw_athread`] — athread-like CPE offload layer,
//! * [`sw_mpi`] — simulated non-blocking message passing,
//! * [`sw_math`] — software exp and 4-wide SIMD with flop accounting,
//! * [`uintah_core`] — the AMT runtime (grid, data warehouse, task graph,
//!   and the Sunway-specific schedulers),
//! * [`burgers`] — the 3-D Burgers model fluid-flow problem,
//! * [`apps`] — further applications (heat diffusion, linear advection).

#![warn(missing_docs)]
pub use apps;
pub use burgers;
pub use sw_athread;
pub use sw_math;
pub use sw_mpi;
pub use sw_sim;
pub use uintah_core;
