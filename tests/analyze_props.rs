//! Property tests for the `sw-analyze` schedule verifier: a schedule
//! compiled from real rank plans is proved clean, and every injected fault
//! class — a dropped ordering edge, a ghost-unpack window shifted onto the
//! kernel's interior, an undersized LDM budget, a cycle — is flagged with a
//! diagnostic naming the offending tasks or tiles.

use proptest::prelude::*;
use sw_analyze::{analyze, AccessKind, FindingKind, Schedule, TaskKind};
use uintah_core::task::plan::build_rank_plan;
use uintah_core::{
    build_schedule_model, iv, Level, LoadBalancer, MachineConfig, SchedulerOptions, Variant,
};

/// Compile a real multi-rank schedule model. `ACC_ASYNC` makes the CPE
/// kernels genuinely concurrent with the MPE message tasks, so an injected
/// ordering fault is an actual race, not one masked by rank serialization.
fn model(patch: i64, lx: i64, cgs: usize, stages: usize) -> (Level, Schedule) {
    let level = Level::new(iv(patch, patch, patch), iv(lx, 2, 1));
    let assignment = LoadBalancer::Block.assign(&level, cgs);
    let plans: Vec<_> = (0..cgs)
        .map(|r| build_rank_plan(&level, &assignment, r, 1))
        .collect();
    let s = build_schedule_model(
        "prop",
        &level,
        &plans,
        1,
        stages,
        Variant::ACC_ASYNC,
        &SchedulerOptions::default(),
        &MachineConfig::sw26010(),
    );
    (level, s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The unmutated schedule is clean; each mutation below is detected.
    #[test]
    fn valid_schedule_is_clean_and_injected_faults_are_flagged(
        psize in 1i64..3,       // patches of 4 or 8 cells per axis
        lx in 2i64..4,          // 4..6 patches
        cgs_raw in 2usize..5,
        stages in 2usize..4,
        pick in 0usize..1024,   // which fault site to mutate
    ) {
        let patch = 4 * psize;
        let n_patches = (lx * 2) as usize;
        let cgs = cgs_raw.min(n_patches);
        let (level, base) = model(patch, lx, cgs, stages);

        // Clean bill for the real compiled plans.
        let r = analyze(&base);
        prop_assert!(r.is_clean(), "valid schedule flagged:\n{}", r.render());
        prop_assert!(r.findings.is_empty(), "unexpected warnings:\n{}", r.render());

        // Fault 1 — drop a Recv -> Prep ordering edge. The recv's ghost
        // unpack becomes concurrent with the CPE kernel that reads the
        // ghosted input, and the race must name the dropped recv.
        {
            let mut s = base.clone();
            let recv_edges: Vec<usize> = s
                .edges
                .iter()
                .enumerate()
                .filter(|(_, &(a, b))| {
                    s.tasks[a].kind == TaskKind::Recv && s.tasks[b].kind == TaskKind::Prep
                })
                .map(|(i, _)| i)
                .collect();
            prop_assert!(!recv_edges.is_empty(), "multi-rank plan must have recvs");
            let i = recv_edges[pick % recv_edges.len()];
            let dropped = s.tasks[s.edges[i].0].label.clone();
            s.edges.remove(i);
            let r = analyze(&s);
            prop_assert!(!r.is_clean(), "dropped {dropped}->prep edge not flagged");
            let hit = r.findings.iter().any(|f| {
                matches!(f.kind, FindingKind::ReadWriteRace | FindingKind::WriteWriteRace)
                    && f.tasks.contains(&dropped)
            });
            prop_assert!(hit, "no race names {dropped}:\n{}", r.render());
        }

        // Fault 2 — shift a stage>=1 recv's unpack window one cell toward
        // the patch interior: it now overlaps the previous stage's kernel
        // write, an unordered CPE/MPE pair, so a write-write race must name
        // both.
        {
            let mut s = base.clone();
            let recvs: Vec<usize> = s
                .tasks
                .iter()
                .filter(|t| {
                    t.kind == TaskKind::Recv && t.msg.map(|m| m.stage >= 1).unwrap_or(false)
                })
                .map(|t| t.id)
                .collect();
            prop_assert!(!recvs.is_empty(), "stages >= 2 must post late-stage recvs");
            let t = recvs[pick % recvs.len()];
            let label = s.tasks[t].label.clone();
            let w = s.tasks[t]
                .accesses
                .iter_mut()
                .find(|a| a.kind == AccessKind::Write)
                .expect("recv writes its unpack window");
            let interior = level.patch(w.var.patch).region;
            let delta = [
                (w.region.hi[0] <= interior.lo.x) as i64 - (w.region.lo[0] >= interior.hi.x) as i64,
                (w.region.hi[1] <= interior.lo.y) as i64 - (w.region.lo[1] >= interior.hi.y) as i64,
                (w.region.hi[2] <= interior.lo.z) as i64 - (w.region.lo[2] >= interior.hi.z) as i64,
            ];
            prop_assert!(delta != [0, 0, 0], "ghost window must sit outside the interior");
            w.region = w.region.translated(delta);
            let r = analyze(&s);
            let hit = r.findings.iter().any(|f| {
                f.kind == FindingKind::WriteWriteRace && f.tasks.contains(&label)
            });
            prop_assert!(hit, "shifted {label} window not flagged:\n{}", r.render());
        }

        // Fault 3 — shrink the LDM budget below any tile's working set:
        // every plan must report an overflow stating bytes vs budget.
        {
            let mut s = base.clone();
            prop_assert!(!s.tile_plans.is_empty(), "offload variant carries tile plans");
            for p in &mut s.tile_plans {
                p.ldm_bytes = 64;
            }
            let r = analyze(&s);
            let overflows: Vec<_> = r
                .findings
                .iter()
                .filter(|f| f.kind == FindingKind::LdmOverflow)
                .collect();
            prop_assert!(!overflows.is_empty(), "no LdmOverflow:\n{}", r.render());
            prop_assert!(
                overflows.iter().all(|f| f.message.contains("64")),
                "overflow diagnostics must state the budget:\n{}",
                r.render()
            );
        }

        // Fault 4 — reverse an existing edge into a 2-cycle: deadlock.
        {
            let mut s = base.clone();
            let (a, b) = s.edges[pick % s.edges.len()];
            s.add_edge(b, a);
            let r = analyze(&s);
            let hit = r
                .findings
                .iter()
                .any(|f| f.kind == FindingKind::Deadlock && !f.tasks.is_empty());
            prop_assert!(hit, "cycle not flagged:\n{}", r.render());
        }
    }
}
