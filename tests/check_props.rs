//! Property tests for the concurrency checkers (DESIGN.md §15): the static
//! lookahead proof, the vector-clock race detector, and the static/dynamic
//! differential are each shown to *fail* under seeded fault injection — a
//! lookahead shrunk past the proved minimum is flagged channel-for-channel,
//! a trace with a relocated delivery produces a race on the ghost region,
//! and a trace with a dropped message post breaks the happens-before
//! reconstruction structurally.

use std::sync::Arc;

use burgers::BurgersApp;
use proptest::prelude::*;
use sw_math::ExpKind;
use sw_telemetry::{Event, EventRecord};
use uintah_core::task::plan::{build_rank_plan, decode_ghost_tag};
use uintah_core::task::{Application, RankPlan};
use uintah_core::{
    iv, prove_lookahead_for_plans, race_check, ExecMode, Level, LoadBalancer, RunConfig,
    Simulation, Variant,
};

fn plans_for(level: &Level, cgs: usize, ghost: i64) -> Vec<RankPlan> {
    let a = LoadBalancer::Block.assign(level, cgs);
    (0..cgs)
        .map(|r| build_rank_plan(level, &a, r, ghost))
        .collect()
}

/// Run a tiny instrumented simulation and return everything the race
/// checker needs: the mutable snapshot, the level, and the compiled plans.
fn traced_run(cgs: usize, steps: u32) -> (Vec<Vec<EventRecord>>, Level, Vec<RankPlan>, usize) {
    let level = Level::new(iv(8, 8, 16), iv(2, 2, 1));
    let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
    let mut cfg = RunConfig::paper(Variant::ACC_SYNC, ExecMode::Model, cgs);
    cfg.steps = steps;
    cfg.options.telemetry = true;
    let mut sim = Simulation::new(level.clone(), app.clone(), cfg);
    sim.run();
    let snap = sim.recorder().snapshot();
    let plans = plans_for(&level, cgs, app.ghost());
    (snap, level, plans, app.stages())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shrinking the lookahead past the proved minimum is flagged, and
    /// *exactly* the channels whose bound the new lookahead violates are
    /// named — no more, no fewer.
    #[test]
    fn shrunk_lookahead_is_flagged_channel_for_channel(
        lx in 2i64..4,
        cgs_raw in 2usize..5,
        delta in 1u64..2_000_000,
    ) {
        let level = Level::new(iv(8 * lx, 8, 16), iv(lx, 2, 1));
        let n_patches = (lx * 2) as usize;
        let cgs = cgs_raw.min(n_patches);
        let plans = plans_for(&level, cgs, 1);
        let cfg = RunConfig::paper(Variant::ACC_ASYNC, ExecMode::Model, cgs);

        // The proof at the default lookahead (the calibrated net latency)
        // is safe: the model can never deliver faster than latency + wire.
        let default_la = cfg.machine.net_latency.0;
        let (proof, findings) = prove_lookahead_for_plans(&plans, &cfg.machine, default_la);
        prop_assert!(proof.safe, "default lookahead flagged:\n{}", proof.to_json());
        prop_assert!(findings.is_empty());
        let min = proof.min_latency_ps;
        prop_assert!(min >= default_la);

        // Any lookahead at or below the proved minimum stays safe...
        let (at_min, f_at_min) = prove_lookahead_for_plans(&plans, &cfg.machine, min);
        prop_assert!(at_min.safe && f_at_min.is_empty());

        // ...and one past it is flagged, naming exactly the channels whose
        // minimum the shrunk window overruns.
        let unsafe_la = min + delta;
        let (bad, bad_findings) = prove_lookahead_for_plans(&plans, &cfg.machine, unsafe_la);
        prop_assert!(!bad.safe, "lookahead {unsafe_la} past min {min} not flagged");
        let expected = bad
            .channels
            .iter()
            .filter(|c| c.min_latency_ps < unsafe_la)
            .count();
        prop_assert!(expected >= 1);
        prop_assert_eq!(bad_findings.len(), expected,
            "one finding per violated channel");
        prop_assert_eq!(bad.violations().count(), expected);
    }

    /// Relocating a delivery into the window of a kernel that reads the
    /// ghost region it writes makes the race detector fire: the write is
    /// no longer ordered before the CPE-side read.
    #[test]
    fn relocated_delivery_races_the_kernel_ghost_read(pick in 0usize..1024) {
        let (mut snap, level, plans, stages) = traced_run(4, 2);
        let baseline = race_check(&snap, &level, &plans, stages);
        prop_assert!(baseline.is_clean(), "{}", baseline.summary());

        // Candidate faults: a delivery at i whose destination-ghost patch
        // is computed by a kernel offload spanning (j, k) later in the
        // same rank buffer, within the same step.
        let mut candidates = Vec::new();
        for (r, buf) in snap.iter().enumerate() {
            let mut step = 0u32;
            let mut deliveries: Vec<(usize, u32, usize)> = Vec::new();
            for (idx, rec) in buf.iter().enumerate() {
                match rec.event {
                    Event::Barrier { .. } => step += 1,
                    Event::MsgDelivered { tag, .. } if tag < sw_mpi::APP_TAG_LIMIT => {
                        let (s, _, src_patch, face) =
                            decode_ghost_tag(tag, stages, level.n_patches());
                        if let Some(dst) = level.neighbor(src_patch, face) {
                            deliveries.push((idx, s, dst));
                        }
                    }
                    Event::OffloadStart { patch, token } => {
                        for &(i, s, dst) in &deliveries {
                            if dst != patch || s != step {
                                continue;
                            }
                            // The matching done closes the kernel window.
                            if buf.iter().skip(idx + 1).any(|r2| matches!(
                                r2.event,
                                Event::OffloadDone { patch: p2, token: t2 }
                                    if p2 == patch && t2 == token
                            )) {
                                candidates.push((r, i, idx));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        prop_assert!(!candidates.is_empty(),
            "a multi-rank traced run must exchange ghosts before kernels");
        let (r, i, j) = candidates[pick % candidates.len()];
        let rec = snap[r].remove(i);
        snap[r].insert(j, rec); // now sits just inside the kernel window

        let rep = race_check(&snap, &level, &plans, stages);
        prop_assert!(!rep.race.races.is_empty(),
            "relocated delivery not reported: {}", rep.summary());
        prop_assert!(
            rep.race.races.iter().any(|f| f.a.contains("ghost") || f.b.contains("ghost")),
            "the race must involve the ghost region: {:?}", rep.race.races
        );
    }

    /// Dropping a message post (a happens-before edge source) breaks the
    /// trace structurally: its delivery can no longer be explained.
    #[test]
    fn dropped_post_is_a_structural_failure(pick in 0usize..1024) {
        let (mut snap, level, plans, stages) = traced_run(2, 2);
        let baseline = race_check(&snap, &level, &plans, stages);
        prop_assert!(baseline.is_clean(), "{}", baseline.summary());

        let posts: Vec<(usize, usize)> = snap
            .iter()
            .enumerate()
            .flat_map(|(r, buf)| {
                buf.iter().enumerate().filter_map(move |(i, rec)| match rec.event {
                    Event::MsgPosted { tag, .. } if tag < sw_mpi::APP_TAG_LIMIT => {
                        Some((r, i))
                    }
                    _ => None,
                })
            })
            .collect();
        prop_assert!(!posts.is_empty(), "traced run must post app messages");
        let (r, i) = posts[pick % posts.len()];
        snap[r].remove(i);

        let rep = race_check(&snap, &level, &plans, stages);
        prop_assert!(!rep.structural_errors.is_empty(),
            "dropped post not caught: {}", rep.summary());
        prop_assert!(!rep.is_clean());
    }
}
