//! Property tests for the communication layer (DESIGN.md §18): the
//! eager/rendezvous crossover and the aggregation flush policy are pure
//! transport choices — whatever knob values the strategies draw, the
//! functional warehouse must come out bit-for-bit identical to the
//! single-endpoint, no-aggregation baseline, and instrumented runs must
//! still reconcile with their `RunReport` step clocks.

use std::sync::Arc;

use burgers::BurgersApp;
use proptest::prelude::*;
use sw_math::ExpKind;
use sw_mpi::CommConfig;
use sw_telemetry::analyze;
use uintah_core::task::build_rank_plan;
use uintah_core::{iv, ExecMode, Level, RunConfig, Simulation, Variant};

/// The tiny sweep shape: 4 patches over 2 ranks, enough for cross-rank
/// ghost traffic in every step.
const CGS: usize = 2;
const STEPS: u32 = 2;

fn level() -> Level {
    Level::new(iv(8, 8, 16), iv(2, 2, 1))
}

/// Functional run under `comm`: final warehouse of every patch as exact
/// bit patterns.
fn functional_bits(comm: CommConfig) -> Vec<Vec<u64>> {
    let level = level();
    let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
    let mut cfg = RunConfig::paper(Variant::ACC_ASYNC, ExecMode::Functional, CGS);
    cfg.steps = STEPS;
    cfg.comm = comm;
    let mut sim = Simulation::new(level.clone(), app, cfg);
    sim.run();
    (0..level.n_patches())
        .map(|p| {
            let var = sim.solution(p);
            level
                .patch(p)
                .region
                .iter()
                .map(|c| var.get(c).to_bits())
                .collect()
        })
        .collect()
}

/// Instrumented model run under `comm`: `(reconciled, agg_flushes)`.
fn model_reconciles(comm: CommConfig) -> (bool, usize) {
    let level = level();
    let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
    let mut cfg = RunConfig::paper(Variant::ACC_ASYNC, ExecMode::Model, CGS);
    cfg.steps = STEPS;
    cfg.options.telemetry = true;
    cfg.comm = comm;
    let mut sim = Simulation::new(level, app, cfg);
    let report = sim.run();
    let snap = sim.recorder().snapshot();
    let phases = analyze(&snap);
    let reconciled = phases.step_end_ps.len() == report.step_end.len()
        && phases
            .step_end_ps
            .iter()
            .zip(&report.step_end)
            .all(|(&ps, t)| ps == t.0)
        && phases.breakdowns.iter().all(|b| b.sum_ps() == b.window_ps);
    let flushes = snap
        .iter()
        .flatten()
        .filter(|r| matches!(r.event, sw_telemetry::Event::AggFlushed { .. }))
        .count();
    (reconciled, flushes)
}

/// The largest ghost payload (bytes) any rank of the tiny level sends —
/// the crossover boundary the properties straddle.
fn max_ghost_payload() -> u64 {
    let level = level();
    let cfg = RunConfig::paper(Variant::ACC_ASYNC, ExecMode::Model, CGS);
    let assignment = cfg.lb.assign(&level, CGS);
    (0..CGS)
        .flat_map(|r| {
            build_rank_plan(&level, &assignment, r, 1)
                .sends
                .iter()
                .map(|s| s.window.cells() * 8)
                .collect::<Vec<_>>()
        })
        .max()
        .expect("cross-rank plans must have sends")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Crossover boundary: for any offset in {-1, 0, +1} around any ghost
    /// payload boundary, the eager/rendezvous flip changes only packet
    /// timing — the functional warehouse is byte-identical to the
    /// baseline, and the instrumented run at the same crossover still
    /// reconciles with its report.
    #[test]
    fn crossover_boundary_is_byte_identical_and_reconciled(
        offset in -1i64..=1,
        endpoints in 1u32..=4,
    ) {
        let base = functional_bits(CommConfig::default());
        let xo = max_ghost_payload().saturating_add_signed(offset);
        let comm = CommConfig {
            endpoints,
            eager_crossover: Some(xo),
            progress_lane: true,
            ..CommConfig::default()
        };
        prop_assert_eq!(&functional_bits(comm), &base,
            "crossover {} flipped the warehouse", xo);
        let (reconciled, _) = model_reconciles(comm);
        prop_assert!(reconciled, "crossover {} broke reconciliation", xo);
    }

    /// Flush ordering: a configuration that flushes by the byte threshold
    /// (tiny `agg_bytes`, distant deadline) and one that flushes by the
    /// deadline (huge `agg_bytes`, tight deadline) drain the same staged
    /// messages in the same push order — identical warehouse bytes, both
    /// against each other and against the unaggregated baseline.
    #[test]
    fn flush_by_bytes_and_flush_by_deadline_agree(
        agg_bytes in 128u64..2048,
        deadline_us in 1u64..10,
    ) {
        let base = functional_bits(CommConfig::default());
        let by_bytes = CommConfig {
            endpoints: 2,
            agg_bytes,
            agg_deadline_ps: 1_000_000_000, // 1 ms: never reached
            progress_lane: true,
            ..CommConfig::default()
        };
        let by_deadline = CommConfig {
            endpoints: 2,
            agg_bytes: u64::MAX >> 1, // byte threshold never reached
            agg_deadline_ps: deadline_us * 1_000_000,
            progress_lane: true,
            ..CommConfig::default()
        };
        let bytes_bits = functional_bits(by_bytes);
        let deadline_bits = functional_bits(by_deadline);
        prop_assert_eq!(&bytes_bits, &base, "flush-by-bytes changed the warehouse");
        prop_assert_eq!(&deadline_bits, &base, "flush-by-deadline changed the warehouse");
        // Both policies must actually coalesce something in model mode.
        let (rec_b, flushes_b) = model_reconciles(by_bytes);
        let (rec_d, flushes_d) = model_reconciles(by_deadline);
        prop_assert!(rec_b && rec_d, "an aggregated run failed to reconcile");
        prop_assert!(flushes_b > 0, "flush-by-bytes never flushed");
        prop_assert!(flushes_d > 0, "flush-by-deadline never flushed");
    }
}
