//! End-to-end integration: the Burgers model problem through the full stack
//! (machine model -> athread -> MPI -> schedulers -> controller).

use std::sync::Arc;

use burgers::{solution_error, BurgersApp};
use sw_math::ExpKind;
use uintah_core::grid::iv;
use uintah_core::{
    run_simulation, ExecMode, Level, LoadBalancer, RunConfig, RunReport, Simulation, Variant,
};

fn small_level() -> Level {
    // 2x2x2 patches of 8x8x8 cells: 16^3 grid — small enough to run
    // functionally in every variant.
    Level::new(iv(8, 8, 8), iv(2, 2, 2))
}

fn run(variant: Variant, exec: ExecMode, n_ranks: usize, steps: u32) -> (RunReport, Simulation) {
    let level = small_level();
    let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
    let mut cfg = RunConfig::paper(variant, exec, n_ranks);
    cfg.steps = steps;
    let mut sim = Simulation::new(level, app, cfg);
    let report = sim.run();
    (report, sim)
}

#[test]
fn functional_run_completes_all_variants_and_rank_counts() {
    for variant in Variant::TABLE_IV {
        for n_ranks in [1, 2, 4, 8] {
            let (report, _) = run(variant, ExecMode::Functional, n_ranks, 3);
            assert_eq!(report.steps, 3);
            assert_eq!(report.step_end.len(), 3);
            assert!(
                report.total_time.as_secs_f64() > 0.0,
                "{} on {n_ranks}",
                variant.name()
            );
            assert_eq!(report.kernels, 3 * 8, "one kernel per patch per step");
        }
    }
}

#[test]
fn solution_approaches_exact() {
    let (_, sim) = run(Variant::ACC_ASYNC, ExecMode::Functional, 2, 10);
    let level = small_level();
    let app = BurgersApp::new(&level, ExpKind::Fast);
    let err = solution_error(&sim, &app);
    // 16^3 is coarse for nu = 0.01 internal layers (first-order upwind under-
    // resolves them), but 10 forward-Euler steps must stay close to exact.
    assert!(err.linf < 0.08, "linf = {}", err.linf);
    assert!(err.l2 < 0.01, "l2 = {}", err.l2);
    assert!(err.linf > 0.0, "the solution must actually evolve");
}

#[test]
fn solution_converges_under_refinement() {
    // Refining 16^3 -> 32^3 must shrink the error substantially (observed
    // about 3.5x: first-order space plus dt ~ dx^2 time refinement).
    let mut errs = vec![];
    for half in [8i64, 16] {
        let level = Level::new(iv(half, half, half), iv(2, 2, 2));
        let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
        let mut cfg = RunConfig::paper(Variant::ACC_ASYNC, ExecMode::Functional, 4);
        cfg.steps = 10;
        let mut sim = Simulation::new(level, Arc::clone(&app) as _, cfg);
        sim.run();
        errs.push(solution_error(&sim, &app).linf);
    }
    assert!(
        errs[1] < errs[0] / 2.0,
        "no convergence: {errs:?} (16^3 vs 32^3)"
    );
}

#[test]
fn all_offload_variants_produce_bit_identical_solutions() {
    // Scheduler mode (sync/async/MPE-only), SIMD kernel, and rank count must
    // not change a single bit of the result: the runtime's determinism
    // invariant.
    let (_, reference) = run(Variant::ACC_SYNC, ExecMode::Functional, 1, 5);
    for variant in Variant::TABLE_IV {
        for n_ranks in [1, 4, 8] {
            let (_, sim) = run(variant, ExecMode::Functional, n_ranks, 5);
            for p in 0..small_level().n_patches() {
                let a = reference.solution(p);
                let b = sim.solution(p);
                for c in small_level().patch(p).region.iter() {
                    assert_eq!(
                        a.get(c).to_bits(),
                        b.get(c).to_bits(),
                        "{} on {n_ranks} ranks differs at {c} of patch {p}",
                        variant.name()
                    );
                }
            }
        }
    }
}

#[test]
fn model_and_functional_runs_have_identical_virtual_times() {
    for variant in [
        Variant::HOST_SYNC,
        Variant::ACC_SYNC,
        Variant::ACC_SIMD_ASYNC,
    ] {
        for n_ranks in [1, 4] {
            let (f, _) = run(variant, ExecMode::Functional, n_ranks, 4);
            let (m, _) = run(variant, ExecMode::Model, n_ranks, 4);
            assert_eq!(
                f.step_end,
                m.step_end,
                "{} on {n_ranks}: cost model must not depend on data",
                variant.name()
            );
            assert_eq!(f.flops.total(), m.flops.total());
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let (a, _) = run(Variant::ACC_SIMD_ASYNC, ExecMode::Model, 8, 5);
    let (b, _) = run(Variant::ACC_SIMD_ASYNC, ExecMode::Model, 8, 5);
    assert_eq!(a.step_end, b.step_end);
    assert_eq!(a.events, b.events);
    assert_eq!(a.messages, b.messages);
}

/// A paper-scale problem (16x16x512 patches, 8x8x2 layout) in model mode:
/// no data is allocated, so even 128 patches run in milliseconds.
fn run_paper_scale(variant: Variant, n_ranks: usize) -> RunReport {
    let level = Level::new(iv(16, 16, 512), iv(8, 8, 2));
    let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
    let cfg = RunConfig::paper(variant, ExecMode::Model, n_ranks);
    run_simulation(level, app, cfg)
}

#[test]
fn async_beats_sync_with_many_patches_per_rank() {
    // The headline claim (paper §VII-C): with work to overlap, the
    // asynchronous scheduler wins.
    let sync = run_paper_scale(Variant::ACC_SYNC, 4);
    let async_ = run_paper_scale(Variant::ACC_ASYNC, 4);
    let gain = async_.improvement_over(&sync);
    assert!(gain > 0.0, "async gain {gain}");
}

#[test]
fn offloading_beats_the_mpe_at_paper_scale() {
    // Paper §VII-D: offloading kernels to the CPEs boosts performance by
    // 2.7-6.0x over host.sync.
    let host = run_paper_scale(Variant::HOST_SYNC, 4);
    let acc = run_paper_scale(Variant::ACC_ASYNC, 4);
    let boost = acc.boost_over(&host);
    assert!(boost > 2.0, "offload boost {boost}");
}

#[test]
fn vectorization_speeds_up_offloaded_kernels() {
    // Paper §VII-B: "the computing time is reduced by half" with SIMD.
    let scalar = run_paper_scale(Variant::ACC_ASYNC, 4);
    let simd = run_paper_scale(Variant::ACC_SIMD_ASYNC, 4);
    let boost = simd.boost_over(&scalar);
    assert!(boost > 1.3 && boost < 2.2, "simd boost {boost}");
}

#[test]
fn morton_and_roundrobin_balancers_also_complete() {
    let level = small_level();
    for lb in [LoadBalancer::Morton, LoadBalancer::RoundRobin] {
        let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
        let mut cfg = RunConfig::paper(Variant::ACC_ASYNC, ExecMode::Functional, 4);
        cfg.steps = 2;
        cfg.lb = lb;
        let report = run_simulation(level.clone(), app, cfg);
        assert_eq!(report.steps, 2);
    }
}
