//! Integration tests of the paper's §IX future-work extensions:
//! CPE grouping, double-buffered DMA, and packed tile transfers.

use std::sync::Arc;

use burgers::BurgersApp;
use sw_math::ExpKind;
use uintah_core::grid::iv;
use uintah_core::{ExecMode, Level, RunConfig, RunReport, SchedulerOptions, Simulation, Variant};

fn run_with(options: SchedulerOptions, exec: ExecMode, n_ranks: usize) -> (RunReport, Simulation) {
    let level = Level::new(iv(8, 8, 8), iv(2, 2, 2));
    let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
    let mut cfg = RunConfig::paper(Variant::ACC_SIMD_ASYNC, exec, n_ranks);
    cfg.steps = 4;
    cfg.options = options;
    let mut sim = Simulation::new(level, app, cfg);
    let report = sim.run();
    (report, sim)
}

fn paper_scale(options: SchedulerOptions, n_ranks: usize) -> RunReport {
    paper_scale_patch(options, n_ranks, (16, 16, 512))
}

fn paper_scale_patch(
    options: SchedulerOptions,
    n_ranks: usize,
    patch: (i64, i64, i64),
) -> RunReport {
    let level = Level::new(iv(patch.0, patch.1, patch.2), iv(8, 8, 2));
    let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
    let mut cfg = RunConfig::paper(Variant::ACC_SIMD_ASYNC, ExecMode::Model, n_ranks);
    cfg.options = options;
    Simulation::new(level, app, cfg).run()
}

#[test]
fn extensions_preserve_bit_identical_results() {
    let (_, reference) = run_with(SchedulerOptions::default(), ExecMode::Functional, 2);
    for options in [
        SchedulerOptions {
            cpe_groups: 4,
            ..Default::default()
        },
        SchedulerOptions {
            double_buffer: true,
            packed_tiles: true,
            ..Default::default()
        },
    ] {
        let (_, sim) = run_with(options, ExecMode::Functional, 2);
        let level = sim.level().clone();
        for p in 0..level.n_patches() {
            for c in level.patch(p).region.iter() {
                assert_eq!(
                    reference.solution(p).get(c).to_bits(),
                    sim.solution(p).get(c).to_bits(),
                    "{options:?} changed the numerics at {c}"
                );
            }
        }
    }
}

#[test]
fn double_buffering_and_packing_do_not_hurt() {
    // The 32x32x512 patch gives each CPE four tiles, so the DMA pipeline has
    // interior tiles to overlap. Gains are small (the kernel is compute-
    // bound) but must never be a loss.
    let patch = (32, 32, 512);
    let base = paper_scale_patch(SchedulerOptions::default(), 8, patch);
    let dbuf = paper_scale_patch(
        SchedulerOptions {
            double_buffer: true,
            ..Default::default()
        },
        8,
        patch,
    );
    let packed = paper_scale_patch(
        SchedulerOptions {
            packed_tiles: true,
            ..Default::default()
        },
        8,
        patch,
    );
    assert!(packed.total_time < base.total_time);
    assert!(
        dbuf.total_time < base.total_time,
        "double buffering must hide some DMA: {} vs {}",
        dbuf.total_time,
        base.total_time
    );
}

#[test]
fn double_buffering_is_a_noop_with_one_tile_per_cpe() {
    // The smallest patch tiles into exactly 64 tiles = one per CPE: the
    // pipeline has nothing to overlap and must cost exactly the same.
    let base = paper_scale(SchedulerOptions::default(), 8);
    let dbuf = paper_scale(
        SchedulerOptions {
            double_buffer: true,
            ..Default::default()
        },
        8,
    );
    assert_eq!(base.total_time, dbuf.total_time);
}

#[test]
fn cpe_grouping_helps_when_patches_queue_up() {
    // At 8 CGs each rank runs 16 patches back-to-back; two groups overlap
    // one patch's tail with the next patch's head and hide the per-offload
    // detection gaps, at the price of halving per-kernel parallelism.
    // With the detection-delay dominant regime of the small problem, groups
    // must not be slower.
    let one = paper_scale(SchedulerOptions::default(), 8);
    let two = paper_scale(
        SchedulerOptions {
            cpe_groups: 2,
            ..Default::default()
        },
        8,
    );
    let ratio = two.total_time.as_secs_f64() / one.total_time.as_secs_f64();
    assert!(ratio < 1.05, "2 groups {ratio}x of 1 group");
}

#[test]
fn model_and_functional_agree_with_extensions_on() {
    let options = SchedulerOptions {
        cpe_groups: 2,
        double_buffer: true,
        packed_tiles: true,
        ..Default::default()
    };
    let (f, _) = run_with(options, ExecMode::Functional, 4);
    let (m, _) = run_with(options, ExecMode::Model, 4);
    assert_eq!(f.step_end, m.step_end);
}

#[test]
// Rejection now happens up front in `validate_config` (typed
// `ConfigError::CpeGroupsNeedAsync`) rather than in the scheduler assert.
#[should_panic(expected = "need the asynchronous scheduler")]
fn grouping_with_sync_scheduler_is_rejected() {
    let level = Level::new(iv(8, 8, 8), iv(2, 2, 2));
    let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
    let mut cfg = RunConfig::paper(Variant::ACC_SYNC, ExecMode::Model, 1);
    cfg.steps = 1;
    cfg.options = SchedulerOptions {
        cpe_groups: 2,
        ..Default::default()
    };
    let _ = Simulation::new(level, app, cfg);
}
