//! The CPE worker pool is invisible to the runtime: every scheduler variant
//! produces bit-identical solutions and reports whether functional tiles run
//! serially or on the pool.
//!
//! This is the whole-stack counterpart of the executor-level property test
//! in `crates/sw-athread/tests/props.rs`: here the policy is threaded
//! through `SchedulerOptions::exec_policy` and exercised by real schedulers
//! (MPE-only, synchronous, asynchronous offload) over multiple ranks.

use std::sync::Arc;

use burgers::BurgersApp;
use sw_math::ExpKind;
use uintah_core::grid::iv;
use uintah_core::{ExecMode, ExecPolicy, Level, RunConfig, RunReport, Simulation, Variant};

fn small_level() -> Level {
    Level::new(iv(8, 8, 8), iv(2, 2, 2))
}

fn run_with_policy(
    variant: Variant,
    n_ranks: usize,
    policy: ExecPolicy,
) -> (RunReport, Simulation) {
    let level = small_level();
    let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
    let mut cfg = RunConfig::paper(variant, ExecMode::Functional, n_ranks);
    cfg.steps = 4;
    cfg.options.exec_policy = policy;
    let mut sim = Simulation::new(level, app, cfg);
    let report = sim.run();
    (report, sim)
}

fn assert_same_solution(a: &Simulation, b: &Simulation, what: &str) {
    let level = small_level();
    for p in 0..level.n_patches() {
        let sa = a.solution(p);
        let sb = b.solution(p);
        for c in level.patch(p).region.iter() {
            assert_eq!(
                sa.get(c).to_bits(),
                sb.get(c).to_bits(),
                "{what}: differs at {c} of patch {p}"
            );
        }
    }
}

#[test]
fn pooled_execution_is_bit_identical_for_all_variants_and_rank_counts() {
    for variant in Variant::TABLE_IV {
        for n_ranks in [1, 2, 4] {
            let (rs, ss) = run_with_policy(variant, n_ranks, ExecPolicy::Serial);
            for threads in [2usize, 4, 8] {
                let (rp, sp) = run_with_policy(variant, n_ranks, ExecPolicy::Parallel { threads });
                let what = format!("{} on {n_ranks} ranks, {threads} threads", variant.name());
                assert_same_solution(&ss, &sp, &what);
                // Virtual time and accounting must not see the host pool.
                assert_eq!(rs.step_end, rp.step_end, "{what}: virtual times differ");
                assert_eq!(rs.flops.total(), rp.flops.total(), "{what}: flops differ");
                assert_eq!(rs.messages, rp.messages, "{what}: message counts differ");
                assert_eq!(rs.events, rp.events, "{what}: event counts differ");
            }
        }
    }
}

#[test]
fn auto_policy_matches_serial() {
    let (rs, ss) = run_with_policy(Variant::ACC_SIMD_ASYNC, 4, ExecPolicy::Serial);
    let (rp, sp) = run_with_policy(Variant::ACC_SIMD_ASYNC, 4, ExecPolicy::AUTO);
    assert_same_solution(&ss, &sp, "acc_simd.async on 4 ranks, auto threads");
    assert_eq!(rs.step_end, rp.step_end);
    assert_eq!(rs.flops.total(), rp.flops.total());
}
