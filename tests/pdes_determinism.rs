//! The conservative-PDES engine is invisible to the simulation: advancing
//! the simulated ranks concurrently inside lookahead windows produces
//! bit-identical results to the serial event engine — fields, reports,
//! telemetry, and fault streams (DESIGN.md §14).
//!
//! This is the whole-stack counterpart of the torture campaign's
//! `pdes_bit_identical` oracle: here the matrix is explicit — all five
//! Table IV variants × three fault presets × telemetry on/off — plus the
//! lookahead-safety property: a lookahead wider than the minimum modeled
//! cross-rank latency could deliver a message into an already-drained
//! window, so such configs must be *rejected*, never silently reordered.

use std::sync::Arc;

use burgers::BurgersApp;
use proptest::prelude::*;
use sw_math::ExpKind;
use sw_resilience::FaultConfig;
use sw_telemetry::analyze;
use uintah_core::grid::iv;
use uintah_core::{ExecMode, Level, RunConfig, RunReport, Simulation, Variant};

fn small_level() -> Level {
    Level::new(iv(6, 6, 6), iv(2, 2, 2))
}

/// Fault presets of the determinism matrix.
fn presets() -> [(&'static str, Option<FaultConfig>); 3] {
    [
        ("none", None),
        ("standard", Some(FaultConfig::standard(0x5eed))),
        ("harsh", Some(FaultConfig::harsh(0x5eed))),
    ]
}

fn build_cfg(
    variant: Variant,
    faults: Option<FaultConfig>,
    telemetry: bool,
    pdes: bool,
) -> RunConfig {
    let mut cfg = RunConfig::paper(variant, ExecMode::Functional, 4);
    cfg.steps = 3;
    cfg.options.faults = faults;
    cfg.options.telemetry = telemetry;
    cfg.pdes = pdes;
    if pdes {
        // Ask for 2 workers even on a 1-core host: the engine clamps to
        // what the host offers, and the window protocol runs either way.
        cfg.threads = Some(2);
    }
    cfg
}

fn run(cfg: RunConfig) -> (Simulation, RunReport) {
    let level = small_level();
    let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
    let mut sim = Simulation::new(level, app, cfg);
    let report = sim.run();
    (sim, report)
}

/// Final field of every patch as exact bit patterns.
fn bits(sim: &Simulation) -> Vec<Vec<u64>> {
    let level = sim.level();
    (0..level.n_patches())
        .map(|p| {
            let var = sim.solution(p);
            level
                .patch(p)
                .region
                .iter()
                .map(|c| var.get(c).to_bits())
                .collect()
        })
        .collect()
}

#[test]
fn pdes_is_bit_identical_across_variants_faults_and_telemetry() {
    for variant in Variant::TABLE_IV {
        for (fname, faults) in presets() {
            for telemetry in [false, true] {
                let what = format!("{} faults={fname} telemetry={telemetry}", variant.name());
                let (ss, rs) = run(build_cfg(variant, faults, telemetry, false));
                let (sp, rp) = run(build_cfg(variant, faults, telemetry, true));
                assert_eq!(bits(&ss), bits(&sp), "{what}: fields diverged");
                // The full report — virtual times, flop counters, message
                // and event counts, fault-plane counters — is identical,
                // not merely close.
                assert_eq!(
                    format!("{rs:?}"),
                    format!("{rp:?}"),
                    "{what}: reports diverged"
                );
                if telemetry {
                    // Identical spans on both engines: the phase pass
                    // reconstructs the same per-step timeline.
                    let ps = analyze(&ss.recorder().snapshot());
                    let pp = analyze(&sp.recorder().snapshot());
                    assert_eq!(
                        ps.step_end_ps, pp.step_end_ps,
                        "{what}: telemetry timelines diverged"
                    );
                    assert_eq!(
                        ps.breakdowns.len(),
                        pp.breakdowns.len(),
                        "{what}: phase breakdown counts diverged"
                    );
                }
                // Fault streams: both engines drew the same injections and
                // recovered the same way.
                match (ss.fault_plan(), sp.fault_plan()) {
                    (None, None) => {}
                    (Some(a), Some(b)) => assert_eq!(
                        format!("{:?}", a.stats.snapshot()),
                        format!("{:?}", b.stats.snapshot()),
                        "{what}: fault streams diverged"
                    ),
                    _ => panic!("{what}: fault plan presence diverged"),
                }
            }
        }
    }
}

#[test]
fn auto_thread_detection_matches_explicit() {
    let (sa, ra) = run({
        let mut c = build_cfg(Variant::ACC_SIMD_ASYNC, None, false, true);
        c.threads = None; // auto-detect host parallelism
        c
    });
    let (se, re) = run(build_cfg(Variant::ACC_SIMD_ASYNC, None, false, true));
    assert_eq!(bits(&sa), bits(&se));
    assert_eq!(format!("{ra:?}"), format!("{re:?}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any lookahead in the safe interval (0, net_latency] yields a run
    /// bit-identical to the serial engine.
    #[test]
    fn safe_lookaheads_are_bit_identical(divisor in 1u64..=8) {
        let base = build_cfg(Variant::ACC_ASYNC, None, false, false);
        let max = base.machine.net_latency.0;
        let (ss, rs) = run(base.clone());
        let mut cfg = build_cfg(Variant::ACC_ASYNC, None, false, true);
        cfg.pdes_lookahead_ps = Some((max / divisor).max(1));
        let (sp, rp) = run(cfg);
        prop_assert_eq!(bits(&ss), bits(&sp), "narrowed lookahead reordered events");
        prop_assert_eq!(format!("{rs:?}"), format!("{rp:?}"));
    }

    /// A lookahead wider than the minimum modeled cross-rank latency (or
    /// zero) is a lookahead violation waiting to happen: the constructor
    /// must reject it with a typed error, and the panicking constructor
    /// must panic — neither may silently run with a reordering window.
    #[test]
    fn unsafe_lookaheads_are_rejected(excess in 1u64..=1_000_000) {
        let mut cfg = build_cfg(Variant::ACC_ASYNC, None, false, true);
        let max = cfg.machine.net_latency.0;
        cfg.pdes_lookahead_ps = Some(max + excess);
        let level = small_level();
        let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
        let res = Simulation::try_new(level, app, cfg.clone());
        prop_assert!(res.is_err(), "lookahead {} > latency {max} accepted", max + excess);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let level = small_level();
            let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
            Simulation::new(level, app, cfg.clone())
        }))
        .is_err();
        prop_assert!(panicked, "Simulation::new accepted an unsafe lookahead");

        // Zero is rejected too: an empty window can never advance.
        let mut zero = build_cfg(Variant::ACC_ASYNC, None, false, true);
        zero.pdes_lookahead_ps = Some(0);
        let level = small_level();
        let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
        prop_assert!(Simulation::try_new(level, app, zero).is_err());
    }
}
