//! Randomized end-to-end invariants: for arbitrary small problem
//! configurations, the runtime must be deterministic, produce
//! scheduler-independent numerics, and keep model and functional virtual
//! time identical.

use std::sync::Arc;

use burgers::BurgersApp;
use proptest::prelude::*;
use sw_math::ExpKind;
use uintah_core::grid::iv;
use uintah_core::{
    ExecMode, Level, LoadBalancer, RunConfig, RunReport, SchedulerOptions, Simulation, Variant,
};

#[allow(clippy::too_many_arguments)]
fn build(
    patch: (i64, i64, i64),
    layout: (i64, i64, i64),
    variant: Variant,
    exec: ExecMode,
    n_ranks: usize,
    lb: LoadBalancer,
    steps: u32,
    options: SchedulerOptions,
) -> Simulation {
    let level = Level::new(
        iv(patch.0, patch.1, patch.2),
        iv(layout.0, layout.1, layout.2),
    );
    let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
    let mut cfg = RunConfig::paper(variant, exec, n_ranks);
    cfg.steps = steps;
    cfg.lb = lb;
    cfg.options = options;
    Simulation::new(level, app, cfg)
}

#[allow(clippy::too_many_arguments)]
fn run(
    patch: (i64, i64, i64),
    layout: (i64, i64, i64),
    variant: Variant,
    exec: ExecMode,
    n_ranks: usize,
    lb: LoadBalancer,
    steps: u32,
    options: SchedulerOptions,
) -> (RunReport, Simulation) {
    let mut sim = build(patch, layout, variant, exec, n_ranks, lb, steps, options);
    let report = sim.run();
    (report, sim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any configuration completes without deadlock; reruns are bit-equal;
    /// sync and async agree on the numbers; model time == functional time.
    #[test]
    fn random_configs_uphold_runtime_invariants(
        px in 1i64..3, py in 1i64..3, pz in 1i64..3,
        lx in 1i64..4, ly in 1i64..4, lz in 1i64..3,
        ranks_raw in 1usize..7,
        lb_idx in 0usize..3,
        steps in 1u32..4,
        groups_idx in 0usize..2,
    ) {
        // Patches of 4-8 cells per axis; ghost depth 1 always fits.
        let patch = (4 * px, 4 * py, 4 * pz);
        let layout = (lx, ly, lz);
        let n_patches = (lx * ly * lz) as usize;
        let n_ranks = ranks_raw.min(n_patches);
        let lb = [LoadBalancer::Block, LoadBalancer::RoundRobin, LoadBalancer::Morton][lb_idx];
        let options = SchedulerOptions {
            cpe_groups: [1usize, 2][groups_idx],
            ..Default::default()
        };

        // 1. Deterministic rerun (async, functional).
        let (r1, s1) = run(patch, layout, Variant::ACC_SIMD_ASYNC, ExecMode::Functional, n_ranks, lb, steps, options);
        let (r2, s2) = run(patch, layout, Variant::ACC_SIMD_ASYNC, ExecMode::Functional, n_ranks, lb, steps, options);
        prop_assert_eq!(&r1.step_end, &r2.step_end);
        prop_assert_eq!(r1.events, r2.events);

        // 2. Scheduler independence of the numerics (sync on 1 rank is the
        //    reference ordering).
        let (_, sref) = run(patch, layout, Variant::ACC_SYNC, ExecMode::Functional, 1, LoadBalancer::Block, steps, SchedulerOptions::default());
        for p in 0..n_patches {
            let level = s1.level();
            for c in level.patch(p).region.iter() {
                prop_assert_eq!(
                    s1.solution(p).get(c).to_bits(),
                    sref.solution(p).get(c).to_bits(),
                    "numerics differ at {} of patch {}", c, p
                );
            }
        }
        drop(s2);

        // 3. Model mode reproduces the functional virtual times exactly.
        let (rm, _) = run(patch, layout, Variant::ACC_SIMD_ASYNC, ExecMode::Model, n_ranks, lb, steps, options);
        prop_assert_eq!(&r1.step_end, &rm.step_end);
        prop_assert_eq!(r1.flops.total(), rm.flops.total());
    }
}
