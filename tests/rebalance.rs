//! Integration tests of task-graph recompilation with measurement-driven
//! load balancing (paper §V-C step 4) and of the machine-noise methodology
//! (§VII-A: repeat and take the best).

use std::sync::Arc;

use burgers::{solution_error, BurgersApp};
use sw_math::ExpKind;
use uintah_core::grid::iv;
use uintah_core::{ExecMode, Level, RunConfig, RunReport, Simulation, Variant};

fn config(n_ranks: usize, exec: ExecMode) -> RunConfig {
    RunConfig::paper(Variant::ACC_SIMD_ASYNC, exec, n_ranks)
}

fn run(cfg: RunConfig, patch: (i64, i64, i64)) -> (RunReport, Simulation) {
    let level = Level::new(iv(patch.0, patch.1, patch.2), iv(8, 8, 2));
    let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
    let mut sim = Simulation::new(level, app, cfg);
    let report = sim.run();
    (report, sim)
}

#[test]
fn rebalancing_recovers_from_a_slow_cg() {
    // CG 0 runs at 40% speed. Static block assignment leaves it with 1/4 of
    // the patches; the measurement-driven rebalance migrates work away.
    let speeds = Some(vec![0.4, 1.0, 1.0, 1.0]);
    let mut stat = config(4, ExecMode::Model);
    stat.cg_speeds = speeds.clone();
    let (static_run, _) = run(stat, (16, 16, 512));

    let mut reb = config(4, ExecMode::Model);
    reb.cg_speeds = speeds;
    reb.rebalance_every = Some(2);
    let (rebalanced, _) = run(reb, (16, 16, 512));

    let gain = static_run.total_time.as_secs_f64() / rebalanced.total_time.as_secs_f64();
    assert!(
        gain > 1.15,
        "rebalancing gained only {gain:.3}x over static assignment \
         ({} vs {})",
        rebalanced.total_time,
        static_run.total_time
    );
}

#[test]
fn rebalancing_is_harmless_on_a_uniform_machine() {
    let (plain, _) = run(config(4, ExecMode::Model), (16, 16, 512));
    let mut reb = config(4, ExecMode::Model);
    reb.rebalance_every = Some(3);
    let (rebalanced, _) = run(reb, (16, 16, 512));
    // Equal work, equal speeds: migration should be (nearly) empty and the
    // overhead a few migration-window gaps at most.
    let ratio = rebalanced.total_time.as_secs_f64() / plain.total_time.as_secs_f64();
    assert!(ratio < 1.10, "uniform rebalance cost {ratio:.3}x");
}

#[test]
fn functional_rebalance_preserves_the_numerics() {
    // Data migrates between ranks mid-run; the solution must be bit-equal to
    // the static run's.
    let (_, reference) = run(config(4, ExecMode::Functional), (8, 8, 8));
    let mut reb = config(4, ExecMode::Functional);
    reb.rebalance_every = Some(3);
    reb.cg_speeds = Some(vec![0.5, 1.0, 1.0, 1.0]);
    let (_, migrated) = run(reb, (8, 8, 8));
    let level = Level::new(iv(8, 8, 8), iv(8, 8, 2));
    for p in 0..level.n_patches() {
        for c in level.patch(p).region.iter() {
            assert_eq!(
                reference.solution(p).get(c).to_bits(),
                migrated.solution(p).get(c).to_bits(),
                "patch {p} cell {c}"
            );
        }
    }
}

#[test]
fn noise_is_deterministic_per_seed_and_best_of_repeats_helps() {
    // The paper repeats each case and takes the best to mitigate machine
    // instabilities; with seeded noise the same methodology applies.
    let noisy = |seed: u64| {
        let mut cfg = config(4, ExecMode::Model);
        cfg.noise_frac = 0.25;
        cfg.noise_seed = seed;
        run(cfg, (16, 16, 512)).0
    };
    let a = noisy(1);
    let b = noisy(1);
    assert_eq!(a.step_end, b.step_end, "same seed, same run");

    let (clean, _) = run(config(4, ExecMode::Model), (16, 16, 512));
    let runs: Vec<RunReport> = (1..=5).map(noisy).collect();
    let best = runs.iter().map(|r| r.total_time).min().unwrap();
    let worst = runs.iter().map(|r| r.total_time).max().unwrap();
    assert!(best < worst, "noise must spread the runs");
    assert!(best >= clean.total_time, "noise never speeds things up");
    // Best-of-5 sits closer to the noise floor than the mean does.
    let mean: f64 = runs.iter().map(|r| r.total_time.as_secs_f64()).sum::<f64>() / 5.0;
    assert!(best.as_secs_f64() < mean);
}

#[test]
fn functional_noise_does_not_change_results() {
    let mut cfg = config(2, ExecMode::Functional);
    cfg.noise_frac = 0.3;
    cfg.noise_seed = 77;
    cfg.steps = 5;
    let (_, noisy) = run(cfg, (8, 8, 8));
    let mut clean_cfg = config(2, ExecMode::Functional);
    clean_cfg.steps = 5;
    let (_, clean) = run(clean_cfg, (8, 8, 8));
    let level = Level::new(iv(8, 8, 8), iv(8, 8, 2));
    let app = BurgersApp::new(&level, ExpKind::Fast);
    let e_noisy = solution_error(&noisy, &app);
    let e_clean = solution_error(&clean, &app);
    assert_eq!(e_noisy.linf, e_clean.linf, "noise is timing-only");
}
