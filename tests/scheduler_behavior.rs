//! White-box scheduler behavior: the kernel spans and MPE clocks of finished
//! runs must show the mechanisms the paper describes — overlap under the
//! asynchronous scheduler, serialization under the synchronous one.

use std::sync::Arc;

use burgers::BurgersApp;
use sw_math::ExpKind;
use uintah_core::grid::iv;
use uintah_core::{ExecMode, Level, RunConfig, SimTime, Simulation, Variant};

fn run(variant: Variant, n_ranks: usize, steps: u32) -> Simulation {
    let level = Level::new(iv(16, 16, 512), iv(4, 2, 1));
    let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
    let mut cfg = RunConfig::paper(variant, ExecMode::Model, n_ranks);
    cfg.steps = steps;
    let mut sim = Simulation::new(level, app, cfg);
    sim.run();
    sim
}

/// Sum of gaps between consecutive kernel spans on a rank, in seconds.
fn kernel_gaps(sim: &Simulation, rank: usize) -> (f64, usize) {
    let spans = &sim.rank_stats(rank).kernel_spans;
    let mut sorted: Vec<(SimTime, SimTime)> = spans.iter().map(|&(_, s, e)| (s, e)).collect();
    sorted.sort();
    let mut gap = 0.0;
    for w in sorted.windows(2) {
        gap += w[1].0.since(w[0].1).as_secs_f64();
    }
    (gap, sorted.len())
}

#[test]
fn spans_are_recorded_and_ordered() {
    let sim = run(Variant::ACC_ASYNC, 2, 3);
    for r in 0..2 {
        let spans = &sim.rank_stats(r).kernel_spans;
        // 8 patches on 2 ranks, 3 steps: 12 kernels each.
        assert_eq!(spans.len(), 12);
        for &(p, s, e) in spans {
            assert!(e > s, "span of patch {p} is empty");
            assert!(p < 8);
        }
    }
}

#[test]
fn async_leaves_smaller_kernel_gaps_than_sync() {
    // In sync mode every kernel is separated by the next patch's full MPE
    // preparation; in async mode only the offload dispatch and detection
    // delay remain between kernels.
    let sync = run(Variant::ACC_SYNC, 2, 3);
    let asyn = run(Variant::ACC_ASYNC, 2, 3);
    let (gap_sync, n1) = kernel_gaps(&sync, 0);
    let (gap_async, n2) = kernel_gaps(&asyn, 0);
    assert_eq!(n1, n2);
    assert!(
        gap_async < gap_sync * 0.6,
        "async gaps {gap_async:.6}s not well below sync gaps {gap_sync:.6}s"
    );
}

#[test]
fn sync_mpe_is_pegged_and_async_mpe_is_mostly_idle() {
    // The spinning synchronous MPE is busy nearly the whole run (its spin
    // counts as busy time); the asynchronous MPE does its real work and
    // sleeps.
    let level_ranks = 2;
    let report = |variant: Variant| {
        let level = Level::new(iv(16, 16, 512), iv(4, 2, 1));
        let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
        let mut cfg = RunConfig::paper(variant, ExecMode::Model, level_ranks);
        cfg.steps = 3;
        Simulation::new(level, app, cfg).run()
    };
    let rs = report(Variant::ACC_SYNC);
    let ra = report(Variant::ACC_ASYNC);
    let sync_util = rs.mpe_busy.as_secs_f64() / (rs.total_time.as_secs_f64() * level_ranks as f64);
    let async_util = ra.mpe_busy.as_secs_f64() / (ra.total_time.as_secs_f64() * level_ranks as f64);
    assert!(sync_util > 0.85, "sync MPE utilization {sync_util:.3}");
    assert!(async_util < 0.6, "async MPE utilization {async_util:.3}");
}

#[test]
fn each_patch_runs_exactly_once_per_step() {
    let sim = run(Variant::ACC_SIMD_ASYNC, 4, 5);
    for r in 0..4 {
        let mut counts = std::collections::BTreeMap::new();
        for &(p, _, _) in &sim.rank_stats(r).kernel_spans {
            *counts.entry(p).or_insert(0u32) += 1;
        }
        for (&p, &n) in &counts {
            assert_eq!(n, 5, "patch {p} ran {n} times in 5 steps");
        }
        assert_eq!(counts.len(), 2, "2 patches per rank");
    }
}

#[test]
fn step_ends_are_strictly_increasing() {
    let sim = run(Variant::ACC_ASYNC, 4, 6);
    for r in 0..4 {
        let ends = &sim.rank_stats(r).step_end;
        assert_eq!(ends.len(), 6);
        assert!(ends.windows(2).all(|w| w[0] < w[1]));
    }
}

#[test]
fn cpe_groups_overlap_kernels_on_one_rank() {
    let level = Level::new(iv(16, 16, 512), iv(4, 2, 1));
    let app = Arc::new(BurgersApp::new(&level, ExpKind::Fast));
    let mut cfg = RunConfig::paper(Variant::ACC_SIMD_ASYNC, ExecMode::Model, 1);
    cfg.steps = 2;
    cfg.options.cpe_groups = 2;
    let mut sim = Simulation::new(level, app, cfg);
    sim.run();
    let spans = &sim.rank_stats(0).kernel_spans;
    let overlapping = spans.iter().enumerate().any(|(i, &(_, s1, e1))| {
        spans
            .iter()
            .skip(i + 1)
            .any(|&(_, s2, e2)| s1 < e2 && s2 < e1)
    });
    assert!(overlapping, "two CPE groups must run kernels concurrently");
}
