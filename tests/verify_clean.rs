//! Clean-bill-of-health: every shipped application x scheduler-variant
//! schedule is proved race-, deadlock-, and overflow-free by the static
//! verifier, and a simulation constructed with `SchedulerOptions::verify`
//! runs its plans through the verifier without tripping it — including
//! across a measurement-driven rebalance, which recompiles the task graph.

use std::sync::Arc;

use apps::{AdvectionApp, HeatApp, SplitHeatApp};
use burgers::BurgersApp;
use sw_math::ExpKind;
use uintah_core::task::plan::build_rank_plan;
use uintah_core::{
    iv, verify_plans, Application, ExecMode, Level, LoadBalancer, MachineConfig, RunConfig,
    SchedulerOptions, Simulation, Variant,
};

/// Every shipped app on a representative multi-patch level.
fn apps_for(level: &Level) -> Vec<Arc<dyn Application>> {
    vec![
        Arc::new(BurgersApp::new(level, ExpKind::Fast)),
        Arc::new(HeatApp::new(level, 0.1)),
        Arc::new(AdvectionApp::new(level)),
        Arc::new(SplitHeatApp::new(level, 0.1)),
    ]
}

#[test]
fn every_app_variant_plan_is_verified_hazard_free() {
    let level = Level::new(iv(8, 8, 16), iv(2, 2, 2));
    for app in apps_for(&level) {
        for variant in Variant::TABLE_IV {
            for cgs in [1usize, 3, 8] {
                let assignment = LoadBalancer::Block.assign(&level, cgs);
                let plans: Vec<_> = (0..cgs)
                    .map(|r| build_rank_plan(&level, &assignment, r, app.ghost()))
                    .collect();
                let report = verify_plans(
                    app.name(),
                    &level,
                    &plans,
                    app.ghost(),
                    app.stages(),
                    variant,
                    &SchedulerOptions::default(),
                    &MachineConfig::sw26010(),
                );
                assert!(
                    report.is_clean(),
                    "{} x {} x {cgs} CGs flagged:\n{}",
                    app.name(),
                    variant.name(),
                    report.render()
                );
                assert!(
                    report.findings.is_empty(),
                    "{} x {}: unexpected warnings:\n{}",
                    app.name(),
                    variant.name(),
                    report.render()
                );
                assert!(report.pairs_checked > 0, "hazard scan must do work");
            }
        }
    }
}

#[test]
fn verify_gate_passes_on_functional_runs() {
    let level = Level::new(iv(4, 4, 8), iv(2, 2, 1));
    for app in apps_for(&level) {
        let mut cfg = RunConfig::paper(Variant::ACC_ASYNC, ExecMode::Functional, 2);
        cfg.steps = 2;
        cfg.options.verify = true;
        let mut sim = Simulation::new(level.clone(), app.clone(), cfg);
        let report = sim.run();
        assert_eq!(report.steps, 2, "{} run under verify gate", app.name());
    }
}

#[test]
fn verify_gate_covers_rebalanced_plans() {
    // A rebalance recompiles every rank plan mid-run; with the gate on, the
    // recompiled graph goes through the verifier before the ranks resume.
    let level = Level::new(iv(4, 4, 8), iv(2, 2, 1));
    let app = Arc::new(HeatApp::new(&level, 0.1));
    let mut cfg = RunConfig::paper(Variant::ACC_ASYNC, ExecMode::Functional, 2);
    cfg.steps = 4;
    cfg.rebalance_every = Some(2);
    cfg.options.verify = true;
    let mut sim = Simulation::new(level, app, cfg);
    let report = sim.run();
    assert_eq!(report.steps, 4);
}
